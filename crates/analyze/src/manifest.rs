//! The declarative invariant manifest: *which* files and functions the rules
//! apply to.
//!
//! The manifest is data, not code — reviewers changing the hot-path surface
//! edit the tables in [`Manifest::workspace`], and the self-scan test pins the
//! result. Paths are matched by suffix with `/` separators, so the same
//! manifest works regardless of where the workspace is checked out.

/// Which functions of a hot-path file the discipline rules cover.
#[derive(Debug, Clone)]
pub enum HotScope {
    /// Every function in the file is a hot path (pure kernel modules).
    AllFunctions,
    /// Only the named functions; constructors and cold accessors are exempt.
    Functions(Vec<String>),
}

/// One hot-path file with its covered scope.
#[derive(Debug, Clone)]
pub struct HotPathEntry {
    /// Path suffix, e.g. `crates/ssl/src/srp_fast.rs`.
    pub file: String,
    /// Covered functions.
    pub scope: HotScope,
}

/// The full rule-scoping manifest for one analyzer run.
#[derive(Debug, Clone, Default)]
pub struct Manifest {
    /// Hot-path files/functions: panics and allocations denied.
    pub hot_paths: Vec<HotPathEntry>,
    /// Files allowed to call bare `f32::mul_add` / `f64::mul_add` (the
    /// runtime-dispatched SIMD wrappers live here).
    pub mul_add_wrappers: Vec<String>,
    /// Scoring / metrics files where `std::collections::HashMap` is denied
    /// because its iteration order would feed pinned bench numbers.
    pub ordered_scoring_files: Vec<String>,
    /// Treat every scanned file as hot + determinism-scoped (fixture mode).
    pub all_files_hot: bool,
}

fn entry(file: &str, fns: &[&str]) -> HotPathEntry {
    HotPathEntry {
        file: file.to_string(),
        scope: if fns.is_empty() {
            HotScope::AllFunctions
        } else {
            HotScope::Functions(fns.iter().map(|s| s.to_string()).collect())
        },
    }
}

impl Manifest {
    /// The workspace manifest: every per-frame path that PRs 1–6 made
    /// allocation-free, plus the determinism-sensitive scoring files.
    pub fn workspace() -> Self {
        Manifest {
            hot_paths: vec![
                // SRP-PHAT fast path: per-frame map computation. Construction
                // (`new`, `with_search`, `make_scratch`) allocates by design.
                entry(
                    "crates/ssl/src/srp_fast.rs",
                    &[
                        "compute_map_into",
                        "band_spectra_f32",
                        "steer_hierarchical",
                        "compute_map_reference_into",
                        "fill_lag_tables",
                        "ensure_len",
                    ],
                ),
                // Pure steering kernels: everything here runs per frame.
                entry("crates/ssl/src/srp_kernels.rs", &[]),
                // Conventional SRP-PHAT steering loop + map utilities that the
                // per-frame path touches.
                entry(
                    "crates/ssl/src/srp_phat.rs",
                    &[
                        "peak",
                        "peaks_into",
                        "zero",
                        "smooth_from",
                        "cross_spectra_into",
                        "compute_map_into",
                    ],
                ),
                // Multi-target tracker: per-frame association and snapshots.
                entry(
                    "crates/ssl/src/multitrack.rs",
                    &[
                        "update",
                        "hits_in_window",
                        "snapshot",
                        "tracks",
                        "best",
                        "confirmed_count",
                    ],
                ),
                // Single-track Kalman core.
                entry(
                    "crates/ssl/src/tracking.rs",
                    &["update", "coast", "state", "wrap_deg"],
                ),
                // Stage graph: the per-frame drive loop, including the traced
                // variant and the per-stage observation wrapper.
                entry(
                    "crates/core/src/stages.rs",
                    &[
                        "gate",
                        "classify",
                        "localize_peaks",
                        "localize",
                        "track_peaks",
                        "track",
                        "run_frame",
                        "run_frame_observed",
                        "observe",
                    ],
                ),
                // Observability substrate: everything a traced frame touches.
                // Registration and snapshotting are cold and allocate by
                // design; the record/push/read paths may not.
                entry("crates/obs/src/ring.rs", &["push", "read_at"]),
                entry("crates/obs/src/span.rs", &["record", "read_at"]),
                entry(
                    "crates/obs/src/registry.rs",
                    &[
                        "incr",
                        "add",
                        "set",
                        "get",
                        "record",
                        "record_us",
                        "count",
                        "bucket_index",
                    ],
                ),
                entry("crates/obs/src/tick.rs", &["ticks", "delta"]),
                // Roadsim render inner loop: the per-sample path update and
                // the geometry helpers it calls for every source-mic pair.
                // Path *construction* (`build_path`) precomputes per-sample
                // tables and allocates by design.
                entry(
                    "crates/roadsim/src/engine.rs",
                    &["process", "effective_position"],
                ),
                entry(
                    "crates/roadsim/src/environment.rs",
                    &[
                        "gain",
                        "image_across_wall",
                        "wall_ys",
                        "contains_y",
                        "smoothstep01",
                    ],
                ),
                // Streaming substrate.
                entry(
                    "crates/dsp/src/framing.rs",
                    &[
                        "push",
                        "push_planar",
                        "push_interleaved",
                        "settle_discard",
                        "frame_ready",
                        "emit_into",
                    ],
                ),
                entry(
                    "crates/dsp/src/ring.rs",
                    &[
                        "write",
                        "write_iter",
                        "read",
                        "peek",
                        "skip",
                        "clear",
                        "available",
                        "free",
                    ],
                ),
                // `bluestein_transform` is deliberately absent: it is the cold
                // fallback for non-power-of-two sizes, which the realtime
                // pipeline never configures (frame lengths are powers of two),
                // and it allocates its convolution buffers per call.
                entry(
                    "crates/dsp/src/fft.rs",
                    &[
                        "forward_real_into",
                        "forward_real_pair_into",
                        "split_pair_bin",
                        "inverse_real_into",
                        "check_len",
                        "transform_in_place",
                    ],
                ),
                entry("crates/dsp/src/stft.rs", &["frame_spectrum_into"]),
                // SIMD layer: pure kernels, all hot.
                entry("crates/dsp/src/simd.rs", &[]),
                // Serving layer: the per-chunk host path — submit, dispatch,
                // drain, metered delivery. Open/close and pool construction
                // are cold control-plane code and allocate by design.
                entry(
                    "crates/serve/src/host.rs",
                    &["push_chunk", "schedule", "note_transitions"],
                ),
                entry(
                    "crates/serve/src/worker.rs",
                    &[
                        "worker_loop",
                        "drain_slot",
                        "process_chunk",
                        "on_event",
                        "on_frame",
                    ],
                ),
                entry(
                    "crates/serve/src/ring.rs",
                    &[
                        "push_planar",
                        "pop_swap",
                        "with_views",
                        "len",
                        "is_empty",
                        "enqueued",
                    ],
                ),
                entry(
                    "crates/serve/src/load.rs",
                    &[
                        "on_enqueue",
                        "on_complete",
                        "level",
                        "in_flight",
                        "evaluate",
                    ],
                ),
                entry("crates/serve/src/metrics.rs", &["record", "incr", "add"]),
                // Tracing adapters on the per-frame path: the observer hook
                // and the live-feed publishers.
                entry("crates/serve/src/observe.rs", &["on_span", "stage"]),
                entry(
                    "crates/serve/src/feed.rs",
                    &["push_event", "push_transition", "cursor", "oldest"],
                ),
                entry("crates/serve/src/lib.rs", &["relock"]),
            ],
            mul_add_wrappers: vec!["crates/dsp/src/simd.rs".to_string()],
            ordered_scoring_files: vec![
                "crates/ssl/src/metrics.rs".to_string(),
                "crates/sed/src/metrics.rs".to_string(),
                "crates/bench/src/scenarios.rs".to_string(),
                "crates/bench/src/matrix.rs".to_string(),
            ],
            all_files_hot: false,
        }
    }

    /// Fixture mode: every file is hot-path, determinism-scoped and
    /// ordering-scoped, so seeded-violation fixtures trip every rule without
    /// having to live at manifest paths.
    pub fn all_hot() -> Self {
        Manifest {
            all_files_hot: true,
            ..Manifest::default()
        }
    }

    /// Hot-path scope for a file (matched by path suffix), if any.
    pub fn hot_scope(&self, rel_path: &str) -> Option<HotScope> {
        if self.all_files_hot {
            return Some(HotScope::AllFunctions);
        }
        self.hot_paths
            .iter()
            .find(|e| rel_path.ends_with(e.file.as_str()))
            .map(|e| e.scope.clone())
    }

    /// Whether bare `mul_add` is allowed in this file.
    pub fn is_mul_add_wrapper(&self, rel_path: &str) -> bool {
        !self.all_files_hot
            && self
                .mul_add_wrappers
                .iter()
                .any(|f| rel_path.ends_with(f.as_str()))
    }

    /// Whether this file is ordering-sensitive scoring/metrics code.
    pub fn is_ordered_scoring(&self, rel_path: &str) -> bool {
        self.all_files_hot
            || self
                .ordered_scoring_files
                .iter()
                .any(|f| rel_path.ends_with(f.as_str()))
    }
}
