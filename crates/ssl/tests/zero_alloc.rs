//! Asserts that the SRP-PHAT `compute_map_into` hot path is allocation-free in
//! steady state, using a counting global allocator.
//!
//! The whole test binary runs under the counting allocator; the assertions only
//! look at the *delta* across the measured region, so unrelated allocations made
//! while setting up (or by the test harness before/after) do not matter. The test
//! harness runs tests on secondary threads, but this file holds a single test, so
//! no other test can allocate concurrently inside the measured window.

use ispot_roadsim::geometry::Position;
use ispot_roadsim::microphone::MicrophoneArray;
use ispot_ssl::srp_fast::{SrpPhatFast, SrpSearchConfig};
use ispot_ssl::srp_phat::{SrpConfig, SrpMap, SrpPhat};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Wraps the system allocator, counting every allocation and reallocation.
struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: a pure pass-through to the system allocator — every layout/pointer
// contract is forwarded unchanged, the wrapper only bumps an atomic counter.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: delegates directly to `System.alloc` under the caller's layout.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        // SAFETY: `layout` is forwarded unchanged under the caller's contract.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: delegates directly to `System.dealloc`; `ptr` was produced by
    // the matching `alloc`/`realloc` on the same `System` allocator.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` are forwarded unchanged under the caller's contract.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: delegates directly to `System.realloc` under the caller's
    // layout contract.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        // SAFETY: all three arguments are forwarded unchanged under the caller's contract.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocation_count() -> usize {
    ALLOCATIONS.load(Ordering::SeqCst)
}

#[test]
fn steady_state_compute_map_into_allocates_nothing() {
    let fs = 16_000.0;
    let config = SrpConfig::default();
    let array = MicrophoneArray::circular(6, 0.2, Position::new(0.0, 0.0, 1.0));
    let fast = SrpPhatFast::new(config, &array, fs).unwrap();
    let conventional = SrpPhat::new(config, &array, fs).unwrap();

    // Deterministic multichannel frame; content is irrelevant to allocation counts.
    let channels: Vec<Vec<f64>> = (0..array.len())
        .map(|ch| {
            (0..config.frame_len)
                .map(|i| ((i + 31 * ch) as f64 * 0.137).sin())
                .collect()
        })
        .collect();
    let frame: Vec<&[f64]> = channels.iter().map(|c| c.as_slice()).collect();

    let mut scratch = fast.make_scratch();
    let mut map = SrpMap::default();
    // Warm-up: the first call may size the output map (scratch is pre-sized).
    fast.compute_map_into(&frame, &mut scratch, &mut map)
        .unwrap();

    let before = allocation_count();
    for _ in 0..10 {
        fast.compute_map_into(&frame, &mut scratch, &mut map)
            .unwrap();
    }
    let fast_allocs = allocation_count() - before;
    assert_eq!(
        fast_allocs, 0,
        "lag-domain compute_map_into allocated {fast_allocs} times in steady state"
    );

    // The hierarchical coarse-to-fine search reuses the same scratch (plus its
    // pre-sized coarse map and peak list) and must stay allocation-free as well.
    let hier =
        SrpPhatFast::with_search(config, SrpSearchConfig::hierarchical(), &array, fs).unwrap();
    let mut hier_scratch = hier.make_scratch();
    let mut hier_map = SrpMap::default();
    hier.compute_map_into(&frame, &mut hier_scratch, &mut hier_map)
        .unwrap();
    let before = allocation_count();
    for _ in 0..10 {
        hier.compute_map_into(&frame, &mut hier_scratch, &mut hier_map)
            .unwrap();
    }
    let hier_allocs = allocation_count() - before;
    assert_eq!(
        hier_allocs, 0,
        "hierarchical compute_map_into allocated {hier_allocs} times in steady state"
    );

    // The retained f64 reference path shares the scratch and must not allocate
    // either (its lag tables and correlation buffer are pre-sized too).
    fast.compute_map_reference_into(&frame, &mut scratch, &mut map)
        .unwrap();
    let before = allocation_count();
    for _ in 0..3 {
        fast.compute_map_reference_into(&frame, &mut scratch, &mut map)
            .unwrap();
    }
    let ref_allocs = allocation_count() - before;
    assert_eq!(
        ref_allocs, 0,
        "reference compute_map_reference_into allocated {ref_allocs} times in steady state"
    );

    // The conventional processor's scratch-reusing path must be allocation-free too.
    let mut conv_scratch = conventional.make_scratch();
    let mut conv_map = SrpMap::default();
    conventional
        .compute_map_into(&frame, &mut conv_scratch, &mut conv_map)
        .unwrap();
    let before = allocation_count();
    for _ in 0..3 {
        conventional
            .compute_map_into(&frame, &mut conv_scratch, &mut conv_map)
            .unwrap();
    }
    let conv_allocs = allocation_count() - before;
    assert_eq!(
        conv_allocs, 0,
        "conventional compute_map_into allocated {conv_allocs} times in steady state"
    );

    // Sanity check that the counter is actually live.
    let before = allocation_count();
    let v: Vec<u8> = Vec::with_capacity(64);
    assert!(allocation_count() > before, "counting allocator inactive");
    drop(v);
}
