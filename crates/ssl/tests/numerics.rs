//! Property tests pinning the numerics of the `f32` SIMD SRP pipeline against
//! its retained `f64` reference, and of the coarse-to-fine hierarchical search
//! against the exhaustive scan.
//!
//! Frames are synthesized directly (far-field delayed broadband noise, one
//! integer-sample delay per microphone) so every case exercises a physically
//! plausible cross-correlation structure with a controllable dominant azimuth.

use ispot_roadsim::geometry::Position;
use ispot_roadsim::microphone::MicrophoneArray;
use ispot_ssl::srp_fast::{SrpPhatFast, SrpSearchConfig};
use ispot_ssl::srp_phat::{SrpConfig, SrpMap};
use proptest::prelude::*;

/// Deterministic white noise in `[-1, 1]` from a splitmix64 stream.
fn noise(seed: u64, len: usize) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    (0..len)
        .map(|_| {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            (z as f64 / u64::MAX as f64) * 2.0 - 1.0
        })
        .collect()
}

/// One frame of far-field broadband noise arriving from `azimuth_deg`: each
/// channel is the shared noise stream shifted by its (rounded) geometric delay.
fn far_field_frame(
    array: &MicrophoneArray,
    config: &SrpConfig,
    fs: f64,
    azimuth_deg: f64,
    seed: u64,
) -> Vec<Vec<f64>> {
    let theta = azimuth_deg.to_radians();
    let unit = Position::new(theta.cos(), theta.sin(), 0.0);
    let margin = 64;
    let base = noise(seed, config.frame_len + 2 * margin);
    array
        .positions()
        .iter()
        .map(|p| {
            // A mic further along the propagation direction hears the wavefront
            // earlier; round to the nearest integer sample.
            let delay = (-(p.dot(unit)) / config.speed_of_sound * fs).round() as isize;
            let start = (margin as isize + delay) as usize;
            base[start..start + config.frame_len].to_vec()
        })
        .collect()
}

/// Wrap-aware index distance on the circular azimuth grid.
fn grid_distance(a: usize, b: usize, n: usize) -> usize {
    let d = (a + n - b) % n;
    d.min(n - d)
}

fn argmax(power: &[f64]) -> usize {
    power
        .iter()
        .enumerate()
        .max_by(|x, y| x.1.total_cmp(y.1))
        .map(|(i, _)| i)
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The `f32` SIMD map must agree with the `f64` reference path elementwise
    /// (relative to the map's dynamic range) and place the global peak in the
    /// same grid cell (± one neighbour, since adjacent cells can tie to within
    /// `f32` rounding).
    #[test]
    fn f32_simd_map_matches_f64_reference(
        azimuth_deg in 0.0f64..360.0,
        seed in 1u64..10_000,
    ) {
        let fs = 16_000.0;
        let config = SrpConfig::default();
        let array = MicrophoneArray::circular(6, 0.2, Position::new(0.0, 0.0, 1.0));
        let fast = SrpPhatFast::new(config, &array, fs).unwrap();

        let channels = far_field_frame(&array, &config, fs, azimuth_deg, seed);
        let frame: Vec<&[f64]> = channels.iter().map(|c| c.as_slice()).collect();

        let mut scratch = fast.make_scratch();
        let mut simd_map = SrpMap::default();
        let mut ref_map = SrpMap::default();
        fast.compute_map_into(&frame, &mut scratch, &mut simd_map).unwrap();
        fast.compute_map_reference_into(&frame, &mut scratch, &mut ref_map).unwrap();

        let simd = simd_map.power();
        let reference = ref_map.power();
        prop_assert_eq!(simd.len(), reference.len());
        let scale = reference
            .iter()
            .fold(0.0f64, |m, p| m.max(p.abs()))
            .max(1e-12);
        for (d, (a, b)) in simd.iter().zip(reference).enumerate() {
            prop_assert!(
                (a - b).abs() <= 1e-3 * scale,
                "direction {}: simd {} vs reference {} (scale {})",
                d, a, b, scale
            );
        }

        let n = simd.len();
        let dist = grid_distance(argmax(simd), argmax(reference), n);
        prop_assert!(
            dist <= 1,
            "global peak moved {} cells between f32 SIMD ({}) and f64 reference ({})",
            dist, argmax(simd), argmax(reference)
        );
    }

    /// The hierarchical coarse-to-fine search must reproduce the exhaustive
    /// scan's top peaks: each of the strongest exhaustive peaks has a
    /// hierarchical counterpart within one grid cell, and the global maximum
    /// lands in exactly the same cell (its neighbourhood is re-steered at full
    /// resolution, so the scores there are bit-identical).
    #[test]
    fn hierarchical_peaks_match_exhaustive_within_one_cell(
        azimuth_deg in 0.0f64..360.0,
        seed in 1u64..10_000,
    ) {
        let fs = 16_000.0;
        let config = SrpConfig::default();
        let array = MicrophoneArray::circular(6, 0.2, Position::new(0.0, 0.0, 1.0));
        let exhaustive = SrpPhatFast::new(config, &array, fs).unwrap();
        let hierarchical = SrpPhatFast::with_search(
            config,
            SrpSearchConfig::hierarchical(),
            &array,
            fs,
        )
        .unwrap();

        let channels = far_field_frame(&array, &config, fs, azimuth_deg, seed);
        let frame: Vec<&[f64]> = channels.iter().map(|c| c.as_slice()).collect();

        let mut ex_scratch = exhaustive.make_scratch();
        let mut hi_scratch = hierarchical.make_scratch();
        let mut ex_map = SrpMap::default();
        let mut hi_map = SrpMap::default();
        exhaustive.compute_map_into(&frame, &mut ex_scratch, &mut ex_map).unwrap();
        hierarchical.compute_map_into(&frame, &mut hi_scratch, &mut hi_map).unwrap();

        let n = ex_map.power().len();
        let (ex_best, hi_best) = (argmax(ex_map.power()), argmax(hi_map.power()));
        prop_assert!(
            ex_best == hi_best,
            "global SRP peak differs: exhaustive {} vs hierarchical {}",
            ex_best, hi_best
        );

        // Top-K agreement: every strong, well-separated exhaustive peak must
        // appear in the hierarchical map within one grid cell. K stays at the
        // hierarchical coarse-peak budget so each one had a refinement window.
        let k = SrpSearchConfig::hierarchical().coarse_peaks.min(3);
        let ex_peaks = ex_map.peaks(k, 20.0);
        let hi_peaks = hi_map.peaks(k, 20.0);
        for pk in &ex_peaks {
            // Sidelobes far below the main peak may round differently under
            // interpolation; only pin peaks within 6 dB of the maximum.
            if pk.power < ex_peaks[0].power * 0.25 {
                continue;
            }
            let matched = hi_peaks
                .iter()
                .any(|h| grid_distance(h.index, pk.index, n) <= 1);
            prop_assert!(
                matched,
                "exhaustive peak at index {} ({:.1} deg, power {:.3e}) has no \
                 hierarchical counterpart within one cell; hierarchical peaks: {:?}",
                pk.index, pk.azimuth_deg, pk.power,
                hi_peaks.iter().map(|p| p.index).collect::<Vec<_>>()
            );
        }
    }
}
