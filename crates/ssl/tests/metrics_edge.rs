//! Edge-case coverage for the scoring metrics the scenario matrix aggregates:
//! empty truth sets, zero confirmed tracks, and all-non-finite bearings.
//!
//! The 6 hand-built scenes only exercise these functions on well-populated
//! inputs; the generated matrix routinely produces no-event scenes (empty
//! truth), missed detections (zero tracks) and NaN-slotted truth tables
//! (inactive sources are marked non-finite in place so assignment indices
//! stay stable), so the degenerate paths are scored on every run.

use ispot_ssl::metrics::{nearest_truth_error_deg, ospa_deg, TrackIdentityScore};
use ispot_ssl::multitrack::TrackId;

const CUTOFF: f64 = 30.0;

#[test]
fn ospa_of_two_empty_sets_is_zero() {
    assert_eq!(ospa_deg(&[], &[], CUTOFF), 0.0);
}

#[test]
fn ospa_charges_full_cutoff_for_unmatched_mass() {
    // No estimates against k truths: every truth is a miss at the cutoff.
    assert_eq!(ospa_deg(&[], &[10.0], CUTOFF), CUTOFF);
    assert_eq!(ospa_deg(&[], &[10.0, -60.0, 120.0], CUTOFF), CUTOFF);
    // Symmetric: spurious estimates against an empty truth cost the same.
    assert_eq!(ospa_deg(&[10.0, -60.0], &[], CUTOFF), CUTOFF);
}

#[test]
fn ospa_drops_non_finite_bearings_before_scoring() {
    // All-non-finite sets behave exactly like empty ones.
    let junk = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY];
    assert_eq!(ospa_deg(&junk, &junk, CUTOFF), 0.0);
    assert_eq!(ospa_deg(&junk, &[40.0], CUTOFF), CUTOFF);
    // NaN slots in an otherwise valid truth table are ignored, not matched.
    assert_eq!(ospa_deg(&[40.0], &[f64::NAN, 40.0, f64::NAN], CUTOFF), 0.0);
}

#[test]
fn nearest_truth_error_with_empty_or_non_finite_truth_is_none() {
    assert_eq!(nearest_truth_error_deg(10.0, &[]), None);
    assert_eq!(nearest_truth_error_deg(10.0, &[f64::NAN]), None);
    assert_eq!(
        nearest_truth_error_deg(10.0, &[f64::NAN, f64::INFINITY]),
        None
    );
    // A single finite slot among NaNs is still scored.
    let err = nearest_truth_error_deg(10.0, &[f64::NAN, 13.0, f64::NAN]);
    assert_eq!(err, Some(3.0));
}

#[test]
fn identity_score_with_no_tracks_accumulates_nothing() {
    let mut score = TrackIdentityScore::with_hysteresis(10.0);
    // A scene where detection never confirms a track: frames carry truths but
    // no tracks. Nothing is scored, nothing panics, nothing swaps.
    for _ in 0..50 {
        score.observe_frame(&[], &[40.0, -120.0]);
    }
    assert_eq!(score.num_tracks(), 0);
    assert_eq!(score.samples(), 0);
    assert_eq!(score.swap_count(), 0);
    assert_eq!(score.mean_error_deg(), None);
    assert_eq!(score.worst_track_mean_error_deg(), None);
}

#[test]
fn identity_score_with_empty_truth_accumulates_nothing() {
    let mut score = TrackIdentityScore::new();
    let id = TrackId::from_raw(0);
    // A no-event scene where a phantom track exists but no truth is active.
    for _ in 0..50 {
        score.observe_frame(&[(id, 75.0)], &[]);
    }
    assert_eq!(score.num_tracks(), 0);
    assert_eq!(score.samples(), 0);
    assert_eq!(score.mean_error_deg(), None);
}

#[test]
fn identity_score_ignores_all_non_finite_frames() {
    let mut score = TrackIdentityScore::new();
    let (a, b) = (TrackId::from_raw(0), TrackId::from_raw(1));
    // NaN-slotted truth table with no active source, and a coasting track
    // reporting a non-finite bearing: both sides filter to empty.
    score.observe_frame(&[(a, f64::NAN)], &[40.0]);
    score.observe_frame(&[(a, 40.0), (b, f64::INFINITY)], &[f64::NAN, f64::NAN]);
    assert_eq!(score.num_tracks(), 0);
    assert_eq!(score.samples(), 0);
    assert_eq!(score.swap_count(), 0);
}

#[test]
fn identity_score_survives_truth_going_inactive_and_returning() {
    // The NaN-slot convention: a source's slot goes NaN while it is inactive
    // and returns later at the SAME index. The track must keep its identity
    // (no swap) because assignment indices are stable.
    let mut score = TrackIdentityScore::with_hysteresis(10.0);
    let id = TrackId::from_raw(7);
    score.observe_frame(&[(id, 41.0)], &[f64::NAN, 40.0]);
    score.observe_frame(&[(id, f64::NAN)], &[f64::NAN, f64::NAN]);
    score.observe_frame(&[(id, 42.0)], &[f64::NAN, 43.0]);
    assert_eq!(score.num_tracks(), 1);
    assert_eq!(score.samples(), 2);
    assert_eq!(score.swap_count(), 0);
    let mean = score.mean_error_deg().expect("two scored observations");
    assert!((mean - 1.0).abs() < 1e-9, "mean {mean}");
}
