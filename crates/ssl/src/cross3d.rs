//! Cross3D-style CNN back-end for robust localization.
//!
//! Cross3D (Diaz-Guerra et al., cited as \[38\] in the paper) replaces the explicit
//! argmax over the SRP-PHAT map — which is brittle under noise and reverberation — with
//! a convolutional network that consumes a *sequence* of SRP maps (a time × azimuth
//! power image) and predicts the source direction. Sec. IV-B of the I-SPOT paper uses
//! this hybrid DSP + CNN pipeline as the baseline workload for the hardware–algorithm
//! co-design study; the network here is a reduced-scale but structurally faithful
//! stand-in (conv → pool → conv → pool → dense → sector logits).

use crate::error::SslError;
use crate::srp_phat::SrpMap;
use ispot_nn::activation::Activation;
use ispot_nn::conv::Conv2d;
use ispot_nn::dense::Dense;
use ispot_nn::layer::Flatten;
use ispot_nn::loss::CrossEntropyLoss;
use ispot_nn::model::Sequential;
use ispot_nn::optimizer::Adam;
use ispot_nn::pooling::MaxPool2d;
use ispot_nn::Tensor;
use serde::{Deserialize, Serialize};

/// Configuration of the [`Cross3dNet`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Cross3dConfig {
    /// Number of consecutive SRP maps stacked into one network input.
    pub num_maps: usize,
    /// Number of azimuth points each map is resampled to (the network's width).
    pub map_resolution: usize,
    /// Number of output azimuth sectors (classification bins over 360°).
    pub num_sectors: usize,
    /// Channels of the first convolution.
    pub conv1_channels: usize,
    /// Channels of the second convolution.
    pub conv2_channels: usize,
    /// Hidden dense width.
    pub hidden_units: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Weight-initialization / shuffling seed.
    pub seed: u64,
}

impl Default for Cross3dConfig {
    fn default() -> Self {
        Cross3dConfig {
            num_maps: 16,
            map_resolution: 72,
            num_sectors: 36,
            conv1_channels: 8,
            conv2_channels: 16,
            hidden_units: 64,
            epochs: 20,
            batch_size: 16,
            learning_rate: 1e-3,
            seed: 7,
        }
    }
}

impl Cross3dConfig {
    /// A reduced configuration for unit tests and quick experiments.
    pub fn tiny() -> Self {
        Cross3dConfig {
            num_maps: 8,
            map_resolution: 36,
            num_sectors: 12,
            conv1_channels: 4,
            conv2_channels: 8,
            hidden_units: 32,
            epochs: 25,
            batch_size: 8,
            learning_rate: 2e-3,
            ..Cross3dConfig::default()
        }
    }

    fn validate(&self) -> Result<(), SslError> {
        if self.num_maps < 4 || !self.num_maps.is_multiple_of(4) {
            return Err(SslError::invalid_config(
                "num_maps",
                "must be at least 4 and divisible by 4",
            ));
        }
        if self.map_resolution < 4 || !self.map_resolution.is_multiple_of(4) {
            return Err(SslError::invalid_config(
                "map_resolution",
                "must be at least 4 and divisible by 4",
            ));
        }
        if self.num_sectors == 0 {
            return Err(SslError::invalid_config("num_sectors", "must be positive"));
        }
        if self.conv1_channels == 0 || self.conv2_channels == 0 || self.hidden_units == 0 {
            return Err(SslError::invalid_config("channels", "must be positive"));
        }
        if self.epochs == 0 || self.batch_size == 0 || self.learning_rate <= 0.0 {
            return Err(SslError::invalid_config(
                "training parameters",
                "must be positive",
            ));
        }
        Ok(())
    }
}

/// The Cross3D-style localization network.
#[derive(Debug)]
pub struct Cross3dNet {
    config: Cross3dConfig,
    model: Sequential,
    trained: bool,
}

impl Cross3dNet {
    /// Creates an untrained network.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid.
    pub fn new(config: Cross3dConfig) -> Result<Self, SslError> {
        config.validate()?;
        let mut model = Sequential::new();
        model.push(Conv2d::new(
            1,
            config.conv1_channels,
            (3, 3),
            1,
            1,
            config.seed,
        )?);
        model.push(Activation::relu());
        model.push(MaxPool2d::new((2, 2))?);
        model.push(Conv2d::new(
            config.conv1_channels,
            config.conv2_channels,
            (3, 3),
            1,
            1,
            config.seed.wrapping_add(1),
        )?);
        model.push(Activation::relu());
        model.push(MaxPool2d::new((2, 2))?);
        model.push(Flatten::new());
        let flat = config.conv2_channels * (config.num_maps / 4) * (config.map_resolution / 4);
        model.push(Dense::new(
            flat,
            config.hidden_units,
            config.seed.wrapping_add(2),
        )?);
        model.push(Activation::relu());
        model.push(Dense::new(
            config.hidden_units,
            config.num_sectors,
            config.seed.wrapping_add(3),
        )?);
        Ok(Cross3dNet {
            config,
            model,
            trained: false,
        })
    }

    /// Returns the configuration.
    pub fn config(&self) -> Cross3dConfig {
        self.config
    }

    /// Total number of trainable parameters.
    pub fn num_parameters(&self) -> usize {
        self.model.num_parameters()
    }

    /// Whether the network has been trained.
    pub fn is_trained(&self) -> bool {
        self.trained
    }

    /// Gives mutable access to the underlying model (used by the co-design passes).
    pub fn model_mut(&mut self) -> &mut Sequential {
        &mut self.model
    }

    /// Azimuth (degrees) of the centre of output sector `sector`.
    pub fn sector_center_deg(&self, sector: usize) -> f64 {
        -180.0 + 360.0 * (sector as f64 + 0.5) / self.config.num_sectors as f64
    }

    /// Output sector index containing `azimuth_deg`.
    pub fn sector_of(&self, azimuth_deg: f64) -> usize {
        let wrapped = crate::tracking::wrap_deg(azimuth_deg);
        let t = (wrapped + 180.0) / 360.0;
        ((t * self.config.num_sectors as f64) as usize).min(self.config.num_sectors - 1)
    }

    /// Resamples a sequence of SRP maps into the fixed `[num_maps, map_resolution]`
    /// input patch (linear interpolation over azimuth, crop/repeat over time) and
    /// normalizes each map to `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns an error if `maps` is empty.
    pub fn input_from_maps(&self, maps: &[SrpMap]) -> Result<Vec<f64>, SslError> {
        if maps.is_empty() {
            return Err(SslError::invalid_config("maps", "must not be empty"));
        }
        let t_out = self.config.num_maps;
        let g_out = self.config.map_resolution;
        let mut patch = vec![0.0; t_out * g_out];
        for t in 0..t_out {
            // Repeat the last available map if the sequence is shorter than num_maps.
            let src = &maps[t.min(maps.len() - 1)];
            let norm = src.normalized();
            let g_in = norm.len().max(1);
            for g in 0..g_out {
                let pos = g as f64 / g_out as f64 * g_in as f64;
                let i0 = pos.floor() as usize % g_in;
                let i1 = (i0 + 1) % g_in;
                let frac = pos - pos.floor();
                patch[t * g_out + g] = norm[i0] * (1.0 - frac) + norm[i1] * frac;
            }
        }
        Ok(patch)
    }

    fn batch_tensor(&self, patches: &[Vec<f64>]) -> Result<Tensor, SslError> {
        let t = self.config.num_maps;
        let g = self.config.map_resolution;
        let mut data = Vec::with_capacity(patches.len() * t * g);
        for p in patches {
            data.extend_from_slice(p);
        }
        Ok(Tensor::from_vec(data, &[patches.len(), 1, t, g])?)
    }

    /// Trains the network on input patches (as produced by
    /// [`Cross3dNet::input_from_maps`]) labelled with ground-truth azimuths in degrees.
    /// Returns the per-epoch mean loss.
    ///
    /// # Errors
    ///
    /// Returns an error if the inputs are empty or inconsistent.
    pub fn train(
        &mut self,
        patches: &[Vec<f64>],
        azimuths_deg: &[f64],
    ) -> Result<Vec<f64>, SslError> {
        if patches.is_empty() || patches.len() != azimuths_deg.len() {
            return Err(SslError::invalid_config(
                "patches",
                "must be non-empty and match the number of labels",
            ));
        }
        let labels: Vec<usize> = azimuths_deg.iter().map(|&a| self.sector_of(a)).collect();
        let loss_fn = CrossEntropyLoss::new();
        let mut optimizer = Adam::new(self.config.learning_rate);
        let mut order: Vec<usize> = (0..patches.len()).collect();
        let mut rng_state = self.config.seed.max(1);
        let mut epoch_losses = Vec::with_capacity(self.config.epochs);
        for _ in 0..self.config.epochs {
            for i in (1..order.len()).rev() {
                rng_state ^= rng_state << 13;
                rng_state ^= rng_state >> 7;
                rng_state ^= rng_state << 17;
                let j = (rng_state % (i as u64 + 1)) as usize;
                order.swap(i, j);
            }
            let mut total = 0.0;
            let mut batches = 0;
            for chunk in order.chunks(self.config.batch_size) {
                let batch: Vec<Vec<f64>> = chunk.iter().map(|&i| patches[i].clone()).collect();
                let targets: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();
                let x = self.batch_tensor(&batch)?;
                total += self
                    .model
                    .train_batch(&x, &targets, &loss_fn, &mut optimizer)?;
                batches += 1;
            }
            epoch_losses.push(total / batches.max(1) as f64);
        }
        self.trained = true;
        Ok(epoch_losses)
    }

    /// Predicts the azimuth (degrees, sector centre) for one input patch.
    ///
    /// # Errors
    ///
    /// Returns an error if inference fails.
    pub fn predict(&mut self, patch: &[f64]) -> Result<f64, SslError> {
        let x = self.batch_tensor(&[patch.to_vec()])?;
        let sector = self.model.predict(&x)?[0];
        Ok(self.sector_center_deg(sector))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mean_angular_error_deg;

    /// Builds a synthetic "SRP-map sequence" patch with a Gaussian power bump at the
    /// given azimuth plus deterministic pseudo-noise — a cheap stand-in for simulated
    /// acoustic data that exercises exactly the same network path.
    fn synthetic_patch(
        cfg: &Cross3dConfig,
        azimuth_deg: f64,
        noise_level: f64,
        seed: u64,
    ) -> Vec<f64> {
        let t = cfg.num_maps;
        let g = cfg.map_resolution;
        let mut state = seed.max(1);
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let mut patch = vec![0.0; t * g];
        for ti in 0..t {
            for gi in 0..g {
                let az = -180.0 + 360.0 * gi as f64 / g as f64;
                let d = crate::metrics::angular_error_deg(az, azimuth_deg);
                let bump = (-d * d / (2.0 * 20.0 * 20.0)).exp();
                patch[ti * g + gi] = bump + noise_level * next();
            }
        }
        patch
    }

    #[test]
    fn network_learns_to_localize_synthetic_maps() {
        let cfg = Cross3dConfig::tiny();
        let mut net = Cross3dNet::new(cfg).unwrap();
        // Training set: bumps at the sector centres.
        let mut patches = Vec::new();
        let mut azimuths = Vec::new();
        for s in 0..cfg.num_sectors {
            let az = net.sector_center_deg(s);
            for k in 0..4 {
                patches.push(synthetic_patch(&cfg, az, 0.3, (s * 7 + k + 1) as u64));
                azimuths.push(az);
            }
        }
        let losses = net.train(&patches, &azimuths).unwrap();
        assert!(losses.last().unwrap() < losses.first().unwrap());
        // Evaluate on fresh noisy patches.
        let mut estimates = Vec::new();
        let mut truths = Vec::new();
        for s in 0..cfg.num_sectors {
            let az = net.sector_center_deg(s);
            let patch = synthetic_patch(&cfg, az, 0.3, (1000 + s) as u64);
            estimates.push(net.predict(&patch).unwrap());
            truths.push(az);
        }
        let err = mean_angular_error_deg(&estimates, &truths);
        // Chance level for 12 sectors is 90 degrees mean error; require far better.
        assert!(err < 40.0, "mean angular error {err}");
    }

    #[test]
    fn sector_mapping_round_trips() {
        let net = Cross3dNet::new(Cross3dConfig::tiny()).unwrap();
        for s in 0..net.config().num_sectors {
            let az = net.sector_center_deg(s);
            assert_eq!(net.sector_of(az), s);
        }
        // -180 and +180 are the same direction and both land in the last sector.
        assert_eq!(net.sector_of(-180.0), net.config().num_sectors - 1);
        assert_eq!(net.sector_of(179.9), net.config().num_sectors - 1);
        assert_eq!(net.sector_of(-179.9), 0);
    }

    #[test]
    fn input_from_maps_handles_short_sequences() {
        let cfg = Cross3dConfig::tiny();
        let net = Cross3dNet::new(cfg).unwrap();
        let map = SrpMap::new(
            (0..181).map(|i| -180.0 + 2.0 * i as f64).collect(),
            (0..181).map(|i| (i as f64 * 0.1).sin().abs()).collect(),
        );
        let patch = net.input_from_maps(&[map]).unwrap();
        assert_eq!(patch.len(), cfg.num_maps * cfg.map_resolution);
        assert!(patch.iter().all(|v| (0.0..=1.0 + 1e-9).contains(v)));
        assert!(net.input_from_maps(&[]).is_err());
    }

    #[test]
    fn invalid_configurations_rejected() {
        for bad in [
            Cross3dConfig {
                num_maps: 6,
                ..Cross3dConfig::tiny()
            },
            Cross3dConfig {
                map_resolution: 0,
                ..Cross3dConfig::tiny()
            },
            Cross3dConfig {
                num_sectors: 0,
                ..Cross3dConfig::tiny()
            },
            Cross3dConfig {
                learning_rate: 0.0,
                ..Cross3dConfig::tiny()
            },
        ] {
            assert!(Cross3dNet::new(bad).is_err());
        }
    }

    #[test]
    fn parameter_count_is_reported() {
        let net = Cross3dNet::new(Cross3dConfig::tiny()).unwrap();
        assert!(net.num_parameters() > 1000);
        assert!(!net.is_trained());
    }
}
