//! Runtime-dispatched SIMD kernels for the low-complexity SRP-PHAT hot path.
//!
//! Two per-frame loops dominate [`crate::srp_fast::SrpPhatFast::compute_map_into`]:
//!
//! 1. **PHAT + lag synthesis** ([`phat_lags`]): for every microphone pair, form the
//!    PHAT-normalized cross spectrum and synthesize its band-limited
//!    cross-correlation directly on the `±max_lag` grid as a small dense
//!    matrix-vector product against precomputed cosine/sine tables — replacing the
//!    full-band spectrum rebuild plus full-length inverse FFT per pair. The `±lag`
//!    symmetry is folded: one fused pass per non-negative lag row produces
//!    `A = Σ Re·cos`, `B = Σ Im·sin`, and writes `corr(+ℓ) = A − B`,
//!    `corr(−ℓ) = A + B`, halving both flops and table memory.
//! 2. **Steering** ([`steer`]): for every direction, the `pairs × K` windowed-sinc
//!    reduction over the lag tables. `K = 8` taps is exactly one [`F32x8`], so a
//!    direction is 15 lane loads + 15 lane FMAs + one horizontal sum.
//!
//! Both kernels come in two copies selected at runtime: a portable one written
//! over [`F32x8`] lane arrays (autovectorized with baseline codegen), and an
//! `avx2`+`fma` one whose vector shape is pinned with explicit `core::arch`
//! intrinsics. The intrinsic copies exist because LLVM's re-vectorization of
//! the portable lane loops is context-fragile — in this crate's exact inlining
//! context it demoted the reductions to 128-bit halves with per-iteration
//! accumulator spills, a measured ~4× slowdown (see
//! [`ispot_dsp::simd::paired_dot_fma`]). Callers pass the cached
//! [`ispot_dsp::simd::fma_available`] result as `use_fma`.

use ispot_dsp::simd::{paired_dot, F32x8};

#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
use ispot_dsp::simd::paired_dot_fma;

/// Tap count of one steering window; one full [`F32x8`] register.
pub(crate) const K_TAPS: usize = 8;

/// Band spectra of all channels, structure-of-arrays (borrowed from `SrpScratch`).
pub(crate) struct PairSpectra<'a> {
    /// Real parts, channel-major `num_channels × num_bins`.
    pub ch_re: &'a [f32],
    /// Imaginary parts, channel-major `num_channels × num_bins`.
    pub ch_im: &'a [f32],
    /// Number of band bins per channel.
    pub nb: usize,
    /// Microphone pair index list.
    pub pairs: &'a [(usize, usize)],
}

/// The precomputed lag-synthesis operator (borrowed from `SrpPhatFast`).
pub(crate) struct LagSynthOp<'a> {
    /// `scale_k · cos(2π k ℓ / N)`, row-major `(max_lag + 1) × num_bins`.
    pub syn_cos: &'a [f32],
    /// `scale_k · sin(2π k ℓ / N)`, same layout. Row `ℓ = 0` must be zero (it
    /// is `sin(0)` by construction): the two folded writes of that row target
    /// the same cell, and only a zero `B` makes them agree.
    pub syn_sin: &'a [f32],
    /// Maximum integer lag (rows cover `0..=max_lag`).
    pub max_lag: usize,
    /// Zero-pad cells at each edge of one lag table.
    pub pad: usize,
    /// Length of one padded lag table.
    pub padded_len: usize,
}

/// The precomputed steering operator (borrowed from `SrpPhatFast`).
pub(crate) struct SteerOp<'a> {
    /// Windowed-sinc weights, direction-major `(d · num_pairs + p) · K_TAPS`.
    pub tap_weights: &'a [f32],
    /// Window start offsets into each pair's padded lag table, same indexing.
    pub tap_starts: &'a [u32],
    /// Number of microphone pairs.
    pub num_pairs: usize,
    /// Length of one padded lag table.
    pub padded_len: usize,
}

/// PHAT-normalizes one pair's cross spectrum `X_i · conj(X_j) / |·|` into
/// `phat_re`/`phat_im` (all slices pre-cut to the band length). A plain scalar
/// loop on purpose: LLVM autovectorizes the sqrt/divide form well on every
/// target, so both kernel copies share it.
#[inline(always)]
fn phat_norm_pair(
    ri: &[f32],
    ii: &[f32],
    rj: &[f32],
    ij: &[f32],
    phat_re: &mut [f32],
    phat_im: &mut [f32],
) {
    for (k, slot_re) in phat_re.iter_mut().enumerate() {
        let cr = ri[k] * rj[k] + ii[k] * ij[k];
        let ci = ii[k] * rj[k] - ri[k] * ij[k];
        let mag = (cr * cr + ci * ci).sqrt();
        let w = if mag > 1e-12 { 1.0 / mag } else { 0.0 };
        *slot_re = cr * w;
        phat_im[k] = ci * w;
    }
}

fn phat_lags_portable(
    spectra: &PairSpectra<'_>,
    op: &LagSynthOp<'_>,
    phat_re: &mut [f32],
    phat_im: &mut [f32],
    lag_tables: &mut [f32],
) {
    let nb = spectra.nb;
    for (pair_idx, &(i, j)) in spectra.pairs.iter().enumerate() {
        phat_norm_pair(
            &spectra.ch_re[i * nb..(i + 1) * nb],
            &spectra.ch_im[i * nb..(i + 1) * nb],
            &spectra.ch_re[j * nb..(j + 1) * nb],
            &spectra.ch_im[j * nb..(j + 1) * nb],
            &mut phat_re[..nb],
            &mut phat_im[..nb],
        );
        // Lag synthesis: one fused (cos·re, sin·im) reduction per non-negative
        // lag, folded to both signs.
        let table = &mut lag_tables[pair_idx * op.padded_len..][..op.padded_len];
        let center = op.pad + op.max_lag;
        for lag in 0..=op.max_lag {
            let cos_row = &op.syn_cos[lag * nb..(lag + 1) * nb];
            let sin_row = &op.syn_sin[lag * nb..(lag + 1) * nb];
            let (a, b) = paired_dot::<false>(cos_row, &phat_re[..nb], sin_row, &phat_im[..nb]);
            table[center + lag] = a - b;
            table[center - lag] = a + b;
        }
    }
}

fn steer_portable(op: &SteerOp<'_>, lag_tables: &[f32], d0: usize, step: usize, out: &mut [f64]) {
    for (di, slot) in out.iter_mut().enumerate() {
        let row = (d0 + di * step) * op.num_pairs;
        let mut acc0 = F32x8::zero();
        let mut acc1 = F32x8::zero();
        for p in 0..op.num_pairs {
            let w = F32x8::load(&op.tap_weights[(row + p) * K_TAPS..][..K_TAPS]);
            let start = op.tap_starts[row + p] as usize;
            let t = F32x8::load(&lag_tables[p * op.padded_len + start..][..K_TAPS]);
            if p & 1 == 0 {
                acc0 = w.mul_add::<false>(t, acc0);
            } else {
                acc1 = w.mul_add::<false>(t, acc1);
            }
        }
        *slot = (acc0 + acc1).sum() as f64;
    }
}

/// Same loop as [`phat_lags_portable`], but the lag-synthesis reduction goes
/// through the intrinsic [`paired_dot_fma`], which guarantees 256-bit FMA
/// codegen regardless of inlining context.
#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
#[target_feature(enable = "avx2", enable = "fma")]
fn phat_lags_avx2(
    spectra: &PairSpectra<'_>,
    op: &LagSynthOp<'_>,
    phat_re: &mut [f32],
    phat_im: &mut [f32],
    lag_tables: &mut [f32],
) {
    let nb = spectra.nb;
    for (pair_idx, &(i, j)) in spectra.pairs.iter().enumerate() {
        phat_norm_pair(
            &spectra.ch_re[i * nb..(i + 1) * nb],
            &spectra.ch_im[i * nb..(i + 1) * nb],
            &spectra.ch_re[j * nb..(j + 1) * nb],
            &spectra.ch_im[j * nb..(j + 1) * nb],
            &mut phat_re[..nb],
            &mut phat_im[..nb],
        );
        let table = &mut lag_tables[pair_idx * op.padded_len..][..op.padded_len];
        let center = op.pad + op.max_lag;
        for lag in 0..=op.max_lag {
            let cos_row = &op.syn_cos[lag * nb..(lag + 1) * nb];
            let sin_row = &op.syn_sin[lag * nb..(lag + 1) * nb];
            // Safe call: this context already enables avx2 + fma.
            let (a, b) = paired_dot_fma(cos_row, &phat_re[..nb], sin_row, &phat_im[..nb]);
            table[center + lag] = a - b;
            table[center - lag] = a + b;
        }
    }
}

/// Same loop as [`steer_portable`], with the per-direction tap reduction pinned
/// to 256-bit FMAs.
#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
#[target_feature(enable = "avx2", enable = "fma")]
fn steer_avx2(op: &SteerOp<'_>, lag_tables: &[f32], d0: usize, step: usize, out: &mut [f64]) {
    #[cfg(target_arch = "x86")]
    use core::arch::x86::{
        _mm256_add_ps, _mm256_fmadd_ps, _mm256_loadu_ps, _mm256_setzero_ps, _mm256_storeu_ps,
    };
    #[cfg(target_arch = "x86_64")]
    use core::arch::x86_64::{
        _mm256_add_ps, _mm256_fmadd_ps, _mm256_loadu_ps, _mm256_setzero_ps, _mm256_storeu_ps,
    };
    for (di, slot) in out.iter_mut().enumerate() {
        let row = (d0 + di * step) * op.num_pairs;
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        for p in 0..op.num_pairs {
            let w = &op.tap_weights[(row + p) * K_TAPS..][..K_TAPS];
            let start = op.tap_starts[row + p] as usize;
            let t = &lag_tables[p * op.padded_len + start..][..K_TAPS];
            // SAFETY: both slices hold exactly `K_TAPS == 8` lanes.
            let (wv, tv) = unsafe { (_mm256_loadu_ps(w.as_ptr()), _mm256_loadu_ps(t.as_ptr())) };
            if p & 1 == 0 {
                acc0 = _mm256_fmadd_ps(wv, tv, acc0);
            } else {
                acc1 = _mm256_fmadd_ps(wv, tv, acc1);
            }
        }
        let mut lanes = [0.0f32; 8];
        // SAFETY: the destination is an eight-element array.
        unsafe { _mm256_storeu_ps(lanes.as_mut_ptr(), _mm256_add_ps(acc0, acc1)) };
        *slot = F32x8(lanes).sum() as f64;
    }
}

/// PHAT normalization + folded lag synthesis for every pair, dispatched to the
/// fused `avx2`+`fma` copy when `use_fma` (callers cache
/// [`ispot_dsp::simd::fma_available`]).
pub(crate) fn phat_lags(
    use_fma: bool,
    spectra: &PairSpectra<'_>,
    op: &LagSynthOp<'_>,
    phat_re: &mut [f32],
    phat_im: &mut [f32],
    lag_tables: &mut [f32],
) {
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    if use_fma {
        // SAFETY: `use_fma` is only true when `fma_available()` confirmed
        // avx2+fma support on this host.
        unsafe { phat_lags_avx2(spectra, op, phat_re, phat_im, lag_tables) };
        return;
    }
    let _ = use_fma;
    phat_lags_portable(spectra, op, phat_re, phat_im, lag_tables);
}

/// Steers directions `d0, d0+step, …` (one per `out` slot), dispatched like
/// [`phat_lags`]. Serves the exhaustive pass (`step = 1` over the whole grid),
/// the decimated coarse pass (`step = decimation`) and the refinement runs
/// (`step = 1` over a window).
pub(crate) fn steer(
    use_fma: bool,
    op: &SteerOp<'_>,
    lag_tables: &[f32],
    d0: usize,
    step: usize,
    out: &mut [f64],
) {
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    if use_fma {
        // SAFETY: `use_fma` is only true when `fma_available()` confirmed
        // avx2+fma support on this host.
        unsafe { steer_avx2(op, lag_tables, d0, step, out) };
        return;
    }
    let _ = use_fma;
    steer_portable(op, lag_tables, d0, step, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scalar f64 re-implementation of one steered direction.
    fn steer_reference(op: &SteerOp<'_>, lag_tables: &[f32], d: usize) -> f64 {
        let mut acc = 0.0f64;
        for p in 0..op.num_pairs {
            let row = d * op.num_pairs + p;
            let start = op.tap_starts[row] as usize;
            for k in 0..K_TAPS {
                acc += op.tap_weights[row * K_TAPS + k] as f64
                    * lag_tables[p * op.padded_len + start + k] as f64;
            }
        }
        acc
    }

    #[test]
    fn steer_matches_scalar_reference_for_both_copies() {
        let num_pairs = 5;
        let num_dirs = 9;
        let padded_len = 23;
        let tap_weights: Vec<f32> = (0..num_dirs * num_pairs * K_TAPS)
            .map(|i| ((i * 37 % 97) as f32 - 48.0) / 48.0)
            .collect();
        let tap_starts: Vec<u32> = (0..num_dirs * num_pairs)
            .map(|i| (i * 13 % (padded_len - K_TAPS + 1)) as u32)
            .collect();
        let lag_tables: Vec<f32> = (0..num_pairs * padded_len)
            .map(|i| ((i * 53 % 89) as f32 - 44.0) / 10.0)
            .collect();
        let op = SteerOp {
            tap_weights: &tap_weights,
            tap_starts: &tap_starts,
            num_pairs,
            padded_len,
        };
        for use_fma in [false, ispot_dsp::simd::fma_available()] {
            // Full grid (step 1), then a strided pass (step 2).
            let mut out = vec![0.0; num_dirs];
            steer(use_fma, &op, &lag_tables, 0, 1, &mut out);
            for (d, &got) in out.iter().enumerate() {
                let want = steer_reference(&op, &lag_tables, d);
                assert!((got - want).abs() < 1e-4, "d={d}: {got} vs {want}");
            }
            let mut strided = vec![0.0; num_dirs / 2];
            steer(use_fma, &op, &lag_tables, 1, 2, &mut strided);
            for (di, &got) in strided.iter().enumerate() {
                let want = steer_reference(&op, &lag_tables, 1 + 2 * di);
                assert!((got - want).abs() < 1e-4, "di={di}: {got} vs {want}");
            }
        }
    }

    #[test]
    fn phat_lags_folds_lag_symmetry_and_normalizes() {
        // 2 channels, 1 pair, tiny band; reference computed per lag sign.
        let nb = 19;
        let max_lag = 3;
        let pad = 2;
        let padded_len = 2 * max_lag + 1 + 2 * pad;
        let ch_re: Vec<f32> = (0..2 * nb).map(|i| (i as f32 * 0.7).sin() + 1.4).collect();
        let ch_im: Vec<f32> = (0..2 * nb).map(|i| (i as f32 * 0.3).cos() - 0.2).collect();
        let syn_cos: Vec<f32> = (0..(max_lag + 1) * nb)
            .map(|i| (i as f32 * 0.11).cos())
            .collect();
        // Row 0 of the sine table is zero by the operator contract (sin(0)).
        let syn_sin: Vec<f32> = (0..(max_lag + 1) * nb)
            .map(|i| if i < nb { 0.0 } else { (i as f32 * 0.11).sin() })
            .collect();
        let pairs = [(0usize, 1usize)];
        let spectra = PairSpectra {
            ch_re: &ch_re,
            ch_im: &ch_im,
            nb,
            pairs: &pairs,
        };
        let op = LagSynthOp {
            syn_cos: &syn_cos,
            syn_sin: &syn_sin,
            max_lag,
            pad,
            padded_len,
        };
        let mut phat_re = vec![0.0f32; nb];
        let mut phat_im = vec![0.0f32; nb];
        let mut tables = vec![0.0f32; padded_len];
        phat_lags(
            false,
            &spectra,
            &op,
            &mut phat_re,
            &mut phat_im,
            &mut tables,
        );
        // Every PHAT bin has unit magnitude (inputs are well above threshold).
        for k in 0..nb {
            let mag = (phat_re[k] * phat_re[k] + phat_im[k] * phat_im[k]).sqrt();
            assert!((mag - 1.0).abs() < 1e-5, "bin {k}: |c| = {mag}");
        }
        // Folded rows match the unfolded A ∓ B reference.
        let center = pad + max_lag;
        for lag in 0..=max_lag {
            let mut a = 0.0f64;
            let mut b = 0.0f64;
            for k in 0..nb {
                a += syn_cos[lag * nb + k] as f64 * phat_re[k] as f64;
                b += syn_sin[lag * nb + k] as f64 * phat_im[k] as f64;
            }
            assert!((tables[center + lag] as f64 - (a - b)).abs() < 1e-4);
            assert!((tables[center - lag] as f64 - (a + b)).abs() < 1e-4);
        }
        // Pad cells stay untouched.
        assert!(tables[..pad].iter().all(|&v| v == 0.0));
        assert!(tables[padded_len - pad..].iter().all(|&v| v == 0.0));
    }
}
