//! Joint sound-event localization and detection (SELD) metrics.
//!
//! The paper frames its algorithmic goal as the SELD(t) problem (Sec. II, after
//! Adavanne et al.). The DCASE community scores SELD systems with *location-aware
//! detection* metrics: a prediction only counts as a true positive if the class is
//! correct **and** its direction of arrival lies within a tolerance of the reference
//! (typically 20°), complemented by the class-dependent localization error over the
//! true positives. This module implements those joint metrics over per-frame
//! annotations so that the end-to-end pipeline can be scored the same way the DCASE
//! SELD task is.

use crate::metrics::angular_error_deg;
use ispot_sed::EventClass;
use serde::{Deserialize, Serialize};

/// One frame-level annotation: what is active and from where.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeldAnnotation {
    /// Frame index.
    pub frame: usize,
    /// Active sound class (use [`EventClass::Background`] for "nothing active").
    pub class: EventClass,
    /// Azimuth in degrees, if the class is an event.
    pub azimuth_deg: Option<f64>,
}

impl SeldAnnotation {
    /// Creates an event annotation.
    pub fn event(frame: usize, class: EventClass, azimuth_deg: f64) -> Self {
        SeldAnnotation {
            frame,
            class,
            azimuth_deg: Some(azimuth_deg),
        }
    }

    /// Creates a background (no event) annotation.
    pub fn background(frame: usize) -> Self {
        SeldAnnotation {
            frame,
            class: EventClass::Background,
            azimuth_deg: None,
        }
    }
}

/// Location-aware SELD scores.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeldScores {
    /// Number of scored frames (frames present in the reference).
    pub frames: usize,
    /// Location-aware true positives (class correct and azimuth within tolerance).
    pub true_positives: usize,
    /// False positives (event predicted where the reference has none, wrong class, or
    /// correct class outside the spatial tolerance).
    pub false_positives: usize,
    /// False negatives (reference event missed).
    pub false_negatives: usize,
    /// Mean absolute azimuth error (degrees) over class-correct detections.
    pub localization_error_deg: f64,
    /// Fraction of reference events detected with the correct class, regardless of the
    /// spatial error (the "localization recall" of the DCASE metric family).
    pub localization_recall: f64,
    /// Spatial tolerance used for the location-aware F-score, in degrees.
    pub tolerance_deg: f64,
}

impl SeldScores {
    /// Location-aware precision.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Location-aware recall.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Location-aware F1 score.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Detection error rate `(FP + FN) / reference events` (0 is perfect; can exceed 1).
    pub fn error_rate(&self) -> f64 {
        let refs = self.true_positives + self.false_negatives;
        if refs == 0 {
            0.0
        } else {
            (self.false_positives + self.false_negatives) as f64 / refs as f64
        }
    }
}

/// Scores frame-level predictions against a frame-level reference.
///
/// Both slices are matched per frame index: for every reference frame the prediction
/// with the same frame index (if any) is scored. Frames that appear only in the
/// predictions count as false positives when they claim an event.
///
/// `tolerance_deg` is the spatial tolerance of the location-aware detection decision
/// (the DCASE default is 20°).
pub fn score_seld(
    reference: &[SeldAnnotation],
    predictions: &[SeldAnnotation],
    tolerance_deg: f64,
) -> SeldScores {
    let find_prediction = |frame: usize| predictions.iter().find(|p| p.frame == frame);
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut fn_ = 0usize;
    let mut loc_errors = Vec::new();
    let mut class_correct = 0usize;
    let mut reference_events = 0usize;
    for r in reference {
        let predicted = find_prediction(r.frame);
        match (r.class.is_event(), predicted) {
            (true, Some(p)) if p.class == r.class => {
                reference_events += 1;
                class_correct += 1;
                let err = match (r.azimuth_deg, p.azimuth_deg) {
                    (Some(a), Some(b)) => angular_error_deg(a, b),
                    // Missing azimuth on either side: treat as outside tolerance but do
                    // not contribute to the localization-error average.
                    _ => f64::INFINITY,
                };
                if err.is_finite() {
                    loc_errors.push(err);
                }
                if err <= tolerance_deg {
                    tp += 1;
                } else {
                    fp += 1;
                    fn_ += 1;
                }
            }
            (true, Some(p)) if p.class.is_event() => {
                // Wrong event class.
                reference_events += 1;
                fp += 1;
                fn_ += 1;
            }
            (true, _) => {
                reference_events += 1;
                fn_ += 1;
            }
            (false, Some(p)) if p.class.is_event() => {
                fp += 1;
            }
            (false, _) => {}
        }
    }
    // Predictions for frames that do not exist in the reference are false positives.
    for p in predictions {
        if p.class.is_event() && !reference.iter().any(|r| r.frame == p.frame) {
            fp += 1;
        }
    }
    let localization_error_deg = if loc_errors.is_empty() {
        0.0
    } else {
        loc_errors.iter().sum::<f64>() / loc_errors.len() as f64
    };
    SeldScores {
        frames: reference.len(),
        true_positives: tp,
        false_positives: fp,
        false_negatives: fn_,
        localization_error_deg,
        localization_recall: if reference_events == 0 {
            1.0
        } else {
            class_correct as f64 / reference_events as f64
        },
        tolerance_deg,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference() -> Vec<SeldAnnotation> {
        vec![
            SeldAnnotation::background(0),
            SeldAnnotation::event(1, EventClass::WailSiren, 40.0),
            SeldAnnotation::event(2, EventClass::WailSiren, 42.0),
            SeldAnnotation::event(3, EventClass::CarHorn, -90.0),
            SeldAnnotation::background(4),
        ]
    }

    #[test]
    fn perfect_predictions_score_perfectly() {
        let r = reference();
        let scores = score_seld(&r, &r, 20.0);
        assert_eq!(scores.true_positives, 3);
        assert_eq!(scores.false_positives, 0);
        assert_eq!(scores.false_negatives, 0);
        assert_eq!(scores.f1(), 1.0);
        assert_eq!(scores.error_rate(), 0.0);
        assert_eq!(scores.localization_error_deg, 0.0);
        assert_eq!(scores.localization_recall, 1.0);
    }

    #[test]
    fn spatial_tolerance_gates_true_positives() {
        let r = reference();
        let mut p = r.clone();
        // Correct class but 30 degrees off at frame 1.
        p[1] = SeldAnnotation::event(1, EventClass::WailSiren, 70.0);
        let strict = score_seld(&r, &p, 20.0);
        assert_eq!(strict.true_positives, 2);
        assert_eq!(strict.false_positives, 1);
        assert_eq!(strict.false_negatives, 1);
        assert!(strict.localization_error_deg > 9.0);
        // With a looser tolerance the same predictions are all accepted.
        let loose = score_seld(&r, &p, 45.0);
        assert_eq!(loose.true_positives, 3);
        assert_eq!(loose.f1(), 1.0);
    }

    #[test]
    fn wrong_class_and_missed_events_are_counted() {
        let r = reference();
        let p = vec![
            SeldAnnotation::background(0),
            SeldAnnotation::event(1, EventClass::YelpSiren, 40.0), // wrong class
            SeldAnnotation::background(2),                         // miss
            SeldAnnotation::event(3, EventClass::CarHorn, -85.0),  // hit
            SeldAnnotation::event(4, EventClass::CarHorn, 0.0),    // false alarm
        ];
        let scores = score_seld(&r, &p, 20.0);
        assert_eq!(scores.true_positives, 1);
        assert_eq!(scores.false_positives, 2);
        assert_eq!(scores.false_negatives, 2);
        assert!(scores.error_rate() > 1.0);
        assert!((scores.localization_recall - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn predictions_for_unknown_frames_are_false_positives() {
        let r = vec![SeldAnnotation::background(0)];
        let p = vec![SeldAnnotation::event(7, EventClass::CarHorn, 10.0)];
        let scores = score_seld(&r, &p, 20.0);
        assert_eq!(scores.false_positives, 1);
        assert_eq!(scores.true_positives, 0);
        assert_eq!(scores.recall(), 1.0);
        assert!(scores.precision() < 1.0);
    }

    #[test]
    fn empty_reference_is_neutral() {
        let scores = score_seld(&[], &[], 20.0);
        assert_eq!(scores.f1(), 1.0);
        assert_eq!(scores.error_rate(), 0.0);
        assert_eq!(scores.frames, 0);
    }

    #[test]
    fn missing_azimuth_counts_as_outside_tolerance() {
        let r = vec![SeldAnnotation::event(0, EventClass::CarHorn, 10.0)];
        let p = vec![SeldAnnotation {
            frame: 0,
            class: EventClass::CarHorn,
            azimuth_deg: None,
        }];
        let scores = score_seld(&r, &p, 20.0);
        assert_eq!(scores.true_positives, 0);
        assert_eq!(scores.localization_recall, 1.0);
    }
}
