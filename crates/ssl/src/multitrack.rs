//! Multi-target azimuth tracking: gated nearest-neighbour association of SRP
//! peaks to a bank of Kalman-filtered tracks with a tentative → confirmed →
//! coasting lifecycle.
//!
//! Real road scenes contain several concurrent sources (PR 4's crossing
//! vehicles, a siren emerging from behind a masker), and the literature the
//! roadmap follows — Schulz et al.'s *Hearing What You Cannot See*, Bulatović &
//! Djukanović's pass-by instant estimation — works with **per-vehicle tracks**,
//! not a single bearing. This module turns the per-frame peak list of an
//! [`SrpMap`](crate::srp_phat::SrpMap) (see
//! [`SrpMap::peaks_into`](crate::srp_phat::SrpMap::peaks_into)) into a set of
//! stable-identity tracks:
//!
//! 1. **Association** — every live track predicts one constant-velocity step
//!    ahead; each (track, peak) pair whose wrapped azimuth innovation is within
//!    [`TrackingConfig::gate_deg`] is a candidate, and candidates are consumed
//!    greedily in order of increasing innovation (global-nearest-first).
//! 2. **Update / coast** — matched tracks incorporate the peak through their
//!    [`AzimuthKalmanTracker`]; unmatched tracks
//!    [`coast`](AzimuthKalmanTracker::coast) along their predicted rate.
//! 3. **Lifecycle** — a new peak spawns a *tentative* track; a tentative track
//!    is *confirmed* after M hits in its last N updates
//!    ([`TrackingConfig::confirm_hits`] of [`TrackingConfig::confirm_window`]);
//!    a confirmed track that misses becomes *coasting* and dies after
//!    [`TrackingConfig::coast_frames`] consecutive misses; a tentative track
//!    dies after two consecutive misses. Track identities ([`TrackId`]) are
//!    stable for the life of the track and never reused within a session.
//!
//! The tracker owns all of its storage up front (track slots, snapshot buffer,
//! association scratch), so the steady-state [`MultiTargetTracker::update`]
//! path performs **no heap allocation** — tracks are born and die inside
//! preallocated capacity. This is enforced end-to-end by the counting-allocator
//! test in `crates/core/tests/zero_alloc.rs`.
//!
//! # Example
//!
//! ```
//! use ispot_ssl::multitrack::{MultiTargetTracker, TrackingConfig};
//! use ispot_ssl::srp_phat::Peak;
//!
//! let mut tracker = MultiTargetTracker::new(TrackingConfig::default()).unwrap();
//! // Two well-separated sources, observed over a few frames.
//! for step in 0..8 {
//!     let peaks = [
//!         Peak { index: 0, azimuth_deg: 40.0 + step as f64, power: 9.0, salience: 1.0 },
//!         Peak { index: 1, azimuth_deg: -120.0, power: 7.0, salience: 0.8 },
//!     ];
//!     tracker.update(&peaks);
//! }
//! let confirmed: Vec<_> = tracker.tracks().iter().filter(|t| t.is_confirmed()).collect();
//! assert_eq!(confirmed.len(), 2);
//! assert_ne!(confirmed[0].id, confirmed[1].id);
//! ```

use crate::error::SslError;
use crate::metrics::angular_error_deg;
use crate::srp_phat::Peak;
use crate::tracking::{wrap_deg, AzimuthKalmanTracker, TrackState};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Hard upper bound on [`TrackingConfig::max_tracks`]: the inline track list
/// embedded in perception events sizes itself to this, so events stay heap-free.
pub const MAX_TRACKS: usize = 8;

/// A tentative track dies after this many consecutive misses (it never earned
/// the benefit of a coasting period).
const TENTATIVE_MAX_MISSES: u32 = 2;

/// Smoothing factor of the per-track strength EMA (weight of the new salience).
const STRENGTH_ALPHA: f64 = 0.3;

/// Strength decay applied while a track misses (keeps stale coasting tracks
/// from outranking a live one).
const STRENGTH_DECAY: f64 = 0.9;

/// Configuration of the multi-target tracker (peak budget, association gate,
/// confirmation and coasting counts).
///
/// Validated by [`TrackingConfig::validate`] — and again by the pipeline
/// builder in `ispot-core`, which rejects invalid values with its typed
/// `InvalidConfig` error before anything is built.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrackingConfig {
    /// Maximum number of simultaneous tracks (tentative + confirmed), at most
    /// [`MAX_TRACKS`].
    pub max_tracks: usize,
    /// Number of SRP peaks extracted and offered to the tracker per frame.
    pub max_peaks: usize,
    /// Association gate: a peak may only update a track if the wrapped azimuth
    /// innovation is within this many degrees.
    pub gate_deg: f64,
    /// Minimum peak-to-track separation enforced by the peak extractor's
    /// non-maximum suppression, degrees.
    pub min_separation_deg: f64,
    /// Peaks below this salience (power normalized to the map's own dynamic
    /// range, `[0, 1]`) neither update nor spawn tracks — side-lobe rejection.
    pub min_salience: f64,
    /// Salience required to **spawn** a new track (must be at least
    /// [`TrackingConfig::min_salience`]). Keeping the spawn bar above the
    /// update bar is the track-before-detect asymmetry: a weak source needs one
    /// strong appearance to found a track, after which the gate — not raw
    /// salience — decides which peaks keep feeding it.
    pub spawn_salience: f64,
    /// Temporal smoothing of the SRP map before peak extraction: the fraction
    /// of the previous smoothed map retained each frame (`0` disables, must be
    /// `< 1`). Persistent sources survive the EMA; frame-to-frame clutter
    /// (inter-source cross-terms, tonal aliasing lobes) is averaged away.
    pub map_smoothing: f64,
    /// M of the M-of-N confirmation rule: hits required inside the window.
    pub confirm_hits: usize,
    /// N of the M-of-N confirmation rule: length of the sliding update window
    /// (at most 32).
    pub confirm_window: usize,
    /// Consecutive misses a confirmed track may coast through before it dies.
    pub coast_frames: usize,
    /// Process-noise variance of each track's Kalman filter (deg² per step).
    pub process_noise: f64,
    /// Measurement-noise variance of each track's Kalman filter (deg²).
    pub measurement_noise: f64,
}

impl Default for TrackingConfig {
    fn default() -> Self {
        TrackingConfig {
            max_tracks: 4,
            max_peaks: 4,
            gate_deg: 30.0,
            min_separation_deg: 20.0,
            min_salience: 0.4,
            spawn_salience: 0.65,
            map_smoothing: 0.3,
            confirm_hits: 4,
            confirm_window: 6,
            coast_frames: 12,
            process_noise: 1.0,
            measurement_noise: 36.0,
        }
    }
}

impl TrackingConfig {
    /// Checks every parameter against its documented range.
    ///
    /// # Errors
    ///
    /// Returns [`SslError::InvalidConfig`] naming the first offending parameter.
    pub fn validate(&self) -> Result<(), SslError> {
        if self.max_tracks == 0 || self.max_tracks > MAX_TRACKS {
            return Err(SslError::invalid_config(
                "tracking.max_tracks",
                format!("must lie in 1..={MAX_TRACKS}, got {}", self.max_tracks),
            ));
        }
        if self.max_peaks == 0 {
            return Err(SslError::invalid_config(
                "tracking.max_peaks",
                "must be positive",
            ));
        }
        if !(self.gate_deg.is_finite() && self.gate_deg > 0.0 && self.gate_deg <= 180.0) {
            return Err(SslError::invalid_config(
                "tracking.gate_deg",
                "must lie in (0, 180]",
            ));
        }
        if !(self.min_separation_deg.is_finite()
            && (0.0..=180.0).contains(&self.min_separation_deg))
        {
            return Err(SslError::invalid_config(
                "tracking.min_separation_deg",
                "must lie in [0, 180]",
            ));
        }
        if !(0.0..=1.0).contains(&self.min_salience) {
            return Err(SslError::invalid_config(
                "tracking.min_salience",
                "must lie in [0, 1]",
            ));
        }
        if !(self.min_salience..=1.0).contains(&self.spawn_salience) {
            return Err(SslError::invalid_config(
                "tracking.spawn_salience",
                "must lie in [min_salience, 1]",
            ));
        }
        if !(self.map_smoothing >= 0.0 && self.map_smoothing < 1.0) {
            return Err(SslError::invalid_config(
                "tracking.map_smoothing",
                "must lie in [0, 1)",
            ));
        }
        if self.confirm_hits == 0 {
            return Err(SslError::invalid_config(
                "tracking.confirm_hits",
                "must be positive",
            ));
        }
        if self.confirm_window < self.confirm_hits || self.confirm_window > 32 {
            return Err(SslError::invalid_config(
                "tracking.confirm_window",
                format!(
                    "must satisfy confirm_hits ({}) <= confirm_window <= 32, got {}",
                    self.confirm_hits, self.confirm_window
                ),
            ));
        }
        if self.coast_frames == 0 {
            return Err(SslError::invalid_config(
                "tracking.coast_frames",
                "must be positive",
            ));
        }
        if !(self.process_noise.is_finite() && self.process_noise > 0.0) {
            return Err(SslError::invalid_config(
                "tracking.process_noise",
                "must be positive and finite",
            ));
        }
        if !(self.measurement_noise.is_finite() && self.measurement_noise > 0.0) {
            return Err(SslError::invalid_config(
                "tracking.measurement_noise",
                "must be positive and finite",
            ));
        }
        Ok(())
    }
}

/// Stable identity of one track, unique within a tracker for its whole life
/// (identities are never reused; [`MultiTargetTracker::reset`] restarts the
/// sequence for a new stream).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TrackId(pub(crate) u64);

impl TrackId {
    /// The raw sequence number behind the identity.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuilds an identity from its raw sequence number — the inverse of
    /// [`raw`](Self::raw), for replaying persisted track logs and for test
    /// harnesses that score synthetic tracks without running a tracker.
    pub fn from_raw(raw: u64) -> Self {
        TrackId(raw)
    }
}

impl fmt::Display for TrackId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Lifecycle state of a track.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TrackStatus {
    /// Newly spawned; not yet past the M-of-N confirmation rule.
    #[default]
    Tentative,
    /// Confirmed and currently fed by gated measurements.
    Confirmed,
    /// Confirmed, but currently propagating on prediction alone (its peak is
    /// occluded or merged with another lobe).
    Coasting,
}

/// A read-only view of one track at a frame boundary — the per-track payload of
/// perception events. `Copy` and heap-free, so snapshot lists can travel
/// through event sinks without allocation.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TrackSnapshot {
    /// Stable track identity.
    pub id: TrackId,
    /// Kalman-smoothed azimuth in degrees, wrapped to `(-180, 180]`.
    pub azimuth_deg: f64,
    /// Estimated azimuth rate in degrees per update step.
    pub rate_deg_per_step: f64,
    /// Lifecycle state.
    pub status: TrackStatus,
    /// Number of tracker updates this track has lived through.
    pub age: u32,
    /// Consecutive misses (0 when the last update matched a peak).
    pub misses: u32,
    /// Smoothed salience of the peaks feeding the track, `[0, 1]`.
    pub strength: f64,
}

impl TrackSnapshot {
    /// True for tracks past the M-of-N confirmation rule (confirmed or
    /// coasting); tentative tracks are association hypotheses, not detections.
    pub fn is_confirmed(&self) -> bool {
        matches!(self.status, TrackStatus::Confirmed | TrackStatus::Coasting)
    }
}

/// One live track: the Kalman filter plus its lifecycle bookkeeping.
#[derive(Debug, Clone)]
struct Track {
    id: TrackId,
    filter: AzimuthKalmanTracker,
    status: TrackStatus,
    /// Bit i set = the i-th most recent update was a hit (bit 0 = latest).
    history: u32,
    age: u32,
    misses: u32,
    strength: f64,
}

impl Track {
    fn hits_in_window(&self, window: usize) -> u32 {
        (self.history & ((1u64 << window) - 1) as u32).count_ones()
    }

    fn snapshot(&self) -> TrackSnapshot {
        // A track's filter is initialized at spawn, so the fallback is inert.
        let state = self.filter.state().unwrap_or(TrackState {
            azimuth_deg: 0.0,
            rate_deg_per_step: 0.0,
        });
        TrackSnapshot {
            id: self.id,
            azimuth_deg: state.azimuth_deg,
            rate_deg_per_step: state.rate_deg_per_step,
            status: self.status,
            age: self.age,
            misses: self.misses,
            strength: self.strength,
        }
    }
}

/// The multi-target tracker: a bank of azimuth Kalman tracks fed by gated
/// nearest-neighbour association from per-frame SRP peak lists.
///
/// See the [module documentation](self) for the algorithm; see
/// [`TrackingConfig`] for the knobs. All storage is preallocated, so
/// steady-state updates perform no heap allocation.
#[derive(Debug, Clone)]
pub struct MultiTargetTracker {
    config: TrackingConfig,
    next_id: u64,
    tracks: Vec<Track>,
    snapshots: Vec<TrackSnapshot>,
    /// Association scratch: (innovation, track index, peak index), gate-filtered.
    pairs: Vec<(f64, u8, u8)>,
    track_matched: Vec<Option<u8>>,
    peak_matched: Vec<bool>,
}

impl MultiTargetTracker {
    /// Creates a tracker, validating the configuration and preallocating every
    /// buffer the update path needs.
    ///
    /// # Errors
    ///
    /// Returns [`SslError::InvalidConfig`] if the configuration is out of range.
    pub fn new(config: TrackingConfig) -> Result<Self, SslError> {
        config.validate()?;
        Ok(MultiTargetTracker {
            config,
            next_id: 0,
            tracks: Vec::with_capacity(config.max_tracks),
            snapshots: Vec::with_capacity(config.max_tracks),
            pairs: Vec::with_capacity(config.max_tracks * config.max_peaks),
            track_matched: Vec::with_capacity(config.max_tracks),
            peak_matched: Vec::with_capacity(config.max_peaks),
        })
    }

    /// The validated configuration.
    pub fn config(&self) -> TrackingConfig {
        self.config
    }

    /// Drops every track and restarts the identity sequence (new stream, mode
    /// switch). Buffers are kept, so resetting reintroduces no allocations.
    pub fn reset(&mut self) {
        self.tracks.clear();
        self.snapshots.clear();
        self.next_id = 0;
    }

    /// Incorporates one frame's peak list (as produced by
    /// [`SrpMap::peaks_into`](crate::srp_phat::SrpMap::peaks_into): strongest
    /// first). Peaks below [`TrackingConfig::min_salience`] are ignored; at most
    /// [`TrackingConfig::max_peaks`] peaks are considered.
    ///
    /// Steady state performs no heap allocation.
    pub fn update(&mut self, peaks: &[Peak]) {
        let cfg = self.config;
        // Gate the peak list itself: salience floor, budget, finite bearings.
        // (Iteration below re-applies this filter cheaply instead of building a
        // filtered copy.)
        let usable = |p: &Peak| p.salience >= cfg.min_salience && p.azimuth_deg.is_finite();
        let num_peaks = peaks.len().min(cfg.max_peaks);

        // 1. Gated candidate pairs against each track's one-step prediction.
        self.pairs.clear();
        for (ti, track) in self.tracks.iter().enumerate() {
            let Some(state) = track.filter.state() else {
                continue;
            };
            let predicted = wrap_deg(state.azimuth_deg + state.rate_deg_per_step);
            for (pi, peak) in peaks[..num_peaks].iter().enumerate() {
                if !usable(peak) {
                    continue;
                }
                let innovation = angular_error_deg(peak.azimuth_deg, predicted);
                if innovation <= cfg.gate_deg {
                    self.pairs.push((innovation, ti as u8, pi as u8));
                }
            }
        }
        // 2. Greedy global-nearest-neighbour assignment.
        self.pairs.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
        self.track_matched.clear();
        self.track_matched.resize(self.tracks.len(), None);
        self.peak_matched.clear();
        self.peak_matched.resize(num_peaks, false);
        for &(_, ti, pi) in self.pairs.iter() {
            let (ti, pi) = (ti as usize, pi as usize);
            if self.track_matched[ti].is_none() && !self.peak_matched[pi] {
                self.track_matched[ti] = Some(pi as u8);
                self.peak_matched[pi] = true;
            }
        }
        // 3. Update matched tracks, coast the rest, apply the lifecycle rules.
        for (ti, track) in self.tracks.iter_mut().enumerate() {
            track.age = track.age.saturating_add(1);
            match self.track_matched[ti] {
                Some(pi) => {
                    let peak = &peaks[pi as usize];
                    track.filter.update(peak.azimuth_deg);
                    track.history = (track.history << 1) | 1;
                    track.misses = 0;
                    track.strength =
                        (1.0 - STRENGTH_ALPHA) * track.strength + STRENGTH_ALPHA * peak.salience;
                    match track.status {
                        TrackStatus::Tentative => {
                            if track.hits_in_window(cfg.confirm_window) >= cfg.confirm_hits as u32 {
                                track.status = TrackStatus::Confirmed;
                            }
                        }
                        TrackStatus::Confirmed | TrackStatus::Coasting => {
                            track.status = TrackStatus::Confirmed;
                        }
                    }
                }
                None => {
                    track.filter.coast();
                    track.history <<= 1;
                    track.misses = track.misses.saturating_add(1);
                    track.strength *= STRENGTH_DECAY;
                    if track.status == TrackStatus::Confirmed {
                        track.status = TrackStatus::Coasting;
                    }
                }
            }
        }
        // 4. Reap timed-out tracks.
        self.tracks.retain(|t| match t.status {
            TrackStatus::Tentative => t.misses < TENTATIVE_MAX_MISSES,
            TrackStatus::Confirmed | TrackStatus::Coasting => {
                (t.misses as usize) <= cfg.coast_frames
            }
        });
        // 5. Spawn tentative tracks from unmatched usable peaks (strongest
        // first — the peak list arrives sorted by power).
        for (pi, peak) in peaks[..num_peaks].iter().enumerate() {
            if self.tracks.len() >= cfg.max_tracks {
                break;
            }
            if self.peak_matched[pi] || !usable(peak) || peak.salience < cfg.spawn_salience {
                continue;
            }
            let mut filter = AzimuthKalmanTracker::new(cfg.process_noise, cfg.measurement_noise);
            filter.update(peak.azimuth_deg);
            self.tracks.push(Track {
                id: TrackId(self.next_id),
                filter,
                status: if cfg.confirm_hits <= 1 {
                    TrackStatus::Confirmed
                } else {
                    TrackStatus::Tentative
                },
                history: 1,
                age: 1,
                misses: 0,
                strength: peak.salience,
            });
            self.next_id += 1;
        }
        // 6. Publish snapshots, best-first: confirmed before tentative, then by
        // strength (descending), then by seniority — so `tracks()[0]` is the
        // track the legacy single-azimuth event fields report.
        self.snapshots.clear();
        self.snapshots
            .extend(self.tracks.iter().map(Track::snapshot));
        self.snapshots.sort_unstable_by(|a, b| {
            b.is_confirmed()
                .cmp(&a.is_confirmed())
                .then(b.strength.total_cmp(&a.strength))
                .then(a.id.cmp(&b.id))
        });
    }

    /// The current track snapshots, best-first (see [`MultiTargetTracker::best`]).
    pub fn tracks(&self) -> &[TrackSnapshot] {
        &self.snapshots
    }

    /// The best track: the strongest confirmed track, falling back to the
    /// strongest tentative hypothesis while nothing is confirmed yet. This is
    /// the track behind the legacy single-azimuth event fields.
    pub fn best(&self) -> Option<&TrackSnapshot> {
        self.snapshots.first()
    }

    /// Number of live tracks (tentative + confirmed).
    pub fn len(&self) -> usize {
        self.tracks.len()
    }

    /// True when no track is alive.
    pub fn is_empty(&self) -> bool {
        self.tracks.is_empty()
    }

    /// Number of live confirmed (or coasting) tracks.
    pub fn confirmed_count(&self) -> usize {
        self.snapshots.iter().filter(|t| t.is_confirmed()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peak(azimuth_deg: f64, salience: f64) -> Peak {
        Peak {
            index: 0,
            azimuth_deg,
            power: salience,
            salience,
        }
    }

    fn config() -> TrackingConfig {
        TrackingConfig::default()
    }

    #[test]
    fn config_validation_rejects_each_degenerate_value() {
        let cases = [
            (
                "max_tracks zero",
                TrackingConfig {
                    max_tracks: 0,
                    ..config()
                },
            ),
            (
                "max_tracks above cap",
                TrackingConfig {
                    max_tracks: MAX_TRACKS + 1,
                    ..config()
                },
            ),
            (
                "max_peaks",
                TrackingConfig {
                    max_peaks: 0,
                    ..config()
                },
            ),
            (
                "gate zero",
                TrackingConfig {
                    gate_deg: 0.0,
                    ..config()
                },
            ),
            (
                "gate nan",
                TrackingConfig {
                    gate_deg: f64::NAN,
                    ..config()
                },
            ),
            (
                "gate wide",
                TrackingConfig {
                    gate_deg: 181.0,
                    ..config()
                },
            ),
            (
                "separation",
                TrackingConfig {
                    min_separation_deg: -1.0,
                    ..config()
                },
            ),
            (
                "salience",
                TrackingConfig {
                    min_salience: 1.5,
                    ..config()
                },
            ),
            (
                "confirm hits",
                TrackingConfig {
                    confirm_hits: 0,
                    ..config()
                },
            ),
            (
                "window below hits",
                TrackingConfig {
                    confirm_hits: 4,
                    confirm_window: 3,
                    ..config()
                },
            ),
            (
                "window above 32",
                TrackingConfig {
                    confirm_window: 33,
                    ..config()
                },
            ),
            (
                "coast",
                TrackingConfig {
                    coast_frames: 0,
                    ..config()
                },
            ),
            (
                "process noise",
                TrackingConfig {
                    process_noise: 0.0,
                    ..config()
                },
            ),
            (
                "measurement noise",
                TrackingConfig {
                    measurement_noise: f64::INFINITY,
                    ..config()
                },
            ),
        ];
        for (what, bad) in cases {
            assert!(
                matches!(bad.validate(), Err(SslError::InvalidConfig { .. })),
                "{what} accepted"
            );
            assert!(MultiTargetTracker::new(bad).is_err(), "{what} constructed");
        }
        assert!(config().validate().is_ok());
    }

    #[test]
    fn single_source_confirms_after_m_of_n_and_keeps_its_id() {
        let mut tracker = MultiTargetTracker::new(config()).unwrap();
        for step in 0..10 {
            tracker.update(&[peak(10.0 + step as f64, 1.0)]);
            assert_eq!(tracker.len(), 1, "step {step}");
            let t = tracker.tracks()[0];
            assert_eq!(t.id, TrackId(0), "identity must be stable");
            // 4-of-6 (default): confirmation lands exactly on the fourth update.
            if step < 3 {
                assert_eq!(t.status, TrackStatus::Tentative, "step {step}");
            } else {
                assert_eq!(t.status, TrackStatus::Confirmed, "step {step}");
            }
        }
        let t = tracker.best().unwrap();
        assert!(angular_error_deg(t.azimuth_deg, 19.0) < 3.0);
        assert!(t.rate_deg_per_step > 0.3);
        assert_eq!(t.age, 10);
    }

    #[test]
    fn low_salience_peaks_are_ignored() {
        let mut tracker = MultiTargetTracker::new(config()).unwrap();
        for _ in 0..5 {
            tracker.update(&[peak(50.0, 1.0), peak(-90.0, 0.2)]);
        }
        assert_eq!(tracker.len(), 1, "side-lobe spawned a track");
        assert!(angular_error_deg(tracker.best().unwrap().azimuth_deg, 50.0) < 1.0);
    }

    #[test]
    fn two_sources_get_two_tracks_and_ids_survive_a_bearing_crossing() {
        // Two synthetic sources whose bearings cross at 0 degrees with opposite
        // rates; during the central frames they merge into a single peak.
        let mut tracker = MultiTargetTracker::new(config()).unwrap();
        let mut id_a = None;
        let mut id_b = None;
        for step in 0..40 {
            let a = -40.0 + 2.0 * step as f64; // ascending through 0
            let b = 40.0 - 2.0 * step as f64; // descending through 0
            let mut peaks = Vec::new();
            if angular_error_deg(a, b) >= 18.0 {
                peaks.push(peak(a, 1.0));
                peaks.push(peak(b, 0.9));
            } else {
                // Merged lobe: NMS would emit one peak midway.
                peaks.push(peak((a + b) / 2.0, 1.0));
            }
            tracker.update(&peaks);
            if step == 10 {
                let tracks = tracker.tracks();
                assert_eq!(tracker.confirmed_count(), 2, "both sources confirmed");
                // Record which identity follows which motion (by rate sign).
                for t in tracks {
                    if t.rate_deg_per_step > 0.0 {
                        id_a = Some(t.id);
                    } else {
                        id_b = Some(t.id);
                    }
                }
                assert!(id_a.is_some() && id_b.is_some());
            }
        }
        // After the crossing both tracks are alive, confirmed, and the
        // identities still ride their original motions: no swap.
        let tracks = tracker.tracks();
        assert_eq!(tracker.confirmed_count(), 2, "a track died in the crossing");
        for t in tracks {
            if t.id == id_a.unwrap() {
                assert!(t.rate_deg_per_step > 0.5, "track A reversed: {t:?}");
                assert!(t.azimuth_deg > 10.0, "track A lost its source: {t:?}");
            } else {
                assert_eq!(Some(t.id), id_b);
                assert!(t.rate_deg_per_step < -0.5, "track B reversed: {t:?}");
                assert!(t.azimuth_deg < -10.0, "track B lost its source: {t:?}");
            }
        }
    }

    #[test]
    fn missing_source_coasts_then_dies_after_timeout() {
        let cfg = TrackingConfig {
            coast_frames: 4,
            ..config()
        };
        let mut tracker = MultiTargetTracker::new(cfg).unwrap();
        for step in 0..6 {
            tracker.update(&[peak(-60.0 + step as f64, 1.0)]);
        }
        let id = tracker.best().unwrap().id;
        assert_eq!(tracker.best().unwrap().status, TrackStatus::Confirmed);
        // Source disappears: the track coasts along its ~1 deg/step rate...
        for miss in 1..=4 {
            tracker.update(&[]);
            let t = *tracker.best().unwrap();
            assert_eq!(t.id, id);
            assert_eq!(t.status, TrackStatus::Coasting);
            assert_eq!(t.misses, miss);
            assert!(
                angular_error_deg(t.azimuth_deg, -55.0 + miss as f64) < 3.0,
                "coast {miss}: {t:?}"
            );
        }
        // ...and dies one miss past the coast budget.
        tracker.update(&[]);
        assert!(tracker.is_empty());
        // A returning source founds a NEW identity: ids are never reused.
        tracker.update(&[peak(-50.0, 1.0)]);
        assert_ne!(tracker.best().unwrap().id, id);
    }

    #[test]
    fn coasting_track_reassociates_within_the_gate() {
        let mut tracker = MultiTargetTracker::new(config()).unwrap();
        for step in 0..8 {
            tracker.update(&[peak(2.0 * step as f64, 1.0)]);
        }
        let id = tracker.best().unwrap().id;
        for _ in 0..3 {
            tracker.update(&[]);
        }
        assert_eq!(tracker.best().unwrap().status, TrackStatus::Coasting);
        // The source re-appears where the prediction says it should be.
        tracker.update(&[peak(22.0, 1.0)]);
        let t = tracker.best().unwrap();
        assert_eq!(t.id, id, "re-association spawned a new track");
        assert_eq!(t.status, TrackStatus::Confirmed);
        assert_eq!(t.misses, 0);
    }

    #[test]
    fn tentative_clutter_dies_quickly_and_max_tracks_is_respected() {
        let cfg = TrackingConfig {
            max_tracks: 2,
            ..config()
        };
        let mut tracker = MultiTargetTracker::new(cfg).unwrap();
        // Three simultaneous sources, budget of two tracks.
        for _ in 0..4 {
            tracker.update(&[peak(0.0, 1.0), peak(120.0, 0.9), peak(-120.0, 0.8)]);
        }
        assert_eq!(tracker.len(), 2);
        // One-shot clutter: a blip spawns a tentative track that dies after
        // TENTATIVE_MAX_MISSES frames without ever reporting as confirmed.
        let mut tracker = MultiTargetTracker::new(config()).unwrap();
        for step in 0..6 {
            if step == 2 {
                tracker.update(&[peak(30.0, 1.0), peak(-140.0, 0.9)]);
            } else {
                tracker.update(&[peak(30.0, 1.0)]);
            }
        }
        assert_eq!(tracker.len(), 1, "clutter track survived");
        assert_eq!(tracker.confirmed_count(), 1);
    }

    #[test]
    fn reset_clears_tracks_and_restarts_identities() {
        let mut tracker = MultiTargetTracker::new(config()).unwrap();
        for _ in 0..5 {
            tracker.update(&[peak(10.0, 1.0), peak(90.0, 0.9)]);
        }
        assert_eq!(tracker.len(), 2);
        tracker.reset();
        assert!(tracker.is_empty());
        assert!(tracker.tracks().is_empty());
        tracker.update(&[peak(-30.0, 1.0)]);
        assert_eq!(tracker.best().unwrap().id, TrackId(0), "ids restart at 0");
    }

    #[test]
    fn association_follows_the_nearest_prediction_not_peak_order() {
        let mut tracker = MultiTargetTracker::new(config()).unwrap();
        for _ in 0..5 {
            tracker.update(&[peak(20.0, 1.0), peak(-20.0, 0.9)]);
        }
        let by_rate: Vec<TrackId> = tracker.tracks().iter().map(|t| t.id).collect();
        // Swap the peak order (and the salience ranking): identities must stick
        // to their bearings regardless.
        for _ in 0..5 {
            tracker.update(&[peak(-20.0, 1.0), peak(20.0, 0.9)]);
        }
        for t in tracker.tracks() {
            if t.azimuth_deg > 0.0 {
                assert_eq!(t.id, by_rate[0]);
            } else {
                assert_eq!(t.id, by_rate[1]);
            }
        }
    }

    #[test]
    fn track_id_displays_and_snapshot_flags() {
        assert_eq!(TrackId(3).to_string(), "#3");
        assert_eq!(TrackId(3).raw(), 3);
        let snap = TrackSnapshot {
            status: TrackStatus::Coasting,
            ..TrackSnapshot::default()
        };
        assert!(snap.is_confirmed());
        assert!(!TrackSnapshot::default().is_confirmed());
    }
}
