//! Low-complexity SRP-PHAT by Nyquist-rate sampling of the cross-correlations.
//!
//! The key observation of Dietzen, De Sena & van Waterschoot (WASPAA 2021, cited as
//! [41] in the I-SPOT paper) is that the steered response power is a sum of
//! *bandlimited* cross-correlation functions evaluated at the candidate TDOAs, so each
//! GCC only needs to be known on an integer-lag grid covering the physically possible
//! TDOA range (a handful of samples for an automotive array) and can then be
//! interpolated to any steering delay. Compared with frequency-domain steering this
//! removes the per-(direction × frequency) complex rotations:
//!
//! * **conventional** cost per frame ≈ `pairs × directions × bins` complex rotations;
//! * **low-complexity** cost per frame ≈ `pairs × N log N` (one inverse FFT per pair)
//!   plus `pairs × directions × K` real multiply-adds for the K-tap interpolation;
//! * stored coefficients drop from `2 × bins` per pair to `2·Lmax + 1` lag samples.
//!
//! The paper reports ≈10× latency improvement and ≈50 % coefficient reduction for this
//! mathematically equivalent reformulation; experiment E4 regenerates those numbers.

use crate::error::SslError;
use crate::srp_phat::{DoaEstimate, SrpConfig, SrpMap, SrpPhat};
use crate::steering::SteeringGrid;
use ispot_dsp::complex::Complex;
use ispot_dsp::fft::Fft;
use ispot_roadsim::microphone::MicrophoneArray;

/// The low-complexity SRP-PHAT processor.
///
/// It reuses the configuration, steering grid and PHAT front-end of [`SrpPhat`] but
/// evaluates the map from Nyquist-sampled cross-correlations.
#[derive(Debug, Clone)]
pub struct SrpPhatFast {
    inner: SrpPhat,
    /// Inverse-FFT plan (same size as the analysis frame).
    fft: Fft,
    /// Maximum integer lag retained per pair.
    max_lag: usize,
    /// Number of sinc-interpolation taps on each side.
    interp_half_taps: usize,
}

impl SrpPhatFast {
    /// Creates a processor for the given array and sampling rate.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SrpPhat::new`].
    pub fn new(
        config: SrpConfig,
        array: &MicrophoneArray,
        sample_rate: f64,
    ) -> Result<Self, SslError> {
        let inner = SrpPhat::new(config, array, sample_rate)?;
        let max_lag = inner.grid().max_tdoa_samples().ceil() as usize + 2;
        Ok(SrpPhatFast {
            fft: Fft::new(config.frame_len),
            inner,
            max_lag,
            interp_half_taps: 4,
        })
    }

    /// Returns the configuration.
    pub fn config(&self) -> SrpConfig {
        self.inner.config()
    }

    /// Returns the steering grid.
    pub fn grid(&self) -> &SteeringGrid {
        self.inner.grid()
    }

    /// The maximum integer lag (samples) retained per pair.
    pub fn max_lag(&self) -> usize {
        self.max_lag
    }

    /// Number of stored coefficients per microphone pair: the `2·Lmax + 1` Nyquist-rate
    /// correlation samples. Compare with [`SrpPhat::coefficients_per_pair`].
    pub fn coefficients_per_pair(&self) -> usize {
        2 * self.max_lag + 1
    }

    /// Fractional reduction in stored coefficients relative to the conventional
    /// implementation.
    pub fn coefficient_reduction(&self) -> f64 {
        1.0 - self.coefficients_per_pair() as f64 / self.inner.coefficients_per_pair() as f64
    }

    /// Computes the SRP map for one multichannel frame.
    ///
    /// # Errors
    ///
    /// Same as [`SrpPhat::compute_map`].
    pub fn compute_map(&self, frame: &[&[f64]]) -> Result<SrpMap, SslError> {
        let cross = self.inner.cross_spectra(frame)?;
        let n = self.config().frame_len;
        let (kmin, _) = self.bin_range();
        // Per pair: rebuild the full-band cross spectrum (zeros outside the band) and
        // inverse-FFT once to obtain the GCC, keeping only lags within +-max_lag.
        let grid = self.inner.grid();
        let mut lag_tables: Vec<Vec<f64>> = Vec::with_capacity(cross.len());
        for w in &cross {
            let mut full = vec![Complex::ZERO; n];
            for (idx, &c) in w.iter().enumerate() {
                let k = kmin + idx;
                full[k] = c;
                // Maintain conjugate symmetry so the inverse transform is real.
                if k != 0 && k != n / 2 {
                    full[n - k] = c.conj();
                }
            }
            let corr = self.fft.inverse_real(&full)?;
            let mut table = vec![0.0; 2 * self.max_lag + 1];
            for (slot, lag) in (-(self.max_lag as isize)..=self.max_lag as isize).enumerate() {
                let idx = lag.rem_euclid(n as isize) as usize;
                table[slot] = corr[idx];
            }
            lag_tables.push(table);
        }
        // Steer: interpolate each pair's correlation at -tdoa(d) with a windowed sinc.
        let mut power = vec![0.0; grid.num_directions()];
        for (d, p) in power.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (pair_idx, table) in lag_tables.iter().enumerate() {
                let target_lag = -grid.tdoa(d, pair_idx);
                acc += self.interpolate(table, target_lag);
            }
            *p = acc;
        }
        Ok(SrpMap::new(grid.azimuths_deg().to_vec(), power))
    }

    /// Localizes the dominant source in one frame.
    ///
    /// # Errors
    ///
    /// Same as [`SrpPhatFast::compute_map`].
    pub fn localize(&self, frame: &[&[f64]]) -> Result<DoaEstimate, SslError> {
        Ok(DoaEstimate::from_map(self.compute_map(frame)?))
    }

    fn bin_range(&self) -> (usize, usize) {
        // Reconstruct the bin range exactly as the inner processor computed it.
        let cfg = self.inner.config();
        let bin_hz = self.inner.sample_rate() / cfg.frame_len as f64;
        let kmin = (cfg.freq_min_hz / bin_hz).ceil().max(1.0) as usize;
        let kmax = ((cfg.freq_max_hz / bin_hz).floor() as usize).min(cfg.frame_len / 2);
        (kmin, kmax)
    }

    /// Windowed-sinc interpolation of the lag table (centered at index `max_lag`) at a
    /// fractional lag.
    fn interpolate(&self, table: &[f64], lag: f64) -> f64 {
        let center = self.max_lag as f64;
        let pos = center + lag;
        let base = pos.floor() as isize;
        let taps = self.interp_half_taps as isize;
        let mut acc = 0.0;
        let mut norm = 0.0;
        for k in (base - taps + 1)..=(base + taps) {
            if k < 0 || k >= table.len() as isize {
                continue;
            }
            let t = pos - k as f64;
            let sinc = if t.abs() < 1e-12 {
                1.0
            } else {
                let pt = std::f64::consts::PI * t;
                pt.sin() / pt
            };
            let w = 0.5 + 0.5 * (std::f64::consts::PI * t / taps as f64).cos();
            let coeff = sinc * w.max(0.0);
            acc += coeff * table[k as usize];
            norm += coeff;
        }
        if norm.abs() > 1e-9 {
            acc / norm
        } else {
            acc
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::angular_error_deg;
    use crate::srp_phat::test_support::simulate_static_source;

    #[test]
    fn fast_map_matches_conventional_map() {
        let fs = 16_000.0;
        let (channels, array) = simulate_static_source(70.0, 18.0, fs, 8192, 6);
        let cfg = SrpConfig::default();
        let conventional = SrpPhat::new(cfg, &array, fs).unwrap();
        let fast = SrpPhatFast::new(cfg, &array, fs).unwrap();
        let frame: Vec<&[f64]> = channels.iter().map(|c| &c[4096..6144]).collect();
        let map_a = conventional.compute_map(&frame).unwrap();
        let map_b = fast.compute_map(&frame).unwrap();
        let corr = map_a.correlation(&map_b);
        assert!(corr > 0.98, "map correlation {corr}");
        let (_, az_a) = map_a.peak();
        let (_, az_b) = map_b.peak();
        assert!(
            angular_error_deg(az_a, az_b) <= 4.0,
            "peaks differ: {az_a} vs {az_b}"
        );
    }

    #[test]
    fn fast_localization_is_accurate() {
        let fs = 16_000.0;
        for &truth in &[-45.0, 10.0, 135.0] {
            let (channels, array) = simulate_static_source(truth, 20.0, fs, 8192, 6);
            let fast = SrpPhatFast::new(SrpConfig::default(), &array, fs).unwrap();
            let frame: Vec<&[f64]> = channels.iter().map(|c| &c[4096..6144]).collect();
            let est = fast.localize(&frame).unwrap();
            let err = angular_error_deg(est.azimuth_deg(), truth);
            assert!(err < 8.0, "azimuth {truth}: error {err}");
        }
    }

    #[test]
    fn coefficient_reduction_is_at_least_half() {
        let fs = 16_000.0;
        let array = ispot_roadsim::microphone::MicrophoneArray::circular(
            6,
            0.2,
            ispot_roadsim::geometry::Position::new(0.0, 0.0, 1.0),
        );
        let cfg = SrpConfig::default();
        let conventional = SrpPhat::new(cfg, &array, fs).unwrap();
        let fast = SrpPhatFast::new(cfg, &array, fs).unwrap();
        assert!(fast.coefficients_per_pair() < conventional.coefficients_per_pair());
        assert!(
            fast.coefficient_reduction() >= 0.5,
            "reduction {}",
            fast.coefficient_reduction()
        );
    }

    #[test]
    fn max_lag_covers_the_array_aperture() {
        let fs = 16_000.0;
        let array = ispot_roadsim::microphone::MicrophoneArray::circular(
            8,
            0.25,
            ispot_roadsim::geometry::Position::new(0.0, 0.0, 1.0),
        );
        let fast = SrpPhatFast::new(SrpConfig::default(), &array, fs).unwrap();
        let aperture_samples = 0.5 / 343.0 * fs;
        assert!(fast.max_lag() as f64 >= aperture_samples);
        assert!(fast.max_lag() as f64 <= aperture_samples + 4.0);
    }

    #[test]
    fn validation_is_shared_with_the_conventional_processor() {
        let array = ispot_roadsim::microphone::MicrophoneArray::circular(
            4,
            0.2,
            ispot_roadsim::geometry::Position::new(0.0, 0.0, 1.0),
        );
        let bad = SrpConfig {
            freq_max_hz: 20_000.0,
            ..SrpConfig::default()
        };
        assert!(SrpPhatFast::new(bad, &array, 16_000.0).is_err());
        let fast = SrpPhatFast::new(SrpConfig::default(), &array, 16_000.0).unwrap();
        let ch = vec![0.0; 2048];
        let frame: Vec<&[f64]> = vec![&ch, &ch];
        assert!(matches!(
            fast.compute_map(&frame),
            Err(SslError::ChannelMismatch { .. })
        ));
    }
}
