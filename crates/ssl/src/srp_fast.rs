//! Low-complexity SRP-PHAT by Nyquist-rate sampling of the cross-correlations.
//!
//! The key observation of Dietzen, De Sena & van Waterschoot (WASPAA 2021, cited as
//! \[41\] in the I-SPOT paper) is that the steered response power is a sum of
//! *bandlimited* cross-correlation functions evaluated at the candidate TDOAs, so each
//! GCC only needs to be known on an integer-lag grid covering the physically possible
//! TDOA range (a handful of samples for an automotive array) and can then be
//! interpolated to any steering delay. Compared with frequency-domain steering this
//! removes the per-(direction × frequency) complex rotations:
//!
//! * **conventional** cost per frame ≈ `pairs × directions × bins` complex rotations;
//! * **low-complexity** cost per frame ≈ `pairs × N log N` (one inverse FFT per pair)
//!   plus `pairs × directions × K` real multiply-adds for the K-tap interpolation;
//! * stored coefficients drop from `2 × bins` per pair to `2·Lmax + 1` lag samples.
//!
//! The paper reports ≈10× latency improvement and ≈50 % coefficient reduction for this
//! mathematically equivalent reformulation; experiment E4 regenerates those numbers.
//!
//! # Hot-path architecture
//!
//! The windowed-sinc interpolation weights depend only on the steering grid, so
//! [`SrpPhatFast::new`] bakes them into a flat sparse steering operator: for every
//! (direction, pair) it stores `K = 2 × half_taps` weights plus the window's start
//! offset into that pair's zero-padded lag table. Per frame, steering then collapses
//! to `pairs × directions × K` real multiply-adds with **no trig or sinc evaluation**,
//! and [`SrpPhatFast::compute_map_into`] runs without any heap allocation in steady
//! state: the cross spectra, the rebuilt full-band spectrum, the inverse transform
//! and the lag tables all live in a caller-owned [`SrpScratch`].

use crate::error::SslError;
use crate::srp_phat::{DoaEstimate, SrpConfig, SrpMap, SrpPhat, SrpScratch};
use crate::steering::SteeringGrid;
use ispot_dsp::complex::Complex;
use ispot_roadsim::microphone::MicrophoneArray;

/// Number of sinc-interpolation taps on each side of the steering delay.
const INTERP_HALF_TAPS: usize = 4;

/// The low-complexity SRP-PHAT processor.
///
/// It reuses the configuration, steering grid, FFT plan and PHAT front-end of
/// [`SrpPhat`] but evaluates the map from Nyquist-sampled cross-correlations through
/// a steering operator precomputed at construction.
#[derive(Debug, Clone)]
pub struct SrpPhatFast {
    inner: SrpPhat,
    /// Maximum integer lag retained per pair.
    max_lag: usize,
    /// Number of sinc-interpolation taps on each side.
    interp_half_taps: usize,
    /// Length of one zero-padded lag table (`2·max_lag + 1 + 2·half_taps`).
    padded_len: usize,
    /// Flat steering operator: `K` windowed-sinc weights per (direction, pair),
    /// direction-major (`(d * num_pairs + p) * K ..`). Weights for taps that fall
    /// outside the unpadded lag table are zero, matching the reference interpolator.
    tap_weights: Vec<f64>,
    /// Start offset of each (direction, pair) tap window into the padded lag table.
    tap_starts: Vec<u32>,
}

impl SrpPhatFast {
    /// Creates a processor for the given array and sampling rate, precomputing the
    /// per-(direction, pair) interpolation taps.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SrpPhat::new`].
    pub fn new(
        config: SrpConfig,
        array: &MicrophoneArray,
        sample_rate: f64,
    ) -> Result<Self, SslError> {
        let inner = SrpPhat::new(config, array, sample_rate)?;
        let max_lag = inner.grid().max_tdoa_samples().ceil() as usize + 2;
        let interp_half_taps = INTERP_HALF_TAPS;
        let table_len = 2 * max_lag + 1;
        let padded_len = table_len + 2 * interp_half_taps;
        let grid = inner.grid();
        let (num_dirs, num_pairs) = (grid.num_directions(), grid.num_pairs());
        let k_taps = 2 * interp_half_taps;
        let mut tap_weights = vec![0.0; num_dirs * num_pairs * k_taps];
        let mut tap_starts = vec![0u32; num_dirs * num_pairs];
        for d in 0..num_dirs {
            for p in 0..num_pairs {
                let idx = d * num_pairs + p;
                let weights = &mut tap_weights[idx * k_taps..(idx + 1) * k_taps];
                let first = precompute_taps(
                    -grid.tdoa(d, p),
                    max_lag,
                    interp_half_taps,
                    table_len,
                    weights,
                );
                let start = first + interp_half_taps as isize;
                // The padding is sized so every window fits; max_lag covers the grid's
                // TDOA range with two samples of slack, keeping `first >= -half_taps`.
                debug_assert!(start >= 0 && start as usize + k_taps <= padded_len);
                tap_starts[idx] = start as u32;
            }
        }
        Ok(SrpPhatFast {
            inner,
            max_lag,
            interp_half_taps,
            padded_len,
            tap_weights,
            tap_starts,
        })
    }

    /// Returns the configuration.
    pub fn config(&self) -> SrpConfig {
        self.inner.config()
    }

    /// Returns the steering grid.
    pub fn grid(&self) -> &SteeringGrid {
        self.inner.grid()
    }

    /// The maximum integer lag (samples) retained per pair.
    pub fn max_lag(&self) -> usize {
        self.max_lag
    }

    /// Number of stored coefficients per microphone pair: the `2·Lmax + 1` Nyquist-rate
    /// correlation samples. Compare with [`SrpPhat::coefficients_per_pair`].
    pub fn coefficients_per_pair(&self) -> usize {
        2 * self.max_lag + 1
    }

    /// Fractional reduction in stored coefficients relative to the conventional
    /// implementation.
    pub fn coefficient_reduction(&self) -> f64 {
        1.0 - self.coefficients_per_pair() as f64 / self.inner.coefficients_per_pair() as f64
    }

    /// Creates a scratch pre-sized for this processor, so even the first
    /// [`SrpPhatFast::compute_map_into`] call allocates nothing.
    pub fn make_scratch(&self) -> SrpScratch {
        let mut scratch = self.inner.make_scratch();
        scratch.corr = vec![0.0; self.config().frame_len];
        scratch.lag_tables = vec![0.0; self.grid().num_pairs() * self.padded_len];
        scratch
    }

    /// Computes the SRP map for one multichannel frame, writing the result into
    /// `out` without allocating in steady state.
    ///
    /// # Errors
    ///
    /// Same as [`SrpPhat::cross_spectra_into`].
    pub fn compute_map_into(
        &self,
        frame: &[&[f64]],
        scratch: &mut SrpScratch,
        out: &mut SrpMap,
    ) -> Result<(), SslError> {
        self.inner.cross_spectra_into(frame, scratch)?;
        self.fill_lag_tables(scratch)?;
        let grid = self.inner.grid();
        let num_pairs = grid.num_pairs();
        let k_taps = 2 * self.interp_half_taps;
        let power = out.prepare(grid.azimuths_deg());
        for (d, p) in power.iter_mut().enumerate() {
            let row = d * num_pairs;
            let mut acc = 0.0;
            for pair_idx in 0..num_pairs {
                let start = self.tap_starts[row + pair_idx] as usize;
                let weights = &self.tap_weights[(row + pair_idx) * k_taps..][..k_taps];
                let taps = &scratch.lag_tables[pair_idx * self.padded_len + start..][..k_taps];
                let mut dot = 0.0;
                for (w, t) in weights.iter().zip(taps) {
                    dot += w * t;
                }
                acc += dot;
            }
            *p = acc;
        }
        Ok(())
    }

    /// Per pair: rebuilds the full-band cross spectrum (zeros outside the band) in
    /// `scratch.spec`, inverse-FFTs once into `scratch.corr`, and gathers the lags
    /// within `±max_lag` into the pair's zero-padded lag table.
    fn fill_lag_tables(&self, scratch: &mut SrpScratch) -> Result<(), SslError> {
        let n = self.config().frame_len;
        let (kmin, _) = self.inner.bin_range();
        let nb = self.inner.num_bins();
        let num_pairs = self.inner.grid().num_pairs();
        scratch.corr.resize(n, 0.0);
        scratch.lag_tables.resize(num_pairs * self.padded_len, 0.0);
        for pair_idx in 0..num_pairs {
            scratch.spec.fill(Complex::ZERO);
            for idx in 0..nb {
                let c = scratch.cross[pair_idx * nb + idx];
                let k = kmin + idx;
                if 2 * k == n {
                    // The Nyquist bin is its own mirror: force it real so the spectrum
                    // stays conjugate-symmetric and the inverse transform is real.
                    scratch.spec[k] = Complex::new(c.re, 0.0);
                } else {
                    // Maintain conjugate symmetry so the inverse transform is real.
                    scratch.spec[k] = c;
                    scratch.spec[n - k] = c.conj();
                }
            }
            self.inner
                .fft()
                .inverse_real_into(&mut scratch.spec, &mut scratch.corr)?;
            let pad = self.interp_half_taps;
            let table = &mut scratch.lag_tables[pair_idx * self.padded_len..][..self.padded_len];
            for (slot, lag) in (-(self.max_lag as isize)..=self.max_lag as isize).enumerate() {
                let idx = lag.rem_euclid(n as isize) as usize;
                table[pad + slot] = scratch.corr[idx];
            }
        }
        Ok(())
    }

    /// Computes the SRP map for one multichannel frame.
    ///
    /// Allocating convenience wrapper around [`SrpPhatFast::compute_map_into`]; the
    /// hot path should hold a [`SrpScratch`] and an output map and call the `_into`
    /// variant instead.
    ///
    /// # Errors
    ///
    /// Same as [`SrpPhat::compute_map`].
    pub fn compute_map(&self, frame: &[&[f64]]) -> Result<SrpMap, SslError> {
        let mut scratch = self.make_scratch();
        let mut out = SrpMap::default();
        self.compute_map_into(frame, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// Localizes the dominant source in one frame.
    ///
    /// # Errors
    ///
    /// Same as [`SrpPhatFast::compute_map`].
    pub fn localize(&self, frame: &[&[f64]]) -> Result<DoaEstimate, SslError> {
        DoaEstimate::from_map(self.compute_map(frame)?)
            .ok_or_else(|| SslError::invalid_config("map", "empty SRP map has no peak"))
    }
}

/// Computes the normalized windowed-sinc weights for interpolating a lag table
/// (centered at index `max_lag`, `table_len` entries) at fractional lag `lag`.
///
/// Fills `weights` (length `2 × half_taps`) with one weight per tap of the window
/// `(base - half_taps + 1)..=(base + half_taps)` where `base = floor(max_lag + lag)`;
/// taps outside the table get weight zero and are excluded from the normalization,
/// exactly like the reference interpolator. Returns the index of the first tap
/// (which may be negative at the table edges).
fn precompute_taps(
    lag: f64,
    max_lag: usize,
    half_taps: usize,
    table_len: usize,
    weights: &mut [f64],
) -> isize {
    let pos = max_lag as f64 + lag;
    let base = pos.floor() as isize;
    let taps = half_taps as isize;
    let first = base - taps + 1;
    let mut norm = 0.0;
    for (slot, k) in (first..=base + taps).enumerate() {
        weights[slot] = 0.0;
        if k < 0 || k >= table_len as isize {
            continue;
        }
        let t = pos - k as f64;
        let sinc = if t.abs() < 1e-12 {
            1.0
        } else {
            let pt = std::f64::consts::PI * t;
            pt.sin() / pt
        };
        let w = 0.5 + 0.5 * (std::f64::consts::PI * t / taps as f64).cos();
        let coeff = sinc * w.max(0.0);
        weights[slot] = coeff;
        norm += coeff;
    }
    if norm.abs() > 1e-9 {
        for w in weights.iter_mut() {
            *w /= norm;
        }
    }
    first
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::angular_error_deg;
    use crate::srp_phat::test_support::simulate_static_source;

    /// Reference windowed-sinc interpolation of a lag table (centered at index
    /// `max_lag`) at a fractional lag — the pre-precompute hot-loop implementation,
    /// kept to pin the steering operator against.
    fn interpolate_reference(table: &[f64], max_lag: usize, half_taps: usize, lag: f64) -> f64 {
        let pos = max_lag as f64 + lag;
        let base = pos.floor() as isize;
        let taps = half_taps as isize;
        let mut acc = 0.0;
        let mut norm = 0.0;
        for k in (base - taps + 1)..=(base + taps) {
            if k < 0 || k >= table.len() as isize {
                continue;
            }
            let t = pos - k as f64;
            let sinc = if t.abs() < 1e-12 {
                1.0
            } else {
                let pt = std::f64::consts::PI * t;
                pt.sin() / pt
            };
            let w = 0.5 + 0.5 * (std::f64::consts::PI * t / taps as f64).cos();
            let coeff = sinc * w.max(0.0);
            acc += coeff * table[k as usize];
            norm += coeff;
        }
        if norm.abs() > 1e-9 {
            acc / norm
        } else {
            acc
        }
    }

    /// Computes the map the way the pre-precompute implementation did: fill the lag
    /// tables, then interpolate each (direction, pair) on the fly.
    fn compute_map_via_reference_interpolation(fast: &SrpPhatFast, frame: &[&[f64]]) -> SrpMap {
        let mut scratch = fast.make_scratch();
        fast.inner.cross_spectra_into(frame, &mut scratch).unwrap();
        fast.fill_lag_tables(&mut scratch).unwrap();
        let grid = fast.grid();
        let pad = fast.interp_half_taps;
        let table_len = 2 * fast.max_lag + 1;
        let mut power = vec![0.0; grid.num_directions()];
        for (d, p) in power.iter_mut().enumerate() {
            let mut acc = 0.0;
            for pair_idx in 0..grid.num_pairs() {
                let table = &scratch.lag_tables[pair_idx * fast.padded_len + pad..][..table_len];
                acc += interpolate_reference(
                    table,
                    fast.max_lag,
                    fast.interp_half_taps,
                    -grid.tdoa(d, pair_idx),
                );
            }
            *p = acc;
        }
        SrpMap::new(grid.azimuths_deg().to_vec(), power)
    }

    #[test]
    fn fast_map_matches_conventional_map() {
        let fs = 16_000.0;
        let (channels, array) = simulate_static_source(70.0, 18.0, fs, 8192, 6);
        let cfg = SrpConfig::default();
        let conventional = SrpPhat::new(cfg, &array, fs).unwrap();
        let fast = SrpPhatFast::new(cfg, &array, fs).unwrap();
        let frame: Vec<&[f64]> = channels.iter().map(|c| &c[4096..6144]).collect();
        let map_a = conventional.compute_map(&frame).unwrap();
        let map_b = fast.compute_map(&frame).unwrap();
        let corr = map_a.correlation(&map_b);
        assert!(corr > 0.98, "map correlation {corr}");
        let (_, az_a) = map_a.peak().unwrap();
        let (_, az_b) = map_b.peak().unwrap();
        assert!(
            angular_error_deg(az_a, az_b) <= 4.0,
            "peaks differ: {az_a} vs {az_b}"
        );
    }

    #[test]
    fn precomputed_taps_match_reference_interpolation() {
        let fs = 16_000.0;
        let (channels, array) = simulate_static_source(-30.0, 15.0, fs, 8192, 6);
        let fast = SrpPhatFast::new(SrpConfig::default(), &array, fs).unwrap();
        let frame: Vec<&[f64]> = channels.iter().map(|c| &c[4096..6144]).collect();
        let tap_map = fast.compute_map(&frame).unwrap();
        let ref_map = compute_map_via_reference_interpolation(&fast, &frame);
        let corr = tap_map.correlation(&ref_map);
        assert!(corr > 0.999, "tap/reference correlation {corr}");
        for (a, b) in tap_map.power().iter().zip(ref_map.power()) {
            assert!((a - b).abs() < 1e-9, "power mismatch: {a} vs {b}");
        }
    }

    #[test]
    fn compute_map_into_reuses_scratch_and_matches() {
        let fs = 16_000.0;
        let (channels, array) = simulate_static_source(10.0, 20.0, fs, 8192, 4);
        let fast = SrpPhatFast::new(SrpConfig::default(), &array, fs).unwrap();
        let frame: Vec<&[f64]> = channels.iter().map(|c| &c[4096..6144]).collect();
        let expected = fast.compute_map(&frame).unwrap();
        let mut scratch = fast.make_scratch();
        let mut out = SrpMap::default();
        for _ in 0..3 {
            fast.compute_map_into(&frame, &mut scratch, &mut out)
                .unwrap();
            assert_eq!(out, expected);
        }
        // An empty scratch grows on first use and converges to the same result.
        let mut lazy = SrpScratch::new();
        fast.compute_map_into(&frame, &mut lazy, &mut out).unwrap();
        assert_eq!(out, expected);
    }

    #[test]
    fn nyquist_band_edge_keeps_the_spectrum_real_symmetric() {
        // Regression: with freq_max_hz == fs/2 the k == n/2 bin used to be copied
        // complex-valued without the conjugate-symmetry guard applying, feeding
        // inverse_real a non-real-symmetric spectrum.
        let fs = 16_000.0;
        let (channels, array) = simulate_static_source(50.0, 18.0, fs, 8192, 6);
        let cfg = SrpConfig {
            freq_max_hz: fs / 2.0,
            ..SrpConfig::default()
        };
        let conventional = SrpPhat::new(cfg, &array, fs).unwrap();
        let fast = SrpPhatFast::new(cfg, &array, fs).unwrap();
        let (_, kmax) = conventional.bin_range();
        assert_eq!(2 * kmax, cfg.frame_len, "config must hit the Nyquist bin");
        let frame: Vec<&[f64]> = channels.iter().map(|c| &c[4096..6144]).collect();
        let map_a = conventional.compute_map(&frame).unwrap();
        let map_b = fast.compute_map(&frame).unwrap();
        assert!(map_b.power().iter().all(|p| p.is_finite()));
        let corr = map_a.correlation(&map_b);
        assert!(corr > 0.9, "map correlation {corr}");
        assert!(angular_error_deg(map_a.peak().unwrap().1, map_b.peak().unwrap().1) <= 4.0);
    }

    #[test]
    fn fast_localization_is_accurate() {
        let fs = 16_000.0;
        for &truth in &[-45.0, 10.0, 135.0] {
            let (channels, array) = simulate_static_source(truth, 20.0, fs, 8192, 6);
            let fast = SrpPhatFast::new(SrpConfig::default(), &array, fs).unwrap();
            let frame: Vec<&[f64]> = channels.iter().map(|c| &c[4096..6144]).collect();
            let est = fast.localize(&frame).unwrap();
            let err = angular_error_deg(est.azimuth_deg(), truth);
            assert!(err < 8.0, "azimuth {truth}: error {err}");
        }
    }

    #[test]
    fn shared_processor_serves_concurrent_streams() {
        // The engine/session API in ispot-core shares one processor across many
        // streams behind an `Arc`; the processor must therefore be immutable in
        // its compute path (`&self`), `Send + Sync`, and safe to drive from
        // several threads each holding its own scratch.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SrpPhatFast>();
        assert_send_sync::<SrpPhat>();

        let fs = 16_000.0;
        let (channels, array) = simulate_static_source(40.0, 15.0, fs, 8192, 4);
        let fast = std::sync::Arc::new(SrpPhatFast::new(SrpConfig::default(), &array, fs).unwrap());
        let frame: Vec<&[f64]> = channels.iter().map(|c| &c[4096..6144]).collect();
        let expected = fast.compute_map(&frame).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let fast = std::sync::Arc::clone(&fast);
                let frame = frame.clone();
                scope.spawn(move || {
                    let mut scratch = fast.make_scratch();
                    let mut out = SrpMap::default();
                    for _ in 0..2 {
                        fast.compute_map_into(&frame, &mut scratch, &mut out)
                            .unwrap();
                    }
                    out
                });
            }
        });
        assert_eq!(fast.compute_map(&frame).unwrap(), expected);
    }

    #[test]
    fn coefficient_reduction_is_at_least_half() {
        let fs = 16_000.0;
        let array = ispot_roadsim::microphone::MicrophoneArray::circular(
            6,
            0.2,
            ispot_roadsim::geometry::Position::new(0.0, 0.0, 1.0),
        );
        let cfg = SrpConfig::default();
        let conventional = SrpPhat::new(cfg, &array, fs).unwrap();
        let fast = SrpPhatFast::new(cfg, &array, fs).unwrap();
        assert!(fast.coefficients_per_pair() < conventional.coefficients_per_pair());
        assert!(
            fast.coefficient_reduction() >= 0.5,
            "reduction {}",
            fast.coefficient_reduction()
        );
    }

    #[test]
    fn max_lag_covers_the_array_aperture() {
        let fs = 16_000.0;
        let array = ispot_roadsim::microphone::MicrophoneArray::circular(
            8,
            0.25,
            ispot_roadsim::geometry::Position::new(0.0, 0.0, 1.0),
        );
        let fast = SrpPhatFast::new(SrpConfig::default(), &array, fs).unwrap();
        let aperture_samples = 0.5 / 343.0 * fs;
        assert!(fast.max_lag() as f64 >= aperture_samples);
        assert!(fast.max_lag() as f64 <= aperture_samples + 4.0);
    }

    #[test]
    fn validation_is_shared_with_the_conventional_processor() {
        let array = ispot_roadsim::microphone::MicrophoneArray::circular(
            4,
            0.2,
            ispot_roadsim::geometry::Position::new(0.0, 0.0, 1.0),
        );
        let bad = SrpConfig {
            freq_max_hz: 20_000.0,
            ..SrpConfig::default()
        };
        assert!(SrpPhatFast::new(bad, &array, 16_000.0).is_err());
        let fast = SrpPhatFast::new(SrpConfig::default(), &array, 16_000.0).unwrap();
        let ch = vec![0.0; 2048];
        let frame: Vec<&[f64]> = vec![&ch, &ch];
        assert!(matches!(
            fast.compute_map(&frame),
            Err(SslError::ChannelMismatch { .. })
        ));
    }
}
