//! Low-complexity SRP-PHAT by Nyquist-rate sampling of the cross-correlations.
//!
//! The key observation of Dietzen, De Sena & van Waterschoot (WASPAA 2021, cited as
//! \[41\] in the I-SPOT paper) is that the steered response power is a sum of
//! *bandlimited* cross-correlation functions evaluated at the candidate TDOAs, so each
//! GCC only needs to be known on an integer-lag grid covering the physically possible
//! TDOA range (a handful of samples for an automotive array) and can then be
//! interpolated to any steering delay. Compared with frequency-domain steering this
//! removes the per-(direction × frequency) complex rotations:
//!
//! * **conventional** cost per frame ≈ `pairs × directions × bins` complex rotations;
//! * **low-complexity** cost per frame ≈ one real FFT per *channel pair* plus a
//!   `pairs × (max_lag + 1) × bins` real GEMM for the lag synthesis plus
//!   `pairs × directions × K` real multiply-adds for the K-tap interpolation;
//! * stored coefficients drop from `2 × bins` per pair to `2·Lmax + 1` lag samples.
//!
//! The paper reports ≈10× latency improvement and ≈50 % coefficient reduction for this
//! mathematically equivalent reformulation; experiment E4 regenerates those numbers.
//!
//! # Hot-path architecture
//!
//! The per-frame pipeline is `f32` end-to-end past the FFT and runs through the
//! runtime-dispatched SIMD kernels in `srp_kernels` (AVX2+FMA copy when the host
//! supports it, portable autovectorized copy otherwise):
//!
//! 1. **Band spectra** — channels are transformed two at a time through
//!    [`ispot_dsp::fft::Fft::forward_real_pair_into`] (one complex FFT per channel
//!    pair) and only the `[kmin, kmax]` band is Hermitian-separated into
//!    structure-of-arrays `f32` buffers.
//! 2. **PHAT + folded lag synthesis** — instead of rebuilding a mostly-zero
//!    full-band spectrum and running a full-length inverse FFT per microphone
//!    pair, the band-limited correlation is synthesized directly on the
//!    `±max_lag` grid against precomputed `scale·cos / scale·sin` tables, with
//!    the `±lag` symmetry folded so only non-negative rows are reduced.
//! 3. **Steering** — the windowed-sinc interpolation weights depend only on the
//!    steering grid, so construction bakes them into a flat sparse operator:
//!    `K = 2 × half_taps = 8` weights (exactly one 8-lane SIMD register) plus a
//!    start offset into the pair's zero-padded lag table, stored
//!    direction-major so the inner `pairs × K` reduction is sequential loads.
//!
//! With a [`SrpSearchConfig`] decimation above 1, steering runs **coarse-to-fine**:
//! a decimated pass scores every `decimation`-th direction, then exact
//! full-resolution windows are steered around the top `coarse_peaks` coarse
//! maxima (`±refine_radius` cells) *and* around the lowest coarse samples (the
//! map floor feeds peak-salience normalization downstream). Every exactly
//! steered cell — coarse sample or refined window — is an *anchor*; the
//! remaining cells are filled last by wrap-aware linear interpolation between
//! neighbouring anchors, so the map is continuous at window edges (a step there
//! would read as a phantom peak to non-maximum suppression) and downstream
//! smoothing and multi-target tracking always see a full-resolution map.
//! Already-anchored cells are never re-steered, bounding the exact steering
//! work by the grid size regardless of how many windows overlap.
//!
//! ## Why there is no incremental FFT cache for 50 % hop overlap
//!
//! At hop `N/2`, an exact "reuse the previous half-frame's transform" scheme
//! still costs two `N/2` FFTs plus modulation and recombination per channel,
//! which butterfly-for-butterfly matches one `N` FFT (`2 · (N/2)·log(N/2) ≈
//! N·log N − N`) — a wash on cache hits and a regression on misses, and the
//! windowing applied per frame breaks exact reuse anyway. The redundant per-hop
//! work eliminated here instead is the full-band spectrum rebuild (58 % zeros
//! for the default band), the 15 full-length inverse FFTs (→ band-limited
//! folded synthesis), and the per-channel real FFTs (→ channel pairing).
//!
//! [`SrpPhatFast::compute_map_into`] performs no heap allocation in steady state
//! and no buffer growth at all: it requires a scratch pre-sized by
//! [`SrpPhatFast::make_scratch`] and returns [`SslError::ScratchSize`] otherwise.

use crate::error::SslError;
use crate::srp_kernels as kernels;
use crate::srp_phat::{DoaEstimate, SrpConfig, SrpMap, SrpPhat, SrpScratch};
use crate::steering::SteeringGrid;
use ispot_dsp::complex::Complex;
use ispot_dsp::simd::fma_available;
use ispot_roadsim::microphone::MicrophoneArray;
use serde::{Deserialize, Serialize};
use std::f64::consts::PI;

/// Number of sinc-interpolation taps on each side of the steering delay.
const INTERP_HALF_TAPS: usize = 4;

// The steering kernel loads one tap window as a single 8-lane register.
const _: () = assert!(2 * INTERP_HALF_TAPS == kernels::K_TAPS);

/// Exact-refinement windows the hierarchical search spends on the lowest coarse
/// samples (in addition to the coarse-peak windows), to recover the map floor
/// that peak-salience normalization depends on.
const MIN_REFINE_WINDOWS: usize = 5;

/// Azimuth-search strategy for [`SrpPhatFast`]: exhaustive full-grid steering, or
/// coarse-to-fine hierarchical search.
///
/// The default ([`SrpSearchConfig::exhaustive`]) scores every grid direction and
/// is the reference the hierarchical mode is validated against. With
/// `decimation > 1`, only every `decimation`-th direction is scored, the top
/// `coarse_peaks` coarse local maxima (plus the lowest coarse samples, which
/// pin the map floor that salience normalization depends on) are re-scored at
/// full resolution within `refine_radius` grid cells, and the remaining cells
/// are filled by wrap-aware linear interpolation between the exactly steered
/// cells — the output map keeps the full grid shape and stays continuous at
/// refinement-window edges either way.
///
/// # Example
///
/// ```
/// use ispot_ssl::srp_fast::SrpSearchConfig;
///
/// let exhaustive = SrpSearchConfig::default();
/// assert_eq!(exhaustive.decimation, 1);
/// let fast = SrpSearchConfig::hierarchical();
/// assert!(fast.decimation > 1 && fast.refine_radius >= fast.decimation);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SrpSearchConfig {
    /// Coarse-grid decimation factor; `1` disables the hierarchy (exhaustive
    /// search).
    pub decimation: usize,
    /// Number of coarse peaks whose neighbourhoods are refined at full
    /// resolution.
    pub coarse_peaks: usize,
    /// Refinement radius in full-resolution grid cells around each surviving
    /// coarse peak; must be at least `decimation` so the true maximum between
    /// two coarse samples cannot escape the refined window.
    pub refine_radius: usize,
}

impl Default for SrpSearchConfig {
    fn default() -> Self {
        SrpSearchConfig {
            decimation: 1,
            coarse_peaks: 4,
            refine_radius: 8,
        }
    }
}

impl SrpSearchConfig {
    /// Exhaustive full-grid search (the default).
    pub fn exhaustive() -> Self {
        SrpSearchConfig::default()
    }

    /// The standard coarse-to-fine configuration: every 4th direction scored,
    /// top-8 coarse peaks refined within ±6 cells. A generous peak budget is
    /// deliberate — refinement windows are cheap (the per-frame synthesis GEMM
    /// dominates), and downstream trackers rank peaks by salience against the
    /// map's dynamic range, so every candidate a tracker might select must carry
    /// its exact score. On the 181-cell default grid this configuration
    /// reproduces the exhaustive tracker decisions on the multi-target
    /// acceptance scenes.
    pub fn hierarchical() -> Self {
        SrpSearchConfig {
            decimation: 4,
            coarse_peaks: 8,
            refine_radius: 6,
        }
    }

    /// Checks the search parameters against a grid of `num_directions` cells.
    ///
    /// # Errors
    ///
    /// Returns [`SslError::InvalidConfig`] naming the offending field when the
    /// decimation is zero, leaves fewer than eight coarse directions, no coarse
    /// peaks would be refined, or the refinement radius is smaller than the
    /// decimation (the true maximum between two coarse samples could escape the
    /// refined window). `decimation == 1` (exhaustive) accepts the remaining
    /// fields unchecked because they are unused.
    pub fn validate(&self, num_directions: usize) -> Result<(), SslError> {
        if self.decimation == 0 {
            return Err(SslError::invalid_config(
                "search.decimation",
                "must be positive (1 = exhaustive)",
            ));
        }
        if self.decimation == 1 {
            return Ok(());
        }
        if num_directions / self.decimation < 8 {
            return Err(SslError::invalid_config(
                "search.decimation",
                format!(
                    "leaves fewer than 8 coarse directions ({} / {})",
                    num_directions, self.decimation
                ),
            ));
        }
        if self.coarse_peaks == 0 {
            return Err(SslError::invalid_config(
                "search.coarse_peaks",
                "must be positive when decimation > 1",
            ));
        }
        if self.refine_radius < self.decimation {
            return Err(SslError::invalid_config(
                "search.refine_radius",
                format!(
                    "must be at least the decimation factor ({} < {})",
                    self.refine_radius, self.decimation
                ),
            ));
        }
        Ok(())
    }
}

/// The low-complexity SRP-PHAT processor.
///
/// It reuses the configuration, steering grid, FFT plan and band selection of
/// [`SrpPhat`] but evaluates the map from Nyquist-sampled cross-correlations through
/// precomputed `f32` operators (see the module docs for the pipeline). A scalar
/// `f64` reference path is retained as
/// [`SrpPhatFast::compute_map_reference_into`] for numerics pinning.
#[derive(Debug, Clone)]
pub struct SrpPhatFast {
    inner: SrpPhat,
    /// Maximum integer lag retained per pair.
    max_lag: usize,
    /// Number of sinc-interpolation taps on each side.
    interp_half_taps: usize,
    /// Length of one zero-padded lag table (`2·max_lag + 1 + 2·half_taps`).
    padded_len: usize,
    /// Flat steering operator: `K` windowed-sinc weights per (direction, pair),
    /// direction-major (`(d * num_pairs + p) * K ..`). Weights for taps that fall
    /// outside the unpadded lag table are zero, matching the reference interpolator.
    tap_weights: Vec<f64>,
    /// The same operator in `f32` for the SIMD steering kernel.
    tap_weights_f32: Vec<f32>,
    /// Start offset of each (direction, pair) tap window into the padded lag table.
    tap_starts: Vec<u32>,
    /// Folded lag-synthesis tables `scale_k · cos/sin(2π k ℓ / N)`, row-major
    /// `(max_lag + 1) × num_bins`, computed in `f64` and stored as `f32`.
    syn_cos: Vec<f32>,
    syn_sin: Vec<f32>,
    /// Azimuth-search strategy.
    search: SrpSearchConfig,
    /// Grid indices of the decimated coarse pass (empty when exhaustive).
    coarse_dirs: Vec<u32>,
    /// Azimuths of the coarse grid (empty when exhaustive).
    coarse_azimuths: Vec<f64>,
    /// Cached [`fma_available`] so the per-frame path never re-probes cpuid.
    use_fma: bool,
}

impl SrpPhatFast {
    /// Creates a processor with exhaustive search. See
    /// [`SrpPhatFast::with_search`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`SrpPhat::new`].
    pub fn new(
        config: SrpConfig,
        array: &MicrophoneArray,
        sample_rate: f64,
    ) -> Result<Self, SslError> {
        SrpPhatFast::with_search(config, SrpSearchConfig::default(), array, sample_rate)
    }

    /// Creates a processor for the given array, sampling rate and search
    /// strategy, precomputing the per-(direction, pair) interpolation taps and
    /// the lag-synthesis tables.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SrpPhat::new`], plus an invalid `search`
    /// configuration (zero decimation, a coarse grid below 8 directions, zero
    /// `coarse_peaks`, or `refine_radius < decimation`).
    pub fn with_search(
        config: SrpConfig,
        search: SrpSearchConfig,
        array: &MicrophoneArray,
        sample_rate: f64,
    ) -> Result<Self, SslError> {
        let inner = SrpPhat::new(config, array, sample_rate)?;
        search.validate(inner.grid().num_directions())?;
        let max_lag = inner.grid().max_tdoa_samples().ceil() as usize + 2;
        let interp_half_taps = INTERP_HALF_TAPS;
        let table_len = 2 * max_lag + 1;
        let padded_len = table_len + 2 * interp_half_taps;
        let grid = inner.grid();
        let (num_dirs, num_pairs) = (grid.num_directions(), grid.num_pairs());
        let k_taps = 2 * interp_half_taps;
        let mut tap_weights = vec![0.0; num_dirs * num_pairs * k_taps];
        let mut tap_starts = vec![0u32; num_dirs * num_pairs];
        for d in 0..num_dirs {
            for p in 0..num_pairs {
                let idx = d * num_pairs + p;
                let weights = &mut tap_weights[idx * k_taps..(idx + 1) * k_taps];
                let first = precompute_taps(
                    -grid.tdoa(d, p),
                    max_lag,
                    interp_half_taps,
                    table_len,
                    weights,
                );
                let start = first + interp_half_taps as isize;
                // The padding is sized so every window fits; max_lag covers the grid's
                // TDOA range with two samples of slack, keeping `first >= -half_taps`.
                debug_assert!(start >= 0 && start as usize + k_taps <= padded_len);
                tap_starts[idx] = start as u32;
            }
        }
        let tap_weights_f32: Vec<f32> = tap_weights.iter().map(|&w| w as f32).collect();
        // Lag synthesis: corr(ℓ) of the band-limited PHAT spectrum is
        //   Σ_k scale_k · (Re c_k · cos θ − Im c_k · sin θ),  θ = 2π k ℓ / N,
        // with scale 2/N for interior bins (the conjugate mirror contributes the
        // second copy) and 1/N at the Nyquist bin, whose sin column is 0 for
        // integer ℓ. Angles are evaluated in f64 and stored as f32.
        let n = config.frame_len;
        let (kmin, _) = inner.bin_range();
        let nb = inner.num_bins();
        let mut syn_cos = vec![0.0f32; (max_lag + 1) * nb];
        let mut syn_sin = vec![0.0f32; (max_lag + 1) * nb];
        for lag in 0..=max_lag {
            for idx in 0..nb {
                let k = kmin + idx;
                let theta = 2.0 * PI * (k * lag) as f64 / n as f64;
                let scale = if 2 * k == n { 1.0 } else { 2.0 } / n as f64;
                syn_cos[lag * nb + idx] = (scale * theta.cos()) as f32;
                syn_sin[lag * nb + idx] = (scale * theta.sin()) as f32;
            }
        }
        let (coarse_dirs, coarse_azimuths) = if search.decimation > 1 {
            let dirs: Vec<u32> = (0..num_dirs)
                .step_by(search.decimation)
                .map(|d| d as u32)
                .collect();
            let az: Vec<f64> = dirs
                .iter()
                .map(|&d| grid.azimuths_deg()[d as usize])
                .collect();
            (dirs, az)
        } else {
            (Vec::new(), Vec::new())
        };
        Ok(SrpPhatFast {
            inner,
            max_lag,
            interp_half_taps,
            padded_len,
            tap_weights,
            tap_weights_f32,
            tap_starts,
            syn_cos,
            syn_sin,
            search,
            coarse_dirs,
            coarse_azimuths,
            use_fma: fma_available(),
        })
    }

    /// Returns the configuration.
    pub fn config(&self) -> SrpConfig {
        self.inner.config()
    }

    /// Returns the azimuth-search strategy.
    pub fn search(&self) -> SrpSearchConfig {
        self.search
    }

    /// Returns the steering grid.
    pub fn grid(&self) -> &SteeringGrid {
        self.inner.grid()
    }

    /// The maximum integer lag (samples) retained per pair.
    pub fn max_lag(&self) -> usize {
        self.max_lag
    }

    /// Number of stored coefficients per microphone pair: the `2·Lmax + 1` Nyquist-rate
    /// correlation samples. Compare with [`SrpPhat::coefficients_per_pair`].
    pub fn coefficients_per_pair(&self) -> usize {
        2 * self.max_lag + 1
    }

    /// Fractional reduction in stored coefficients relative to the conventional
    /// implementation.
    pub fn coefficient_reduction(&self) -> f64 {
        1.0 - self.coefficients_per_pair() as f64 / self.inner.coefficients_per_pair() as f64
    }

    /// Creates a scratch pre-sized for this processor. [`SrpPhatFast::compute_map_into`]
    /// requires it: every buffer is length-checked, never grown, so no allocation or
    /// resize can reach the per-frame path.
    pub fn make_scratch(&self) -> SrpScratch {
        let grid = self.inner.grid();
        let (num_pairs, nb) = (grid.num_pairs(), self.inner.num_bins());
        let num_channels = grid.num_channels();
        let mut scratch = self.inner.make_scratch();
        scratch.corr = vec![0.0; self.config().frame_len];
        scratch.lag_tables = vec![0.0; num_pairs * self.padded_len];
        scratch.ch_re = vec![0.0; num_channels * nb];
        scratch.ch_im = vec![0.0; num_channels * nb];
        scratch.phat_re = vec![0.0; nb];
        scratch.phat_im = vec![0.0; nb];
        scratch.lag_f32 = vec![0.0; num_pairs * self.padded_len];
        if self.search.decimation > 1 {
            scratch.coarse.prepare(&self.coarse_azimuths);
            scratch.peaks = Vec::with_capacity(self.search.coarse_peaks);
            scratch.anchored = vec![false; grid.num_directions()];
        }
        scratch
    }

    fn ensure_len(buffer: &'static str, actual: usize, expected: usize) -> Result<(), SslError> {
        if actual != expected {
            return Err(SslError::ScratchSize {
                buffer,
                expected,
                actual,
            });
        }
        Ok(())
    }

    /// Computes the SRP map for one multichannel frame through the `f32` SIMD
    /// pipeline (and hierarchical search when configured), writing the result
    /// into `out` without allocating.
    ///
    /// # Errors
    ///
    /// [`SslError::ChannelMismatch`] / [`SslError::InvalidConfig`] for a frame
    /// that does not match the array or frame length, and
    /// [`SslError::ScratchSize`] for a scratch not created by
    /// [`SrpPhatFast::make_scratch`].
    pub fn compute_map_into(
        &self,
        frame: &[&[f64]],
        scratch: &mut SrpScratch,
        out: &mut SrpMap,
    ) -> Result<(), SslError> {
        self.inner.validate_frame(frame)?;
        let grid = self.inner.grid();
        let (num_pairs, nb) = (grid.num_pairs(), self.inner.num_bins());
        Self::ensure_len("spec", scratch.spec.len(), self.config().frame_len)?;
        Self::ensure_len("ch_re", scratch.ch_re.len(), frame.len() * nb)?;
        Self::ensure_len("ch_im", scratch.ch_im.len(), frame.len() * nb)?;
        Self::ensure_len("phat_re", scratch.phat_re.len(), nb)?;
        Self::ensure_len("phat_im", scratch.phat_im.len(), nb)?;
        Self::ensure_len(
            "lag_f32",
            scratch.lag_f32.len(),
            num_pairs * self.padded_len,
        )?;
        self.band_spectra_f32(frame, scratch)?;
        {
            let SrpScratch {
                ref ch_re,
                ref ch_im,
                ref mut phat_re,
                ref mut phat_im,
                ref mut lag_f32,
                ..
            } = *scratch;
            let spectra = kernels::PairSpectra {
                ch_re,
                ch_im,
                nb,
                pairs: grid.pairs(),
            };
            let synth = kernels::LagSynthOp {
                syn_cos: &self.syn_cos,
                syn_sin: &self.syn_sin,
                max_lag: self.max_lag,
                pad: self.interp_half_taps,
                padded_len: self.padded_len,
            };
            kernels::phat_lags(self.use_fma, &spectra, &synth, phat_re, phat_im, lag_f32);
        }
        let steer_op = kernels::SteerOp {
            tap_weights: &self.tap_weights_f32,
            tap_starts: &self.tap_starts,
            num_pairs,
            padded_len: self.padded_len,
        };
        if self.search.decimation <= 1 {
            let power = out.prepare(grid.azimuths_deg());
            kernels::steer(self.use_fma, &steer_op, &scratch.lag_f32, 0, 1, power);
        } else {
            self.steer_hierarchical(&steer_op, scratch, out);
        }
        Ok(())
    }

    /// Transforms the frame two channels at a time (one complex FFT per pair) and
    /// Hermitian-separates the steering band into the `f32` SoA scratch buffers.
    fn band_spectra_f32(&self, frame: &[&[f64]], scratch: &mut SrpScratch) -> Result<(), SslError> {
        let fft = self.inner.fft();
        let (kmin, kmax) = self.inner.bin_range();
        let nb = self.inner.num_bins();
        let mut ch = 0;
        while ch + 1 < frame.len() {
            fft.forward_real_pair_into(frame[ch], frame[ch + 1], &mut scratch.spec)?;
            for (idx, k) in (kmin..=kmax).enumerate() {
                let (a, b) = fft.split_pair_bin(&scratch.spec, k);
                scratch.ch_re[ch * nb + idx] = a.re as f32;
                scratch.ch_im[ch * nb + idx] = a.im as f32;
                scratch.ch_re[(ch + 1) * nb + idx] = b.re as f32;
                scratch.ch_im[(ch + 1) * nb + idx] = b.im as f32;
            }
            ch += 2;
        }
        if ch < frame.len() {
            fft.forward_real_into(frame[ch], &mut scratch.spec)?;
            for (idx, k) in (kmin..=kmax).enumerate() {
                let c = scratch.spec[k];
                scratch.ch_re[ch * nb + idx] = c.re as f32;
                scratch.ch_im[ch * nb + idx] = c.im as f32;
            }
        }
        Ok(())
    }

    /// Coarse-to-fine steering: decimated pass, coarse-peak NMS, full-resolution
    /// refinement around survivors, linear interpolation elsewhere.
    fn steer_hierarchical(
        &self,
        op: &kernels::SteerOp<'_>,
        scratch: &mut SrpScratch,
        out: &mut SrpMap,
    ) {
        let grid = self.inner.grid();
        let n = grid.num_directions();
        let nc = self.coarse_dirs.len();
        {
            let cpow = scratch.coarse.prepare(&self.coarse_azimuths);
            kernels::steer(
                self.use_fma,
                op,
                &scratch.lag_f32,
                0,
                self.search.decimation,
                cpow,
            );
        }
        scratch
            .coarse
            .peaks_into(self.search.coarse_peaks, 0.0, &mut scratch.peaks);
        let power = out.prepare(grid.azimuths_deg());
        let radius = self.search.refine_radius;
        if 2 * radius + 1 >= n {
            // The refinement window already covers the whole grid.
            kernels::steer(self.use_fma, op, &scratch.lag_f32, 0, 1, power);
            return;
        }
        // The map is assembled in three steps: (1) drop the coarse samples and
        // the exact refinement windows into place, marking every such cell as an
        // *anchor*; (2) linearly interpolate each unanchored run between its two
        // anchored neighbours (wrap-aware). Interpolating after refinement keeps
        // the map continuous at refinement-window edges — pasting exact windows
        // over a pre-built fill leaves step discontinuities there, and each
        // upward step is a phantom local maximum. That matters downstream, where
        // a bounded number of NMS peaks feed the tracker and a phantom bump can
        // crowd a real secondary source out of the peak budget. Interpolation
        // between anchors cannot create an interior local maximum, so no
        // spurious peak can appear in an unrefined region.
        scratch.anchored.resize(n, false);
        scratch.anchored.fill(false);
        let (anchored, lag_f32) = (&mut scratch.anchored, &scratch.lag_f32);
        let cpow = scratch.coarse.power();
        for (&dir, &cp) in self.coarse_dirs.iter().zip(cpow) {
            power[dir as usize] = cp;
            anchored[dir as usize] = true;
        }
        // Refine the surviving neighbourhoods with exact full-resolution scores.
        // Cells already anchored — coarse samples (their decimated steer IS the
        // exact score) and overlap with earlier windows — are skipped, so the
        // total exact steering work is bounded by the grid size no matter how
        // many windows are requested. The block scopes the closure's mutable
        // borrow of the anchor mask; the fill pass below reads it again.
        {
            let mut refine = |center: usize| {
                let count = 2 * radius + 1;
                let lo = (center + n - radius) % n;
                let mut off = 0;
                while off < count {
                    let idx = (lo + off) % n;
                    if anchored[idx] {
                        off += 1;
                        continue;
                    }
                    let mut len = 1;
                    while off + len < count && idx + len < n && !anchored[idx + len] {
                        len += 1;
                    }
                    kernels::steer(
                        self.use_fma,
                        op,
                        lag_f32,
                        idx,
                        1,
                        &mut power[idx..idx + len],
                    );
                    anchored[idx..idx + len].fill(true);
                    off += len;
                }
            };
            for pk in &scratch.peaks {
                refine(self.coarse_dirs[pk.index] as usize);
            }
            // Also refine around the lowest coarse samples: downstream consumers
            // normalize peak salience to the map's dynamic range, and the seeded
            // floor is systematically high — the deep sidelobe nulls of an SRP map
            // are only a few cells wide, so they fall between coarse samples and no
            // interpolation through the coarse grid can reconstruct them. That
            // deflates every secondary peak's salience relative to the exhaustive
            // map. Re-steering a few windows around the lowest (non-adjacent)
            // coarse samples recovers the floor almost exactly at the cost of a
            // small, fixed amount of extra exact work.
            let mut mins: [usize; MIN_REFINE_WINDOWS] = [usize::MAX; MIN_REFINE_WINDOWS];
            for slot in 0..MIN_REFINE_WINDOWS.min(nc) {
                let mut best: Option<usize> = None;
                'candidates: for ci in 0..nc {
                    for &chosen in &mins[..slot] {
                        let d = (ci + nc - chosen) % nc;
                        if d.min(nc - d) <= 1 {
                            continue 'candidates;
                        }
                    }
                    best = match best {
                        Some(b) if cpow[b].total_cmp(&cpow[ci]).is_le() => Some(b),
                        _ => Some(ci),
                    };
                }
                let Some(ci) = best else { break };
                mins[slot] = ci;
                refine(self.coarse_dirs[ci] as usize);
            }
        }
        // Fill: walk the circle anchor to anchor, interpolating each unanchored
        // run between the exact values at its two ends. Every coarse sample is
        // an anchor, so the walk always terminates and each gap is short.
        let start = self.coarse_dirs[0] as usize;
        let mut a = start;
        loop {
            let mut b = (a + 1) % n;
            let mut gap = 1usize;
            while !anchored[b] {
                b = (b + 1) % n;
                gap += 1;
            }
            let (p0, p1) = (power[a], power[b]);
            for s in 1..gap {
                power[(a + s) % n] = p0 + (p1 - p0) * s as f64 / gap as f64;
            }
            a = b;
            if a == start {
                break;
            }
        }
    }

    /// Computes the SRP map through the retained scalar `f64` path — full-band
    /// spectrum rebuild, inverse FFT per pair, `f64` tap reduction over the full
    /// grid. This is the numerics reference the `f32` SIMD pipeline is pinned
    /// against; the hot path is [`SrpPhatFast::compute_map_into`].
    ///
    /// # Errors
    ///
    /// Same as [`SrpPhatFast::compute_map_into`].
    pub fn compute_map_reference_into(
        &self,
        frame: &[&[f64]],
        scratch: &mut SrpScratch,
        out: &mut SrpMap,
    ) -> Result<(), SslError> {
        self.inner.cross_spectra_into(frame, scratch)?;
        self.fill_lag_tables(scratch)?;
        let grid = self.inner.grid();
        let num_pairs = grid.num_pairs();
        let k_taps = 2 * self.interp_half_taps;
        let power = out.prepare(grid.azimuths_deg());
        for (d, p) in power.iter_mut().enumerate() {
            let row = d * num_pairs;
            let mut acc = 0.0;
            for pair_idx in 0..num_pairs {
                let start = self.tap_starts[row + pair_idx] as usize;
                let weights = &self.tap_weights[(row + pair_idx) * k_taps..][..k_taps];
                let taps = &scratch.lag_tables[pair_idx * self.padded_len + start..][..k_taps];
                let mut dot = 0.0;
                for (w, t) in weights.iter().zip(taps) {
                    dot += w * t;
                }
                acc += dot;
            }
            *p = acc;
        }
        Ok(())
    }

    /// Per pair: rebuilds the full-band cross spectrum (zeros outside the band) in
    /// `scratch.spec`, inverse-FFTs once into `scratch.corr`, and gathers the lags
    /// within `±max_lag` into the pair's zero-padded lag table.
    fn fill_lag_tables(&self, scratch: &mut SrpScratch) -> Result<(), SslError> {
        let n = self.config().frame_len;
        let (kmin, _) = self.inner.bin_range();
        let nb = self.inner.num_bins();
        let num_pairs = self.inner.grid().num_pairs();
        Self::ensure_len("corr", scratch.corr.len(), n)?;
        Self::ensure_len(
            "lag_tables",
            scratch.lag_tables.len(),
            num_pairs * self.padded_len,
        )?;
        for pair_idx in 0..num_pairs {
            scratch.spec.fill(Complex::ZERO);
            for idx in 0..nb {
                let c = scratch.cross[pair_idx * nb + idx];
                let k = kmin + idx;
                if 2 * k == n {
                    // The Nyquist bin is its own mirror: force it real so the spectrum
                    // stays conjugate-symmetric and the inverse transform is real.
                    scratch.spec[k] = Complex::new(c.re, 0.0);
                } else {
                    // Maintain conjugate symmetry so the inverse transform is real.
                    scratch.spec[k] = c;
                    scratch.spec[n - k] = c.conj();
                }
            }
            self.inner
                .fft()
                .inverse_real_into(&mut scratch.spec, &mut scratch.corr)?;
            let pad = self.interp_half_taps;
            let table = &mut scratch.lag_tables[pair_idx * self.padded_len..][..self.padded_len];
            for (slot, lag) in (-(self.max_lag as isize)..=self.max_lag as isize).enumerate() {
                let idx = lag.rem_euclid(n as isize) as usize;
                table[pad + slot] = scratch.corr[idx];
            }
        }
        Ok(())
    }

    /// Computes the SRP map for one multichannel frame.
    ///
    /// Allocating convenience wrapper around [`SrpPhatFast::compute_map_into`]; the
    /// hot path should hold a [`SrpScratch`] and an output map and call the `_into`
    /// variant instead.
    ///
    /// # Errors
    ///
    /// Same as [`SrpPhat::compute_map`].
    pub fn compute_map(&self, frame: &[&[f64]]) -> Result<SrpMap, SslError> {
        let mut scratch = self.make_scratch();
        let mut out = SrpMap::default();
        self.compute_map_into(frame, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// Localizes the dominant source in one frame.
    ///
    /// # Errors
    ///
    /// Same as [`SrpPhatFast::compute_map`].
    pub fn localize(&self, frame: &[&[f64]]) -> Result<DoaEstimate, SslError> {
        DoaEstimate::from_map(self.compute_map(frame)?)
            .ok_or_else(|| SslError::invalid_config("map", "empty SRP map has no peak"))
    }
}

/// Computes the normalized windowed-sinc weights for interpolating a lag table
/// (centered at index `max_lag`, `table_len` entries) at fractional lag `lag`.
///
/// Fills `weights` (length `2 × half_taps`) with one weight per tap of the window
/// `(base - half_taps + 1)..=(base + half_taps)` where `base = floor(max_lag + lag)`;
/// taps outside the table get weight zero and are excluded from the normalization,
/// exactly like the reference interpolator. Returns the index of the first tap
/// (which may be negative at the table edges).
fn precompute_taps(
    lag: f64,
    max_lag: usize,
    half_taps: usize,
    table_len: usize,
    weights: &mut [f64],
) -> isize {
    let pos = max_lag as f64 + lag;
    let base = pos.floor() as isize;
    let taps = half_taps as isize;
    let first = base - taps + 1;
    let mut norm = 0.0;
    for (slot, k) in (first..=base + taps).enumerate() {
        weights[slot] = 0.0;
        if k < 0 || k >= table_len as isize {
            continue;
        }
        let t = pos - k as f64;
        let sinc = if t.abs() < 1e-12 {
            1.0
        } else {
            let pt = std::f64::consts::PI * t;
            pt.sin() / pt
        };
        let w = 0.5 + 0.5 * (std::f64::consts::PI * t / taps as f64).cos();
        let coeff = sinc * w.max(0.0);
        weights[slot] = coeff;
        norm += coeff;
    }
    if norm.abs() > 1e-9 {
        for w in weights.iter_mut() {
            *w /= norm;
        }
    }
    first
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::angular_error_deg;
    use crate::srp_phat::test_support::simulate_static_source;

    /// Reference windowed-sinc interpolation of a lag table (centered at index
    /// `max_lag`) at a fractional lag — the pre-precompute hot-loop implementation,
    /// kept to pin the steering operator against.
    fn interpolate_reference(table: &[f64], max_lag: usize, half_taps: usize, lag: f64) -> f64 {
        let pos = max_lag as f64 + lag;
        let base = pos.floor() as isize;
        let taps = half_taps as isize;
        let mut acc = 0.0;
        let mut norm = 0.0;
        for k in (base - taps + 1)..=(base + taps) {
            if k < 0 || k >= table.len() as isize {
                continue;
            }
            let t = pos - k as f64;
            let sinc = if t.abs() < 1e-12 {
                1.0
            } else {
                let pt = std::f64::consts::PI * t;
                pt.sin() / pt
            };
            let w = 0.5 + 0.5 * (std::f64::consts::PI * t / taps as f64).cos();
            let coeff = sinc * w.max(0.0);
            acc += coeff * table[k as usize];
            norm += coeff;
        }
        if norm.abs() > 1e-9 {
            acc / norm
        } else {
            acc
        }
    }

    /// Computes the map the way the pre-precompute implementation did: fill the lag
    /// tables, then interpolate each (direction, pair) on the fly.
    fn compute_map_via_reference_interpolation(fast: &SrpPhatFast, frame: &[&[f64]]) -> SrpMap {
        let mut scratch = fast.make_scratch();
        fast.inner.cross_spectra_into(frame, &mut scratch).unwrap();
        fast.fill_lag_tables(&mut scratch).unwrap();
        let grid = fast.grid();
        let pad = fast.interp_half_taps;
        let table_len = 2 * fast.max_lag + 1;
        let mut power = vec![0.0; grid.num_directions()];
        for (d, p) in power.iter_mut().enumerate() {
            let mut acc = 0.0;
            for pair_idx in 0..grid.num_pairs() {
                let table = &scratch.lag_tables[pair_idx * fast.padded_len + pad..][..table_len];
                acc += interpolate_reference(
                    table,
                    fast.max_lag,
                    fast.interp_half_taps,
                    -grid.tdoa(d, pair_idx),
                );
            }
            *p = acc;
        }
        SrpMap::new(grid.azimuths_deg().to_vec(), power)
    }

    #[test]
    fn fast_map_matches_conventional_map() {
        let fs = 16_000.0;
        let (channels, array) = simulate_static_source(70.0, 18.0, fs, 8192, 6);
        let cfg = SrpConfig::default();
        let conventional = SrpPhat::new(cfg, &array, fs).unwrap();
        let fast = SrpPhatFast::new(cfg, &array, fs).unwrap();
        let frame: Vec<&[f64]> = channels.iter().map(|c| &c[4096..6144]).collect();
        let map_a = conventional.compute_map(&frame).unwrap();
        // compute_map runs the f32 SIMD pipeline — this is the acceptance anchor.
        let map_b = fast.compute_map(&frame).unwrap();
        let corr = map_a.correlation(&map_b);
        assert!(corr >= 0.999, "map correlation {corr}");
        let (_, az_a) = map_a.peak().unwrap();
        let (_, az_b) = map_b.peak().unwrap();
        assert!(
            angular_error_deg(az_a, az_b) <= 4.0,
            "peaks differ: {az_a} vs {az_b}"
        );
    }

    #[test]
    fn simd_path_matches_f64_reference_path() {
        let fs = 16_000.0;
        let (channels, array) = simulate_static_source(-70.0, 16.0, fs, 8192, 6);
        let fast = SrpPhatFast::new(SrpConfig::default(), &array, fs).unwrap();
        let frame: Vec<&[f64]> = channels.iter().map(|c| &c[4096..6144]).collect();
        let simd = fast.compute_map(&frame).unwrap();
        let mut scratch = fast.make_scratch();
        let mut reference = SrpMap::default();
        fast.compute_map_reference_into(&frame, &mut scratch, &mut reference)
            .unwrap();
        let corr = simd.correlation(&reference);
        assert!(corr > 0.9999, "simd/reference correlation {corr}");
        assert_eq!(simd.peak().unwrap().0, reference.peak().unwrap().0);
        let scale = reference
            .power()
            .iter()
            .fold(0.0f64, |m, p| m.max(p.abs()))
            .max(1e-12);
        for (a, b) in simd.power().iter().zip(reference.power()) {
            assert!(
                (a - b).abs() / scale < 1e-4,
                "power mismatch beyond f32 tolerance: {a} vs {b}"
            );
        }
    }

    #[test]
    fn odd_channel_counts_use_the_single_channel_tail() {
        // 5 channels = two paired FFTs + one solo; pin against the f64 path.
        let fs = 16_000.0;
        let (channels, array) = simulate_static_source(20.0, 14.0, fs, 8192, 5);
        let fast = SrpPhatFast::new(SrpConfig::default(), &array, fs).unwrap();
        let frame: Vec<&[f64]> = channels.iter().map(|c| &c[4096..6144]).collect();
        let simd = fast.compute_map(&frame).unwrap();
        let mut scratch = fast.make_scratch();
        let mut reference = SrpMap::default();
        fast.compute_map_reference_into(&frame, &mut scratch, &mut reference)
            .unwrap();
        assert!(simd.correlation(&reference) > 0.9999);
        assert_eq!(simd.peak().unwrap().0, reference.peak().unwrap().0);
    }

    #[test]
    fn hierarchical_search_finds_the_same_peak() {
        let fs = 16_000.0;
        for &truth in &[-135.0, -20.0, 60.0, 170.0] {
            let (channels, array) = simulate_static_source(truth, 18.0, fs, 8192, 6);
            let cfg = SrpConfig::default();
            let exhaustive = SrpPhatFast::new(cfg, &array, fs).unwrap();
            let hier =
                SrpPhatFast::with_search(cfg, SrpSearchConfig::hierarchical(), &array, fs).unwrap();
            let frame: Vec<&[f64]> = channels.iter().map(|c| &c[4096..6144]).collect();
            let full = exhaustive.compute_map(&frame).unwrap();
            let fast = hier.compute_map(&frame).unwrap();
            // Full-resolution shape, identical grid.
            assert_eq!(fast.len(), full.len());
            assert_eq!(fast.azimuths_deg(), full.azimuths_deg());
            // The global peak is refined, so it matches the exhaustive map exactly.
            let (di_full, az_full) = full.peak().unwrap();
            let (di_fast, az_fast) = fast.peak().unwrap();
            assert_eq!(di_full, di_fast, "azimuth {truth}: {az_full} vs {az_fast}");
            assert!((fast.power()[di_fast] - full.power()[di_full]).abs() < 1e-9);
            assert!(fast.power().iter().all(|p| p.is_finite()));
        }
    }

    #[test]
    fn search_config_validation_rejects_degenerate_settings() {
        let fs = 16_000.0;
        let array = ispot_roadsim::microphone::MicrophoneArray::circular(
            4,
            0.2,
            ispot_roadsim::geometry::Position::new(0.0, 0.0, 1.0),
        );
        let cfg = SrpConfig::default();
        for bad in [
            SrpSearchConfig {
                decimation: 0,
                ..SrpSearchConfig::hierarchical()
            },
            SrpSearchConfig {
                decimation: 64,
                refine_radius: 64,
                ..SrpSearchConfig::hierarchical()
            },
            SrpSearchConfig {
                coarse_peaks: 0,
                ..SrpSearchConfig::hierarchical()
            },
            SrpSearchConfig {
                decimation: 4,
                refine_radius: 2,
                ..SrpSearchConfig::hierarchical()
            },
        ] {
            assert!(
                matches!(
                    SrpPhatFast::with_search(cfg, bad, &array, fs),
                    Err(SslError::InvalidConfig { .. })
                ),
                "accepted {bad:?}"
            );
        }
        // Exhaustive ignores the other knobs entirely.
        let weird_but_exhaustive = SrpSearchConfig {
            decimation: 1,
            coarse_peaks: 0,
            refine_radius: 0,
        };
        assert!(SrpPhatFast::with_search(cfg, weird_but_exhaustive, &array, fs).is_ok());
        assert_eq!(
            SrpPhatFast::new(cfg, &array, fs).unwrap().search(),
            SrpSearchConfig::exhaustive()
        );
    }

    #[test]
    fn precomputed_taps_match_reference_interpolation() {
        let fs = 16_000.0;
        let (channels, array) = simulate_static_source(-30.0, 15.0, fs, 8192, 6);
        let fast = SrpPhatFast::new(SrpConfig::default(), &array, fs).unwrap();
        let frame: Vec<&[f64]> = channels.iter().map(|c| &c[4096..6144]).collect();
        // The f64 reference path uses the same taps without f32 rounding, so the
        // elementwise pin stays at 1e-9.
        let mut scratch = fast.make_scratch();
        let mut tap_map = SrpMap::default();
        fast.compute_map_reference_into(&frame, &mut scratch, &mut tap_map)
            .unwrap();
        let ref_map = compute_map_via_reference_interpolation(&fast, &frame);
        let corr = tap_map.correlation(&ref_map);
        assert!(corr > 0.999, "tap/reference correlation {corr}");
        for (a, b) in tap_map.power().iter().zip(ref_map.power()) {
            assert!((a - b).abs() < 1e-9, "power mismatch: {a} vs {b}");
        }
    }

    #[test]
    fn compute_map_into_reuses_scratch_and_matches() {
        let fs = 16_000.0;
        let (channels, array) = simulate_static_source(10.0, 20.0, fs, 8192, 4);
        let fast = SrpPhatFast::new(SrpConfig::default(), &array, fs).unwrap();
        let frame: Vec<&[f64]> = channels.iter().map(|c| &c[4096..6144]).collect();
        let expected = fast.compute_map(&frame).unwrap();
        let mut scratch = fast.make_scratch();
        let mut out = SrpMap::default();
        for _ in 0..3 {
            fast.compute_map_into(&frame, &mut scratch, &mut out)
                .unwrap();
            assert_eq!(out, expected);
        }
    }

    #[test]
    fn undersized_scratch_is_a_typed_error_not_a_resize() {
        let fs = 16_000.0;
        let (channels, array) = simulate_static_source(10.0, 20.0, fs, 8192, 4);
        let fast = SrpPhatFast::new(SrpConfig::default(), &array, fs).unwrap();
        let frame: Vec<&[f64]> = channels.iter().map(|c| &c[4096..6144]).collect();
        let mut out = SrpMap::default();
        // An empty scratch is rejected by the hot path...
        let mut empty = SrpScratch::new();
        assert!(matches!(
            fast.compute_map_into(&frame, &mut empty, &mut out),
            Err(SslError::ScratchSize { .. })
        ));
        // ...and by the f64 reference path's lag-table stage.
        let mut truncated = fast.make_scratch();
        truncated.corr.pop();
        let err = fast
            .compute_map_reference_into(&frame, &mut truncated, &mut out)
            .unwrap_err();
        assert!(
            matches!(err, SslError::ScratchSize { buffer: "corr", .. }),
            "unexpected error {err}"
        );
        // One buffer of the wrong length is named in the error.
        let mut bad = fast.make_scratch();
        bad.lag_f32.push(0.0);
        let err = fast
            .compute_map_into(&frame, &mut bad, &mut out)
            .unwrap_err();
        assert!(matches!(
            err,
            SslError::ScratchSize {
                buffer: "lag_f32",
                ..
            }
        ));
    }

    #[test]
    fn nyquist_band_edge_keeps_the_spectrum_real_symmetric() {
        // Regression: with freq_max_hz == fs/2 the k == n/2 bin used to be copied
        // complex-valued without the conjugate-symmetry guard applying, feeding
        // inverse_real a non-real-symmetric spectrum. The f32 synthesis tables
        // must apply the same 1/N Nyquist scale.
        let fs = 16_000.0;
        let (channels, array) = simulate_static_source(50.0, 18.0, fs, 8192, 6);
        let cfg = SrpConfig {
            freq_max_hz: fs / 2.0,
            ..SrpConfig::default()
        };
        let conventional = SrpPhat::new(cfg, &array, fs).unwrap();
        let fast = SrpPhatFast::new(cfg, &array, fs).unwrap();
        let (_, kmax) = conventional.bin_range();
        assert_eq!(2 * kmax, cfg.frame_len, "config must hit the Nyquist bin");
        let frame: Vec<&[f64]> = channels.iter().map(|c| &c[4096..6144]).collect();
        let map_a = conventional.compute_map(&frame).unwrap();
        let map_b = fast.compute_map(&frame).unwrap();
        assert!(map_b.power().iter().all(|p| p.is_finite()));
        let corr = map_a.correlation(&map_b);
        assert!(corr > 0.9, "map correlation {corr}");
        assert!(angular_error_deg(map_a.peak().unwrap().1, map_b.peak().unwrap().1) <= 4.0);
        // And the SIMD path still agrees with the f64 reference at the band edge.
        let mut scratch = fast.make_scratch();
        let mut reference = SrpMap::default();
        fast.compute_map_reference_into(&frame, &mut scratch, &mut reference)
            .unwrap();
        assert!(map_b.correlation(&reference) > 0.9999);
    }

    #[test]
    fn fast_localization_is_accurate() {
        let fs = 16_000.0;
        for &truth in &[-45.0, 10.0, 135.0] {
            let (channels, array) = simulate_static_source(truth, 20.0, fs, 8192, 6);
            let fast = SrpPhatFast::new(SrpConfig::default(), &array, fs).unwrap();
            let frame: Vec<&[f64]> = channels.iter().map(|c| &c[4096..6144]).collect();
            let est = fast.localize(&frame).unwrap();
            let err = angular_error_deg(est.azimuth_deg(), truth);
            assert!(err < 8.0, "azimuth {truth}: error {err}");
        }
    }

    #[test]
    fn shared_processor_serves_concurrent_streams() {
        // The engine/session API in ispot-core shares one processor across many
        // streams behind an `Arc`; the processor must therefore be immutable in
        // its compute path (`&self`), `Send + Sync`, and safe to drive from
        // several threads each holding its own scratch.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SrpPhatFast>();
        assert_send_sync::<SrpPhat>();

        let fs = 16_000.0;
        let (channels, array) = simulate_static_source(40.0, 15.0, fs, 8192, 4);
        let fast = std::sync::Arc::new(SrpPhatFast::new(SrpConfig::default(), &array, fs).unwrap());
        let frame: Vec<&[f64]> = channels.iter().map(|c| &c[4096..6144]).collect();
        let expected = fast.compute_map(&frame).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let fast = std::sync::Arc::clone(&fast);
                let frame = frame.clone();
                scope.spawn(move || {
                    let mut scratch = fast.make_scratch();
                    let mut out = SrpMap::default();
                    for _ in 0..2 {
                        fast.compute_map_into(&frame, &mut scratch, &mut out)
                            .unwrap();
                    }
                    out
                });
            }
        });
        assert_eq!(fast.compute_map(&frame).unwrap(), expected);
    }

    #[test]
    fn coefficient_reduction_is_at_least_half() {
        let fs = 16_000.0;
        let array = ispot_roadsim::microphone::MicrophoneArray::circular(
            6,
            0.2,
            ispot_roadsim::geometry::Position::new(0.0, 0.0, 1.0),
        );
        let cfg = SrpConfig::default();
        let conventional = SrpPhat::new(cfg, &array, fs).unwrap();
        let fast = SrpPhatFast::new(cfg, &array, fs).unwrap();
        assert!(fast.coefficients_per_pair() < conventional.coefficients_per_pair());
        assert!(
            fast.coefficient_reduction() >= 0.5,
            "reduction {}",
            fast.coefficient_reduction()
        );
    }

    #[test]
    fn max_lag_covers_the_array_aperture() {
        let fs = 16_000.0;
        let array = ispot_roadsim::microphone::MicrophoneArray::circular(
            8,
            0.25,
            ispot_roadsim::geometry::Position::new(0.0, 0.0, 1.0),
        );
        let fast = SrpPhatFast::new(SrpConfig::default(), &array, fs).unwrap();
        let aperture_samples = 0.5 / 343.0 * fs;
        assert!(fast.max_lag() as f64 >= aperture_samples);
        assert!(fast.max_lag() as f64 <= aperture_samples + 4.0);
    }

    #[test]
    fn validation_is_shared_with_the_conventional_processor() {
        let array = ispot_roadsim::microphone::MicrophoneArray::circular(
            4,
            0.2,
            ispot_roadsim::geometry::Position::new(0.0, 0.0, 1.0),
        );
        let bad = SrpConfig {
            freq_max_hz: 20_000.0,
            ..SrpConfig::default()
        };
        assert!(SrpPhatFast::new(bad, &array, 16_000.0).is_err());
        let fast = SrpPhatFast::new(SrpConfig::default(), &array, 16_000.0).unwrap();
        let ch = vec![0.0; 2048];
        let frame: Vec<&[f64]> = vec![&ch, &ch];
        assert!(matches!(
            fast.compute_map(&frame),
            Err(SslError::ChannelMismatch { .. })
        ));
    }
}
