//! # ispot-ssl
//!
//! Sound source localization for automotive acoustic perception.
//!
//! This crate implements the localization stack evaluated in Sec. IV-B of the I-SPOT
//! paper:
//!
//! * a far-field steering model over an azimuth grid ([`steering`]);
//! * the **conventional SRP-PHAT** power map, computed by frequency-domain steering of
//!   PHAT-weighted cross-power spectra ([`srp_phat::SrpPhat`]) — the "hardware-
//!   unfriendly beamforming computation" the paper refers to;
//! * the **low-complexity SRP-PHAT** ([`srp_fast::SrpPhatFast`]) that samples each
//!   cross-correlation at integer lags (Nyquist-rate sampling of the bandlimited GCC,
//!   after Dietzen et al.) and steers through windowed-sinc interpolation taps
//!   precomputed at construction — mathematically equivalent up to
//!   bandlimited-interpolation error, with roughly 10× lower latency and half the
//!   stored coefficients. Both processors expose `compute_map_into` entry points
//!   that reuse a [`srp_phat::SrpScratch`] and an output map, so the per-frame hot
//!   path performs no heap allocation;
//! * a Cross3D-style CNN back-end operating on stacked SRP maps ([`cross3d`]);
//! * a constant-velocity Kalman tracker for the azimuth trajectory ([`tracking`]);
//! * a **multi-target tracker** ([`multitrack`]) that turns the per-frame peak
//!   list of an SRP map ([`srp_phat::SrpMap::peaks_into`]) into stable-identity
//!   tracks by gated nearest-neighbour association, with an M-of-N confirmation
//!   and coasting lifecycle — the per-vehicle view multi-source road scenes need;
//! * angular-error metrics, including multi-source OSPA and track-identity
//!   scoring ([`metrics`]).
//!
//! # Example
//!
//! ```
//! use ispot_ssl::prelude::*;
//! use ispot_roadsim::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let fs = 16_000.0;
//! // Simulate a static siren at 60 degrees azimuth, 20 m away.
//! let signal: Vec<f64> = ispot_dsp::generator::NoiseSource::new(
//!     ispot_dsp::generator::NoiseKind::White, 7).take(8192).collect();
//! let az = 60.0_f64.to_radians();
//! let source_pos = Position::new(20.0 * az.cos(), 20.0 * az.sin(), 1.0);
//! let array = MicrophoneArray::circular(6, 0.2, Position::new(0.0, 0.0, 1.0));
//! let scene = SceneBuilder::new(fs)
//!     .source(SoundSource::new(signal, Trajectory::fixed(source_pos)))
//!     .array(array.clone())
//!     .reflection(false)
//!     .air_absorption(false)
//!     .build()?;
//! let audio = Simulator::new(scene)?.run()?;
//! let srp = SrpPhat::new(SrpConfig::default(), &array, fs)?;
//! let frame: Vec<&[f64]> = audio.channels().iter().map(|c| &c[4096..6144]).collect();
//! let estimate = srp.localize(&frame)?;
//! let error = ispot_ssl::metrics::angular_error_deg(estimate.azimuth_deg(), 60.0);
//! assert!(error < 10.0, "azimuth error {error}");
//! # Ok(())
//! # }
//! ```

#![deny(unsafe_op_in_unsafe_fn)]

pub mod cross3d;
pub mod error;
pub mod metrics;
pub mod multitrack;
pub mod seld;
pub mod srp_fast;
mod srp_kernels;
pub mod srp_phat;
pub mod steering;
pub mod tracking;

pub use error::SslError;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::cross3d::{Cross3dConfig, Cross3dNet};
    pub use crate::error::SslError;
    pub use crate::metrics::{angular_error_deg, mean_angular_error_deg};
    pub use crate::multitrack::{
        MultiTargetTracker, TrackId, TrackSnapshot, TrackStatus, TrackingConfig,
    };
    pub use crate::seld::{score_seld, SeldAnnotation, SeldScores};
    pub use crate::srp_fast::{SrpPhatFast, SrpSearchConfig};
    pub use crate::srp_phat::{DoaEstimate, Peak, SrpConfig, SrpMap, SrpPhat, SrpScratch};
    pub use crate::steering::SteeringGrid;
    pub use crate::tracking::AzimuthKalmanTracker;
}
