//! Angular error metrics for DOA estimation.

/// Absolute angular difference in degrees between two azimuths, accounting for
/// wrap-around (result in `[0, 180]`).
///
/// # Example
///
/// ```
/// use ispot_ssl::metrics::angular_error_deg;
/// assert_eq!(angular_error_deg(170.0, -170.0), 20.0);
/// assert_eq!(angular_error_deg(10.0, 30.0), 20.0);
/// ```
pub fn angular_error_deg(a_deg: f64, b_deg: f64) -> f64 {
    let mut d = (a_deg - b_deg) % 360.0;
    if d > 180.0 {
        d -= 360.0;
    }
    if d < -180.0 {
        d += 360.0;
    }
    d.abs()
}

/// Mean absolute angular error over paired estimates and ground truths (degrees).
/// Returns 0 for empty input.
pub fn mean_angular_error_deg(estimates_deg: &[f64], truths_deg: &[f64]) -> f64 {
    if estimates_deg.is_empty() || estimates_deg.len() != truths_deg.len() {
        return 0.0;
    }
    estimates_deg
        .iter()
        .zip(truths_deg)
        .map(|(&a, &b)| angular_error_deg(a, b))
        .sum::<f64>()
        / estimates_deg.len() as f64
}

/// Angular error (degrees) of one estimate against the **nearest** of several
/// ground-truth bearings, or `None` if no truths are active (non-finite
/// estimates or truths are skipped rather than scored).
///
/// This is the standard multi-source association rule: with several simultaneously
/// active sources a localizer is scored against whichever one it locked onto.
///
/// # Example
///
/// ```
/// use ispot_ssl::metrics::nearest_truth_error_deg;
/// assert_eq!(nearest_truth_error_deg(10.0, &[50.0, 15.0, -120.0]), Some(5.0));
/// assert_eq!(nearest_truth_error_deg(10.0, &[]), None);
/// assert_eq!(nearest_truth_error_deg(f64::NAN, &[50.0]), None);
/// ```
pub fn nearest_truth_error_deg(estimate_deg: f64, truths_deg: &[f64]) -> Option<f64> {
    truths_deg
        .iter()
        .map(|&t| angular_error_deg(estimate_deg, t))
        .filter(|e| e.is_finite())
        .min_by(f64::total_cmp)
}

/// Accumulates nearest-truth DoA errors over the events of a multi-source scene.
///
/// Feed every localized event together with the bearings of the sources active at
/// that moment (from the scene's ground-truth trajectories); read back the mean
/// error and the fraction within a tolerance.
///
/// # Example
///
/// ```
/// use ispot_ssl::metrics::MultiSourceDoaScore;
///
/// let mut score = MultiSourceDoaScore::new();
/// score.add(42.0, &[40.0, -90.0]); // 2 deg off the nearer source
/// score.add(0.0, &[]);             // no active source: not scored
/// score.add(-88.0, &[40.0, -90.0]);
/// assert_eq!(score.count(), 2);
/// assert_eq!(score.mean_error_deg(), Some(2.0));
/// assert_eq!(score.fraction_within(3.0), 1.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MultiSourceDoaScore {
    errors_deg: Vec<f64>,
}

impl MultiSourceDoaScore {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Scores one estimate against the currently active ground-truth bearings.
    /// Returns the nearest-truth error, or `None` (and accumulates nothing) when no
    /// truth is active.
    pub fn add(&mut self, estimate_deg: f64, truths_deg: &[f64]) -> Option<f64> {
        let err = nearest_truth_error_deg(estimate_deg, truths_deg)?;
        self.errors_deg.push(err);
        Some(err)
    }

    /// Number of scored estimates.
    pub fn count(&self) -> usize {
        self.errors_deg.len()
    }

    /// Mean nearest-truth error in degrees, or `None` if nothing was scored.
    pub fn mean_error_deg(&self) -> Option<f64> {
        if self.errors_deg.is_empty() {
            None
        } else {
            Some(self.errors_deg.iter().sum::<f64>() / self.errors_deg.len() as f64)
        }
    }

    /// Fraction of scored estimates within `tolerance_deg` of their nearest truth
    /// (0.0 when nothing was scored).
    pub fn fraction_within(&self, tolerance_deg: f64) -> f64 {
        if self.errors_deg.is_empty() {
            return 0.0;
        }
        let hits = self
            .errors_deg
            .iter()
            .filter(|&&e| e <= tolerance_deg)
            .count();
        hits as f64 / self.errors_deg.len() as f64
    }
}

/// Fraction of estimates within `tolerance_deg` of the ground truth.
pub fn accuracy_within(estimates_deg: &[f64], truths_deg: &[f64], tolerance_deg: f64) -> f64 {
    if estimates_deg.is_empty() || estimates_deg.len() != truths_deg.len() {
        return 0.0;
    }
    let hits = estimates_deg
        .iter()
        .zip(truths_deg)
        .filter(|(&a, &b)| angular_error_deg(a, b) <= tolerance_deg)
        .count();
    hits as f64 / estimates_deg.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraparound_cases() {
        assert_eq!(angular_error_deg(0.0, 0.0), 0.0);
        assert_eq!(angular_error_deg(-180.0, 180.0), 0.0);
        assert_eq!(angular_error_deg(179.0, -179.0), 2.0);
        assert_eq!(angular_error_deg(90.0, -90.0), 180.0);
        assert_eq!(angular_error_deg(350.0, 10.0), 20.0);
    }

    #[test]
    fn nearest_truth_handles_wraparound_empty_and_non_finite() {
        assert_eq!(nearest_truth_error_deg(179.0, &[-179.0, 0.0]), Some(2.0));
        assert_eq!(nearest_truth_error_deg(0.0, &[]), None);
        // Non-finite inputs are skipped, never a panic or a NaN score.
        assert_eq!(nearest_truth_error_deg(f64::NAN, &[10.0, 20.0]), None);
        assert_eq!(nearest_truth_error_deg(10.0, &[f64::NAN, 13.0]), Some(3.0));
        assert_eq!(nearest_truth_error_deg(10.0, &[f64::INFINITY]), None);
    }

    #[test]
    fn multi_source_score_accumulates_only_active_truths() {
        let mut score = MultiSourceDoaScore::new();
        assert_eq!(score.mean_error_deg(), None);
        assert_eq!(score.fraction_within(5.0), 0.0);
        assert_eq!(score.add(10.0, &[13.0, 100.0]), Some(3.0));
        assert_eq!(score.add(50.0, &[]), None);
        assert_eq!(score.add(-170.0, &[171.0]), Some(19.0));
        assert_eq!(score.count(), 2);
        assert!((score.mean_error_deg().unwrap() - 11.0).abs() < 1e-12);
        assert_eq!(score.fraction_within(5.0), 0.5);
    }

    #[test]
    fn mean_error_and_accuracy() {
        let est = [10.0, 20.0, 30.0];
        let truth = [12.0, 20.0, 40.0];
        assert!((mean_angular_error_deg(&est, &truth) - 4.0).abs() < 1e-12);
        assert!((accuracy_within(&est, &truth, 5.0) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(mean_angular_error_deg(&[], &[]), 0.0);
        assert_eq!(accuracy_within(&[1.0], &[], 5.0), 0.0);
    }
}
