//! Angular error metrics for DOA estimation.

/// Absolute angular difference in degrees between two azimuths, accounting for
/// wrap-around (result in `[0, 180]`).
///
/// # Example
///
/// ```
/// use ispot_ssl::metrics::angular_error_deg;
/// assert_eq!(angular_error_deg(170.0, -170.0), 20.0);
/// assert_eq!(angular_error_deg(10.0, 30.0), 20.0);
/// ```
pub fn angular_error_deg(a_deg: f64, b_deg: f64) -> f64 {
    let mut d = (a_deg - b_deg) % 360.0;
    if d > 180.0 {
        d -= 360.0;
    }
    if d < -180.0 {
        d += 360.0;
    }
    d.abs()
}

/// Mean absolute angular error over paired estimates and ground truths (degrees).
/// Returns 0 for empty input.
pub fn mean_angular_error_deg(estimates_deg: &[f64], truths_deg: &[f64]) -> f64 {
    if estimates_deg.is_empty() || estimates_deg.len() != truths_deg.len() {
        return 0.0;
    }
    estimates_deg
        .iter()
        .zip(truths_deg)
        .map(|(&a, &b)| angular_error_deg(a, b))
        .sum::<f64>()
        / estimates_deg.len() as f64
}

/// Fraction of estimates within `tolerance_deg` of the ground truth.
pub fn accuracy_within(estimates_deg: &[f64], truths_deg: &[f64], tolerance_deg: f64) -> f64 {
    if estimates_deg.is_empty() || estimates_deg.len() != truths_deg.len() {
        return 0.0;
    }
    let hits = estimates_deg
        .iter()
        .zip(truths_deg)
        .filter(|(&a, &b)| angular_error_deg(a, b) <= tolerance_deg)
        .count();
    hits as f64 / estimates_deg.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraparound_cases() {
        assert_eq!(angular_error_deg(0.0, 0.0), 0.0);
        assert_eq!(angular_error_deg(-180.0, 180.0), 0.0);
        assert_eq!(angular_error_deg(179.0, -179.0), 2.0);
        assert_eq!(angular_error_deg(90.0, -90.0), 180.0);
        assert_eq!(angular_error_deg(350.0, 10.0), 20.0);
    }

    #[test]
    fn mean_error_and_accuracy() {
        let est = [10.0, 20.0, 30.0];
        let truth = [12.0, 20.0, 40.0];
        assert!((mean_angular_error_deg(&est, &truth) - 4.0).abs() < 1e-12);
        assert!((accuracy_within(&est, &truth, 5.0) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(mean_angular_error_deg(&[], &[]), 0.0);
        assert_eq!(accuracy_within(&[1.0], &[], 5.0), 0.0);
    }
}
