//! Angular error metrics for DOA estimation, including multi-source set metrics
//! (OSPA) and track-identity scoring for the multi-target tracker.

use crate::multitrack::TrackId;
use std::collections::BTreeMap;

/// Absolute angular difference in degrees between two azimuths, accounting for
/// wrap-around (result in `[0, 180]`).
///
/// # Example
///
/// ```
/// use ispot_ssl::metrics::angular_error_deg;
/// assert_eq!(angular_error_deg(170.0, -170.0), 20.0);
/// assert_eq!(angular_error_deg(10.0, 30.0), 20.0);
/// ```
pub fn angular_error_deg(a_deg: f64, b_deg: f64) -> f64 {
    let mut d = (a_deg - b_deg) % 360.0;
    if d > 180.0 {
        d -= 360.0;
    }
    if d < -180.0 {
        d += 360.0;
    }
    d.abs()
}

/// Mean absolute angular error over paired estimates and ground truths (degrees).
/// Returns 0 for empty input.
pub fn mean_angular_error_deg(estimates_deg: &[f64], truths_deg: &[f64]) -> f64 {
    if estimates_deg.is_empty() || estimates_deg.len() != truths_deg.len() {
        return 0.0;
    }
    estimates_deg
        .iter()
        .zip(truths_deg)
        .map(|(&a, &b)| angular_error_deg(a, b))
        .sum::<f64>()
        / estimates_deg.len() as f64
}

/// Angular error (degrees) of one estimate against the **nearest** of several
/// ground-truth bearings, or `None` if no truths are active (non-finite
/// estimates or truths are skipped rather than scored).
///
/// This is the standard multi-source association rule: with several simultaneously
/// active sources a localizer is scored against whichever one it locked onto.
///
/// # Example
///
/// ```
/// use ispot_ssl::metrics::nearest_truth_error_deg;
/// assert_eq!(nearest_truth_error_deg(10.0, &[50.0, 15.0, -120.0]), Some(5.0));
/// assert_eq!(nearest_truth_error_deg(10.0, &[]), None);
/// assert_eq!(nearest_truth_error_deg(f64::NAN, &[50.0]), None);
/// ```
pub fn nearest_truth_error_deg(estimate_deg: f64, truths_deg: &[f64]) -> Option<f64> {
    truths_deg
        .iter()
        .map(|&t| angular_error_deg(estimate_deg, t))
        .filter(|e| e.is_finite())
        .min_by(f64::total_cmp)
}

/// Accumulates nearest-truth DoA errors over the events of a multi-source scene.
///
/// Feed every localized event together with the bearings of the sources active at
/// that moment (from the scene's ground-truth trajectories); read back the mean
/// error and the fraction within a tolerance.
///
/// # Example
///
/// ```
/// use ispot_ssl::metrics::MultiSourceDoaScore;
///
/// let mut score = MultiSourceDoaScore::new();
/// score.add(42.0, &[40.0, -90.0]); // 2 deg off the nearer source
/// score.add(0.0, &[]);             // no active source: not scored
/// score.add(-88.0, &[40.0, -90.0]);
/// assert_eq!(score.count(), 2);
/// assert_eq!(score.mean_error_deg(), Some(2.0));
/// assert_eq!(score.fraction_within(3.0), 1.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MultiSourceDoaScore {
    errors_deg: Vec<f64>,
}

impl MultiSourceDoaScore {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Scores one estimate against the currently active ground-truth bearings.
    /// Returns the nearest-truth error, or `None` (and accumulates nothing) when no
    /// truth is active.
    pub fn add(&mut self, estimate_deg: f64, truths_deg: &[f64]) -> Option<f64> {
        let err = nearest_truth_error_deg(estimate_deg, truths_deg)?;
        self.errors_deg.push(err);
        Some(err)
    }

    /// Number of scored estimates.
    pub fn count(&self) -> usize {
        self.errors_deg.len()
    }

    /// Mean nearest-truth error in degrees, or `None` if nothing was scored.
    pub fn mean_error_deg(&self) -> Option<f64> {
        if self.errors_deg.is_empty() {
            None
        } else {
            Some(self.errors_deg.iter().sum::<f64>() / self.errors_deg.len() as f64)
        }
    }

    /// Fraction of scored estimates within `tolerance_deg` of their nearest truth
    /// (0.0 when nothing was scored).
    pub fn fraction_within(&self, tolerance_deg: f64) -> f64 {
        if self.errors_deg.is_empty() {
            return 0.0;
        }
        let hits = self
            .errors_deg
            .iter()
            .filter(|&&e| e <= tolerance_deg)
            .count();
        hits as f64 / self.errors_deg.len() as f64
    }
}

/// OSPA (Optimal SubPattern Assignment) error between a set of bearing
/// estimates and a set of ground-truth bearings, in degrees (order `p = 1`).
///
/// This is the standard multi-target metric that charges **both** localization
/// error and cardinality error in one number: per-bearing angular errors are
/// clamped at `cutoff_deg`, the estimate↔truth pairing is chosen **optimally**
/// (not greedily), every missing or spurious bearing costs the full cutoff, and
/// the total is normalized by the larger set size:
///
/// ```text
/// OSPA = ( min over assignments Σ min(cutoff, err) + cutoff · |m − n| ) / max(m, n)
/// ```
///
/// Two empty sets score 0. Non-finite bearings are dropped before scoring.
///
/// # Example
///
/// ```
/// use ispot_ssl::metrics::ospa_deg;
/// // Perfect two-source estimate, any order.
/// assert_eq!(ospa_deg(&[-120.0, 40.0], &[40.0, -120.0], 30.0), 0.0);
/// // One source missed entirely: half the mass pays the cutoff.
/// assert_eq!(ospa_deg(&[40.0], &[40.0, -120.0], 30.0), 15.0);
/// ```
pub fn ospa_deg(estimates_deg: &[f64], truths_deg: &[f64], cutoff_deg: f64) -> f64 {
    let est: Vec<f64> = estimates_deg
        .iter()
        .copied()
        .filter(|e| e.is_finite())
        .collect();
    let truth: Vec<f64> = truths_deg
        .iter()
        .copied()
        .filter(|t| t.is_finite())
        .collect();
    let (small, large) = if est.len() <= truth.len() {
        (&est, &truth)
    } else {
        (&truth, &est)
    };
    if large.is_empty() {
        return 0.0;
    }
    let assignment = min_assignment_cost(small, large, cutoff_deg, &mut vec![false; large.len()]);
    (assignment + cutoff_deg * (large.len() - small.len()) as f64) / large.len() as f64
}

/// Minimum total clamped angular cost of assigning every element of `small` to
/// a distinct element of `large`, by exhaustive search (set sizes here are the
/// handful of sources in a road scene, so the factorial search is cheap).
fn min_assignment_cost(small: &[f64], large: &[f64], cutoff: f64, used: &mut [bool]) -> f64 {
    let Some((&first, rest)) = small.split_first() else {
        return 0.0;
    };
    let mut best = f64::INFINITY;
    for j in 0..large.len() {
        if used[j] {
            continue;
        }
        used[j] = true;
        let cost = angular_error_deg(first, large[j]).min(cutoff)
            + min_assignment_cost(rest, large, cutoff, used);
        used[j] = false;
        best = best.min(cost);
    }
    best
}

/// Identity-aware scoring of multi-target tracks against ground-truth sources:
/// per-track truth assignment, identity-swap counting and per-track bearing
/// error.
///
/// Feed every scored frame's confirmed track snapshots together with the
/// bearings of the simultaneously active ground-truth sources
/// ([`TrackIdentityScore::observe_frame`]). Tracks are paired with truths by
/// **optimal 1:1 assignment** (minimum total angular error) rather than
/// independent nearest-truth, so two tracks cannot both be credited to the same
/// source; a small hysteresis bonus keeps each track on its previous truth
/// unless the alternative is clearly closer, which prevents phantom swaps when
/// two truth bearings cross. A track whose assigned truth changes between
/// frames has **swapped identity** — the failure mode a plain nearest-truth
/// metric is blind to.
///
/// # Example
///
/// ```
/// use ispot_ssl::metrics::TrackIdentityScore;
/// use ispot_ssl::multitrack::TrackId;
///
/// let mut score = TrackIdentityScore::new();
/// let id = TrackId::default();
/// score.observe_frame(&[(id, 41.0)], &[40.0, -120.0]);
/// score.observe_frame(&[(id, 44.0)], &[45.0, -120.0]);
/// assert_eq!(score.swap_count(), 0);
/// assert_eq!(score.num_tracks(), 1);
/// assert!(score.mean_error_deg().unwrap() < 1.5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TrackIdentityScore {
    /// Hysteresis bonus (degrees) for keeping a track's previous assignment.
    hysteresis_deg: f64,
    /// Current truth assignment of each track.
    assigned: BTreeMap<TrackId, usize>,
    /// Per-track accumulated (error sum, observation count).
    errors: BTreeMap<TrackId, (f64, usize)>,
    swaps: usize,
}

/// Cost charged when a frame has more tracks than truths and a track must stay
/// unassigned — far above any angular error, so skips only happen when forced.
const UNASSIGNED_COST: f64 = 1e9;

impl TrackIdentityScore {
    /// Creates an empty accumulator with no assignment hysteresis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty accumulator whose assignment prefers each track's
    /// previous truth unless an alternative is closer by more than
    /// `hysteresis_deg` degrees.
    pub fn with_hysteresis(hysteresis_deg: f64) -> Self {
        TrackIdentityScore {
            hysteresis_deg: hysteresis_deg.max(0.0),
            ..Self::default()
        }
    }

    /// Scores one frame: optimally assigns the given `(track, azimuth)` pairs
    /// to the active truth bearings and accumulates per-track errors and
    /// identity swaps. Non-finite bearings are dropped; frames with no track or
    /// no truth record nothing. Tracks beyond the truth count stay unassigned
    /// for the frame (their error is not scored).
    ///
    /// `truths_deg` must list every source at a **stable position** across
    /// frames — assignments (and therefore swap counting) are keyed by that
    /// position. Mark a momentarily inactive source with `f64::NAN` instead of
    /// dropping it from the list, or the indices of the remaining sources
    /// would shift and register as phantom swaps.
    pub fn observe_frame(&mut self, tracks: &[(TrackId, f64)], truths_deg: &[f64]) {
        let tracks: Vec<(TrackId, f64)> = tracks
            .iter()
            .copied()
            .filter(|(_, a)| a.is_finite())
            .collect();
        // Keep each finite truth together with its position in the CALLER's
        // list: standing assignments are keyed by that position, which must
        // stay stable across frames — a caller whose truth set changes over
        // time passes NaN for momentarily inactive sources (not a shorter
        // list), so truth #1 is the same vehicle in every frame.
        let truths: Vec<(usize, f64)> = truths_deg
            .iter()
            .copied()
            .enumerate()
            .filter(|(_, t)| t.is_finite())
            .collect();
        if tracks.is_empty() || truths.is_empty() {
            return;
        }
        // Effective cost of pairing track i with truth j: the angular error,
        // plus the hysteresis penalty for abandoning the track's standing
        // assignment. (Penalizing every non-matching pair is equivalent to a
        // bonus on the matching one, and keeps all costs non-negative so the
        // branch-and-bound pruning below stays sound.)
        let cost = |i: usize, j: usize| -> f64 {
            let err = angular_error_deg(tracks[i].1, truths[j].1);
            match self.assigned.get(&tracks[i].0) {
                Some(&prev) if prev != truths[j].0 => err + self.hysteresis_deg,
                _ => err,
            }
        };
        let mut used = vec![false; truths.len()];
        let mut best_assignment = vec![None; tracks.len()];
        let mut current = vec![None; tracks.len()];
        let mut best_cost = f64::INFINITY;
        assign_recursive(
            0,
            &tracks,
            &truths,
            &cost,
            &mut used,
            &mut current,
            0.0,
            &mut best_cost,
            &mut best_assignment,
        );
        for (i, assignment) in best_assignment.iter().enumerate() {
            let Some(j) = *assignment else { continue };
            let id = tracks[i].0;
            let (truth_idx, truth_deg) = truths[j];
            if let Some(&prev) = self.assigned.get(&id) {
                if prev != truth_idx {
                    self.swaps += 1;
                }
            }
            self.assigned.insert(id, truth_idx);
            let entry = self.errors.entry(id).or_insert((0.0, 0));
            entry.0 += angular_error_deg(tracks[i].1, truth_deg);
            entry.1 += 1;
        }
    }

    /// Number of identity swaps: observations whose nearest truth differed from
    /// the same track's previous assignment.
    pub fn swap_count(&self) -> usize {
        self.swaps
    }

    /// Number of distinct tracks observed.
    pub fn num_tracks(&self) -> usize {
        self.errors.len()
    }

    /// Total scored observations across all tracks.
    pub fn samples(&self) -> usize {
        self.errors.values().map(|(_, n)| n).sum()
    }

    /// Mean bearing error over every scored observation, degrees.
    pub fn mean_error_deg(&self) -> Option<f64> {
        let (sum, count) = self
            .errors
            .values()
            .fold((0.0, 0usize), |(s, c), &(es, ec)| (s + es, c + ec));
        (count > 0).then(|| sum / count as f64)
    }

    /// Mean bearing error of each track, degrees, keyed by identity.
    pub fn per_track_mean_error_deg(&self) -> impl Iterator<Item = (TrackId, f64)> + '_ {
        self.errors
            .iter()
            .map(|(&id, &(sum, count))| (id, sum / count.max(1) as f64))
    }

    /// The largest per-track mean error, degrees — the headline "every track
    /// stayed on its vehicle" number.
    pub fn worst_track_mean_error_deg(&self) -> Option<f64> {
        self.per_track_mean_error_deg()
            .map(|(_, e)| e)
            .max_by(f64::total_cmp)
    }
}

/// Exhaustive search for the minimum-cost 1:1 assignment of tracks to truths
/// (set sizes are the handful of sources in a road scene). A track may stay
/// unassigned only at [`UNASSIGNED_COST`], i.e. when tracks outnumber truths.
#[allow(clippy::too_many_arguments)]
fn assign_recursive(
    i: usize,
    tracks: &[(TrackId, f64)],
    truths: &[(usize, f64)],
    cost: &impl Fn(usize, usize) -> f64,
    used: &mut [bool],
    current: &mut Vec<Option<usize>>,
    acc: f64,
    best_cost: &mut f64,
    best: &mut Vec<Option<usize>>,
) {
    if acc >= *best_cost {
        return;
    }
    if i == tracks.len() {
        *best_cost = acc;
        best.clone_from(current);
        return;
    }
    for j in 0..truths.len() {
        if used[j] {
            continue;
        }
        used[j] = true;
        current[i] = Some(j);
        assign_recursive(
            i + 1,
            tracks,
            truths,
            cost,
            used,
            current,
            acc + cost(i, j),
            best_cost,
            best,
        );
        used[j] = false;
    }
    current[i] = None;
    assign_recursive(
        i + 1,
        tracks,
        truths,
        cost,
        used,
        current,
        acc + UNASSIGNED_COST,
        best_cost,
        best,
    );
}

/// Fraction of estimates within `tolerance_deg` of the ground truth.
pub fn accuracy_within(estimates_deg: &[f64], truths_deg: &[f64], tolerance_deg: f64) -> f64 {
    if estimates_deg.is_empty() || estimates_deg.len() != truths_deg.len() {
        return 0.0;
    }
    let hits = estimates_deg
        .iter()
        .zip(truths_deg)
        .filter(|(&a, &b)| angular_error_deg(a, b) <= tolerance_deg)
        .count();
    hits as f64 / estimates_deg.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraparound_cases() {
        assert_eq!(angular_error_deg(0.0, 0.0), 0.0);
        assert_eq!(angular_error_deg(-180.0, 180.0), 0.0);
        assert_eq!(angular_error_deg(179.0, -179.0), 2.0);
        assert_eq!(angular_error_deg(90.0, -90.0), 180.0);
        assert_eq!(angular_error_deg(350.0, 10.0), 20.0);
    }

    #[test]
    fn nearest_truth_handles_wraparound_empty_and_non_finite() {
        assert_eq!(nearest_truth_error_deg(179.0, &[-179.0, 0.0]), Some(2.0));
        assert_eq!(nearest_truth_error_deg(0.0, &[]), None);
        // Non-finite inputs are skipped, never a panic or a NaN score.
        assert_eq!(nearest_truth_error_deg(f64::NAN, &[10.0, 20.0]), None);
        assert_eq!(nearest_truth_error_deg(10.0, &[f64::NAN, 13.0]), Some(3.0));
        assert_eq!(nearest_truth_error_deg(10.0, &[f64::INFINITY]), None);
    }

    #[test]
    fn multi_source_score_accumulates_only_active_truths() {
        let mut score = MultiSourceDoaScore::new();
        assert_eq!(score.mean_error_deg(), None);
        assert_eq!(score.fraction_within(5.0), 0.0);
        assert_eq!(score.add(10.0, &[13.0, 100.0]), Some(3.0));
        assert_eq!(score.add(50.0, &[]), None);
        assert_eq!(score.add(-170.0, &[171.0]), Some(19.0));
        assert_eq!(score.count(), 2);
        assert!((score.mean_error_deg().unwrap() - 11.0).abs() < 1e-12);
        assert_eq!(score.fraction_within(5.0), 0.5);
    }

    #[test]
    fn ospa_charges_localization_and_cardinality_optimally() {
        // Matching sets in any order score zero.
        assert_eq!(ospa_deg(&[], &[], 30.0), 0.0);
        assert_eq!(ospa_deg(&[10.0, -90.0], &[-90.0, 10.0], 30.0), 0.0);
        // Pure localization error, wrap-aware.
        assert!((ospa_deg(&[179.0], &[-179.0], 30.0) - 2.0).abs() < 1e-12);
        // Per-bearing error clamps at the cutoff.
        assert_eq!(ospa_deg(&[0.0], &[120.0], 30.0), 30.0);
        // Cardinality error: each unmatched bearing costs the full cutoff.
        assert_eq!(ospa_deg(&[], &[40.0, -120.0], 30.0), 30.0);
        assert_eq!(ospa_deg(&[40.0, -120.0, 5.0], &[40.0, -120.0], 30.0), 10.0);
        // The assignment is optimal, not greedy: greedy would pair 4->3 first
        // (cost 1) and be forced into 0->6 (cost 6, total 7); the optimal
        // pairing (0->3, 4->6) totals 5.
        let o = ospa_deg(&[0.0, 4.0], &[3.0, 6.0], 30.0);
        assert!((o - 2.5).abs() < 1e-12, "got {o}");
        // Non-finite bearings are dropped, then charged as cardinality error.
        assert_eq!(ospa_deg(&[f64::NAN, 40.0], &[40.0], 30.0), 0.0);
    }

    #[test]
    fn track_identity_score_counts_swaps_and_per_track_errors() {
        use crate::multitrack::TrackId;
        let mut score = TrackIdentityScore::new();
        let (a, b) = (TrackId(0), TrackId(1));
        // Track a rides truth 0, track b rides truth 1.
        for step in 0..4 {
            let t = step as f64;
            score.observe_frame(&[(a, 40.0 + t), (b, -118.0)], &[40.0, -120.0]);
        }
        assert_eq!(score.swap_count(), 0);
        assert_eq!(score.num_tracks(), 2);
        assert_eq!(score.samples(), 8);
        // Track b alone jumps onto truth 0: one identity swap (and back: two).
        score.observe_frame(&[(b, 41.0)], &[40.0, -120.0]);
        score.observe_frame(&[(b, -120.0)], &[40.0, -120.0]);
        assert_eq!(score.swap_count(), 2);
        // Per-track means: a stays near truth 0 within 3 deg, worst track is b.
        let per: std::collections::BTreeMap<_, _> = score.per_track_mean_error_deg().collect();
        assert!(per[&a] < 3.0 + 1e-12);
        assert!(score.worst_track_mean_error_deg().unwrap() >= per[&a]);
        assert!(score.mean_error_deg().unwrap() > 0.0);
        // No active truths / non-finite input record nothing.
        score.observe_frame(&[(a, 0.0)], &[]);
        score.observe_frame(&[(a, f64::NAN)], &[0.0]);
        assert_eq!(score.samples(), 10);
    }

    #[test]
    fn track_identity_assignment_is_exclusive_and_hysteretic() {
        use crate::multitrack::TrackId;
        let (a, b) = (TrackId(0), TrackId(1));
        // Exclusivity: both tracks sit nearest truth 0, but the optimal 1:1
        // assignment sends one of them to truth 1 — independent nearest-truth
        // would double-credit truth 0 and hide the missing source.
        let mut score = TrackIdentityScore::new();
        score.observe_frame(&[(a, 10.0), (b, 20.0)], &[12.0, 60.0]);
        let per: std::collections::BTreeMap<_, _> = score.per_track_mean_error_deg().collect();
        assert!((per[&a] - 2.0).abs() < 1e-12, "a -> truth 0");
        assert!((per[&b] - 40.0).abs() < 1e-12, "b forced onto truth 1");
        // More tracks than truths: the extra track stays unscored.
        let mut score = TrackIdentityScore::new();
        score.observe_frame(&[(a, 0.0), (b, 90.0)], &[1.0]);
        assert_eq!(score.num_tracks(), 1);
        // Hysteresis: when two truths cross, a small bias no longer flips the
        // assignment — without hysteresis the same sequence counts a swap.
        let crossing = [
            ([(a, 0.0), (b, 30.0)], [0.0, 30.0]),
            ([(a, 10.0), (b, 20.0)], [11.0, 19.0]),
            // Truths nearly coincide and the noisy track bearings cross over.
            ([(a, 14.0), (b, 16.0)], [15.5, 14.5]),
            ([(a, 20.0), (b, 10.0)], [19.0, 11.0]),
            ([(a, 30.0), (b, 0.0)], [30.0, 0.0]),
        ];
        let mut plain = TrackIdentityScore::new();
        let mut hysteretic = TrackIdentityScore::with_hysteresis(10.0);
        for (tracks, truths) in &crossing {
            plain.observe_frame(tracks, truths);
            hysteretic.observe_frame(tracks, truths);
        }
        assert!(
            plain.swap_count() > 0,
            "plain scoring flips at the crossing"
        );
        assert_eq!(hysteretic.swap_count(), 0, "hysteresis rides through");
    }

    #[test]
    fn truth_indices_stay_stable_when_sources_deactivate() {
        use crate::multitrack::TrackId;
        // Regression: assignments used to be keyed by the index into the
        // frame's *filtered* truth list, so a source going inactive shifted
        // every later index and registered phantom swaps. Inactive sources are
        // now marked NaN in place and indices never move.
        let a = TrackId(0);
        let mut score = TrackIdentityScore::new();
        score.observe_frame(&[(a, -119.0)], &[40.0, -120.0]);
        // Source 0 goes inactive: the track still rides source 1 — no swap.
        score.observe_frame(&[(a, -121.0)], &[f64::NAN, -120.0]);
        score.observe_frame(&[(a, -120.0)], &[40.0, -120.0]);
        assert_eq!(score.swap_count(), 0);
        assert_eq!(score.num_tracks(), 1);
        assert!(score.mean_error_deg().unwrap() < 1.0);
    }

    #[test]
    fn mean_error_and_accuracy() {
        let est = [10.0, 20.0, 30.0];
        let truth = [12.0, 20.0, 40.0];
        assert!((mean_angular_error_deg(&est, &truth) - 4.0).abs() < 1e-12);
        assert!((accuracy_within(&est, &truth, 5.0) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(mean_angular_error_deg(&[], &[]), 0.0);
        assert_eq!(accuracy_within(&[1.0], &[], 5.0), 0.0);
    }
}
