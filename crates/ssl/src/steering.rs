//! Far-field steering model over an azimuth grid.

use crate::error::SslError;
use ispot_roadsim::geometry::Position;
use ispot_roadsim::microphone::MicrophoneArray;
use serde::{Deserialize, Serialize};

/// An azimuth grid plus the per-pair expected TDOAs (in samples) for a far-field source
/// in each grid direction.
///
/// The TDOA convention matches `ispot_features::gcc::GccPhat::estimate_tdoa`: for pair
/// `(i, j)` the stored value is the delay of channel `j` relative to channel `i`,
/// positive when the wavefront reaches microphone `i` first.
///
/// # Example
///
/// ```
/// use ispot_roadsim::{geometry::Position, microphone::MicrophoneArray};
/// use ispot_ssl::steering::SteeringGrid;
///
/// # fn main() -> Result<(), ispot_ssl::SslError> {
/// let array = MicrophoneArray::linear(4, 0.1, Position::new(0.0, 0.0, 1.0));
/// let grid = SteeringGrid::azimuth_only(&array, 181, 16_000.0, 343.0)?;
/// assert_eq!(grid.num_directions(), 181);
/// assert_eq!(grid.num_pairs(), 6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SteeringGrid {
    azimuths_deg: Vec<f64>,
    pairs: Vec<(usize, usize)>,
    /// `tdoas[d][p]` = expected TDOA in samples for direction `d` and pair `p`.
    tdoas: Vec<Vec<f64>>,
    max_tdoa: f64,
    sample_rate: f64,
}

impl SteeringGrid {
    /// Builds a uniform azimuth grid of `num_directions` points spanning
    /// `[-180, 180)` degrees for the given array, sampling rate and speed of sound.
    ///
    /// # Errors
    ///
    /// Returns an error if the grid is empty, the array has fewer than two
    /// microphones, or the physical constants are not positive.
    pub fn azimuth_only(
        array: &MicrophoneArray,
        num_directions: usize,
        sample_rate: f64,
        speed_of_sound: f64,
    ) -> Result<Self, SslError> {
        if num_directions == 0 {
            return Err(SslError::invalid_config(
                "num_directions",
                "must be positive",
            ));
        }
        if array.len() < 2 {
            return Err(SslError::invalid_config(
                "array",
                "needs at least two microphones",
            ));
        }
        if sample_rate <= 0.0 || speed_of_sound <= 0.0 {
            return Err(SslError::invalid_config(
                "sample_rate/speed_of_sound",
                "must be positive",
            ));
        }
        let centroid = array.centroid();
        let pairs = array.pairs();
        let azimuths_deg: Vec<f64> = (0..num_directions)
            .map(|d| -180.0 + 360.0 * d as f64 / num_directions as f64)
            .collect();
        let mut tdoas = Vec::with_capacity(num_directions);
        let mut max_tdoa = 0.0f64;
        for &az in &azimuths_deg {
            let theta = az.to_radians();
            // Unit vector pointing from the array towards the (far-field) source.
            let u = Position::new(theta.cos(), theta.sin(), 0.0);
            let mut row = Vec::with_capacity(pairs.len());
            for &(i, j) in &pairs {
                let ri = array.positions()[i] - centroid;
                let rj = array.positions()[j] - centroid;
                // Arrival time at mic m is -(r_m . u)/c relative to the centroid; the
                // TDOA of channel j relative to channel i is tau_j - tau_i.
                let tdoa_s = (ri.dot(u) - rj.dot(u)) / speed_of_sound;
                let tdoa = tdoa_s * sample_rate;
                max_tdoa = max_tdoa.max(tdoa.abs());
                row.push(tdoa);
            }
            tdoas.push(row);
        }
        Ok(SteeringGrid {
            azimuths_deg,
            pairs,
            tdoas,
            max_tdoa,
            sample_rate,
        })
    }

    /// Number of candidate directions.
    pub fn num_directions(&self) -> usize {
        self.azimuths_deg.len()
    }

    /// Number of microphone pairs.
    pub fn num_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// The microphone pairs `(i, j)` with `i < j`.
    pub fn pairs(&self) -> &[(usize, usize)] {
        &self.pairs
    }

    /// Number of microphone channels the pair list spans.
    pub fn num_channels(&self) -> usize {
        self.pairs.iter().map(|&(_, j)| j + 1).max().unwrap_or(0)
    }

    /// Azimuth (degrees) of grid direction `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    pub fn azimuth_deg(&self, d: usize) -> f64 {
        self.azimuths_deg[d]
    }

    /// All azimuths in degrees.
    pub fn azimuths_deg(&self) -> &[f64] {
        &self.azimuths_deg
    }

    /// Expected TDOA (samples) for direction `d` and pair index `p`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn tdoa(&self, d: usize, p: usize) -> f64 {
        self.tdoas[d][p]
    }

    /// Largest TDOA magnitude (samples) across the whole grid — the Nyquist-rate lag
    /// support used by the low-complexity SRP.
    pub fn max_tdoa_samples(&self) -> f64 {
        self.max_tdoa
    }

    /// Sampling rate this grid was built for.
    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }

    /// Index of the grid direction closest to `azimuth_deg` (wrap-around aware).
    pub fn nearest_direction(&self, azimuth_deg: f64) -> usize {
        self.azimuths_deg
            .iter()
            .enumerate()
            .min_by(|a, b| {
                crate::metrics::angular_error_deg(*a.1, azimuth_deg)
                    .total_cmp(&crate::metrics::angular_error_deg(*b.1, azimuth_deg))
            })
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_array() -> MicrophoneArray {
        MicrophoneArray::linear(4, 0.1, Position::new(0.0, 0.0, 1.0))
    }

    #[test]
    fn grid_covers_the_full_circle_uniformly() {
        let grid = SteeringGrid::azimuth_only(&linear_array(), 72, 16_000.0, 343.0).unwrap();
        assert_eq!(grid.num_directions(), 72);
        assert_eq!(grid.azimuth_deg(0), -180.0);
        let step = grid.azimuth_deg(1) - grid.azimuth_deg(0);
        assert!((step - 5.0).abs() < 1e-9);
    }

    #[test]
    fn broadside_direction_has_zero_tdoa_for_a_linear_array() {
        // A source at 90 degrees (broadside, +y) is equidistant from all mics on the x
        // axis, so every pair TDOA is zero.
        let grid = SteeringGrid::azimuth_only(&linear_array(), 360, 16_000.0, 343.0).unwrap();
        let broadside = grid.nearest_direction(90.0);
        for p in 0..grid.num_pairs() {
            assert!(grid.tdoa(broadside, p).abs() < 1e-9);
        }
    }

    #[test]
    fn endfire_tdoa_matches_spacing_over_speed_of_sound() {
        let fs = 16_000.0;
        let c = 343.0;
        let grid = SteeringGrid::azimuth_only(&linear_array(), 360, fs, c).unwrap();
        // Endfire (0 degrees, +x): adjacent mics separated by 0.1 m along the
        // propagation direction, pair (0, 1): mic 0 sits at smaller x, so the wave from
        // +x reaches mic 1 first.
        let endfire = grid.nearest_direction(0.0);
        let expected = 0.1 / c * fs;
        let p01 = grid
            .pairs()
            .iter()
            .position(|&(i, j)| i == 0 && j == 1)
            .unwrap();
        assert!(
            (grid.tdoa(endfire, p01).abs() - expected).abs() < 1e-6,
            "tdoa {} expected magnitude {expected}",
            grid.tdoa(endfire, p01)
        );
        assert!(grid.max_tdoa_samples() >= expected * 3.0 - 1e-6);
    }

    #[test]
    fn opposite_directions_have_opposite_tdoas() {
        let grid = SteeringGrid::azimuth_only(&linear_array(), 360, 16_000.0, 343.0).unwrap();
        let east = grid.nearest_direction(0.0);
        let west = grid.nearest_direction(180.0);
        for p in 0..grid.num_pairs() {
            assert!((grid.tdoa(east, p) + grid.tdoa(west, p)).abs() < 1e-9);
        }
    }

    #[test]
    fn invalid_configurations_rejected() {
        let array = linear_array();
        assert!(SteeringGrid::azimuth_only(&array, 0, 16_000.0, 343.0).is_err());
        assert!(SteeringGrid::azimuth_only(&array, 10, 0.0, 343.0).is_err());
        let single = MicrophoneArray::linear(1, 0.1, Position::ORIGIN);
        assert!(SteeringGrid::azimuth_only(&single, 10, 16_000.0, 343.0).is_err());
    }

    #[test]
    fn nearest_direction_wraps_around() {
        let grid = SteeringGrid::azimuth_only(&linear_array(), 36, 16_000.0, 343.0).unwrap();
        let d = grid.nearest_direction(179.9);
        // 179.9 is closest to -180 (= +180) or 170 depending on the grid; both are
        // within one step.
        let err = crate::metrics::angular_error_deg(grid.azimuth_deg(d), 179.9);
        assert!(err <= 10.0 + 1e-9);
    }
}
