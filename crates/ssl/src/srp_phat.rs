//! Conventional SRP-PHAT localization by frequency-domain steering.
//!
//! For every candidate direction the PHAT-weighted cross-power spectra of all microphone
//! pairs are phase-aligned and summed — the textbook steered-response-power computation.
//! It is accurate but expensive: every (pair, direction, frequency) triple costs a
//! complex rotation, which is exactly the "hardware-unfriendly beamforming computation"
//! the Cross3D baseline replaces with a CNN (Sec. IV-B of the paper) and that the
//! low-complexity variant in [`crate::srp_fast`] accelerates.

use crate::error::SslError;
use crate::steering::SteeringGrid;
use ispot_dsp::complex::Complex;
use ispot_dsp::fft::Fft;
use ispot_roadsim::microphone::MicrophoneArray;
use serde::{Deserialize, Serialize};
use std::f64::consts::PI;

/// Configuration shared by the conventional and low-complexity SRP-PHAT front-ends.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SrpConfig {
    /// Analysis frame length in samples.
    pub frame_len: usize,
    /// Number of azimuth grid directions.
    pub num_directions: usize,
    /// Lowest frequency (Hz) included in the steering sum.
    pub freq_min_hz: f64,
    /// Highest frequency (Hz) included in the steering sum.
    pub freq_max_hz: f64,
    /// Speed of sound in m/s.
    pub speed_of_sound: f64,
}

impl Default for SrpConfig {
    fn default() -> Self {
        SrpConfig {
            frame_len: 2048,
            num_directions: 181,
            freq_min_hz: 200.0,
            freq_max_hz: 7000.0,
            speed_of_sound: 343.0,
        }
    }
}

impl SrpConfig {
    fn validate(&self, sample_rate: f64) -> Result<(), SslError> {
        if self.frame_len == 0 {
            return Err(SslError::invalid_config("frame_len", "must be positive"));
        }
        if self.num_directions == 0 {
            return Err(SslError::invalid_config(
                "num_directions",
                "must be positive",
            ));
        }
        if !(self.freq_min_hz >= 0.0 && self.freq_min_hz < self.freq_max_hz) {
            return Err(SslError::invalid_config(
                "freq_min_hz/freq_max_hz",
                "must satisfy 0 <= min < max",
            ));
        }
        if self.freq_max_hz > sample_rate / 2.0 {
            return Err(SslError::invalid_config(
                "freq_max_hz",
                format!("must not exceed Nyquist ({})", sample_rate / 2.0),
            ));
        }
        if self.speed_of_sound <= 0.0 {
            return Err(SslError::invalid_config(
                "speed_of_sound",
                "must be positive",
            ));
        }
        Ok(())
    }
}

/// A steered-response-power map over the azimuth grid.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SrpMap {
    azimuths_deg: Vec<f64>,
    power: Vec<f64>,
}

impl SrpMap {
    /// Creates a map from matching azimuth and power vectors.
    pub fn new(azimuths_deg: Vec<f64>, power: Vec<f64>) -> Self {
        assert_eq!(azimuths_deg.len(), power.len(), "length mismatch");
        SrpMap {
            azimuths_deg,
            power,
        }
    }

    /// Retargets this map at `azimuths` (copying them only when they changed) and
    /// returns the power vector, resized to match, for in-place writing. In steady
    /// state — same grid, same length — this performs no heap allocation.
    pub(crate) fn prepare(&mut self, azimuths: &[f64]) -> &mut [f64] {
        if self.azimuths_deg.as_slice() != azimuths {
            self.azimuths_deg.clear();
            self.azimuths_deg.extend_from_slice(azimuths);
        }
        if self.power.len() != azimuths.len() {
            self.power.resize(azimuths.len(), 0.0);
        }
        &mut self.power
    }

    /// The azimuth grid in degrees.
    pub fn azimuths_deg(&self) -> &[f64] {
        &self.azimuths_deg
    }

    /// The steered response power per direction.
    pub fn power(&self) -> &[f64] {
        &self.power
    }

    /// Number of grid directions.
    pub fn len(&self) -> usize {
        self.power.len()
    }

    /// Returns true if the map is empty.
    pub fn is_empty(&self) -> bool {
        self.power.is_empty()
    }

    /// Index and azimuth (degrees) of the map maximum, or `None` for an empty map.
    pub fn peak(&self) -> Option<(usize, f64)> {
        self.power
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| (i, self.azimuths_deg[i]))
    }

    /// Extracts up to `max_peaks` local maxima of the map by non-maximum
    /// suppression on the **wrapped** azimuth grid, writing them into `out` in
    /// decreasing power order (ties broken like [`SrpMap::peak`]: the higher
    /// grid index wins, so `out[0]` always coincides with the global peak).
    ///
    /// A direction qualifies as a peak when its power is finite, no smaller than
    /// both wrapped grid neighbours, and at least `min_separation_deg` (angular,
    /// wrap-aware) away from every stronger peak already selected — the
    /// suppression step that keeps the shoulders of a strong main lobe from
    /// masquerading as secondary sources.
    ///
    /// `out` is caller-provided scratch: it is cleared and refilled, so a vector
    /// reserved for `max_peaks` entries makes the call allocation-free — this is
    /// the multi-target localization hot path.
    pub fn peaks_into(&self, max_peaks: usize, min_separation_deg: f64, out: &mut Vec<Peak>) {
        out.clear();
        let n = self.power.len();
        if n == 0 || max_peaks == 0 {
            return;
        }
        // Salience scale: the map extrema, so callers can threshold secondary
        // peaks relative to the frame's own dynamic range.
        let mut pmin = f64::INFINITY;
        let mut pmax = f64::NEG_INFINITY;
        for &p in &self.power {
            if p.is_finite() {
                pmin = pmin.min(p);
                pmax = pmax.max(p);
            }
        }
        let range = (pmax - pmin).max(1e-12);
        while out.len() < max_peaks {
            let mut best: Option<usize> = None;
            'candidates: for i in 0..n {
                let p = self.power[i];
                if !p.is_finite() {
                    continue;
                }
                // Local maximum on the wrapped grid (a 1-point map is its own
                // peak; plateaus qualify everywhere and collapse under NMS).
                let prev = self.power[(i + n - 1) % n];
                let next = self.power[(i + 1) % n];
                if n > 1 && (p < prev || p < next) {
                    continue;
                }
                // Already selected, or suppressed by a stronger selected peak?
                // (The index check matters at `min_separation_deg == 0`, where
                // the distance test alone would re-admit the same maximum.)
                for chosen in out.iter() {
                    if chosen.index == i
                        || crate::metrics::angular_error_deg(
                            self.azimuths_deg[i],
                            chosen.azimuth_deg,
                        ) < min_separation_deg
                    {
                        continue 'candidates;
                    }
                }
                // Keep the tie-break of `peak()`: later index wins on equal power.
                best = match best {
                    Some(b) if self.power[b].total_cmp(&p).is_gt() => Some(b),
                    _ => Some(i),
                };
            }
            let Some(i) = best else { break };
            out.push(Peak {
                index: i,
                azimuth_deg: self.azimuths_deg[i],
                power: self.power[i],
                salience: (self.power[i] - pmin) / range,
            });
        }
    }

    /// Allocating convenience wrapper around [`SrpMap::peaks_into`].
    pub fn peaks(&self, max_peaks: usize, min_separation_deg: f64) -> Vec<Peak> {
        let mut out = Vec::with_capacity(max_peaks);
        self.peaks_into(max_peaks, min_separation_deg, &mut out);
        out
    }

    /// Zeroes every power (grid kept): restarts a [`SrpMap::smooth_from`] EMA
    /// without reallocating.
    pub fn zero(&mut self) {
        self.power.fill(0.0);
    }

    /// Exponentially smooths this map towards `new`: every power becomes
    /// `retain · old + (1 − retain) · new`. If this map is empty or on a
    /// different grid it becomes a copy of `new` (the EMA restarts). In steady
    /// state — same grid, same length — this performs no heap allocation.
    ///
    /// Per-frame SRP maps of tonal sources carry heavy clutter (inter-source
    /// cross-terms, spatial aliasing lobes) that fluctuates in position from
    /// frame to frame while genuine sources persist; a short EMA before peak
    /// extraction suppresses exactly that clutter. This is the map the
    /// multi-target tracking front-end peaks from.
    pub fn smooth_from(&mut self, new: &SrpMap, retain: f64) {
        if self.azimuths_deg.as_slice() != new.azimuths_deg.as_slice() {
            self.azimuths_deg.clear();
            self.azimuths_deg.extend_from_slice(&new.azimuths_deg);
            self.power.clear();
            self.power.extend_from_slice(&new.power);
            return;
        }
        let alpha = retain.clamp(0.0, 1.0);
        for (old, &p) in self.power.iter_mut().zip(&new.power) {
            *old = alpha * *old + (1.0 - alpha) * p;
        }
    }

    /// Power vector normalized to `[0, 1]` (useful as a CNN input feature).
    pub fn normalized(&self) -> Vec<f64> {
        let max = self.power.iter().cloned().fold(f64::MIN, f64::max);
        let min = self.power.iter().cloned().fold(f64::MAX, f64::min);
        let range = (max - min).max(1e-12);
        self.power.iter().map(|p| (p - min) / range).collect()
    }

    /// Pearson correlation with another map of the same length (used to verify that the
    /// fast SRP is equivalent to the conventional one).
    pub fn correlation(&self, other: &SrpMap) -> f64 {
        assert_eq!(self.len(), other.len(), "maps must have the same length");
        let n = self.len() as f64;
        let ma = self.power.iter().sum::<f64>() / n;
        let mb = other.power.iter().sum::<f64>() / n;
        let mut num = 0.0;
        let mut da = 0.0;
        let mut db = 0.0;
        for (a, b) in self.power.iter().zip(&other.power) {
            num += (a - ma) * (b - mb);
            da += (a - ma) * (a - ma);
            db += (b - mb) * (b - mb);
        }
        num / (da.sqrt() * db.sqrt()).max(1e-12)
    }
}

/// One local maximum of an [`SrpMap`], as extracted by [`SrpMap::peaks_into`].
///
/// Multi-source frames produce one peak per resolvable source (plus occasional
/// side-lobe clutter, which downstream tracking filters by `salience` and by
/// track lifecycle).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Peak {
    /// Grid index of the peak direction.
    pub index: usize,
    /// Azimuth of the peak in degrees, wrapped to `[-180, 180)`.
    pub azimuth_deg: f64,
    /// Raw steered response power at the peak.
    pub power: f64,
    /// Peak power normalized to the map's own dynamic range, in `[0, 1]`
    /// (the global peak of a non-flat map always scores 1.0).
    pub salience: f64,
}

/// A direction-of-arrival estimate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DoaEstimate {
    azimuth_deg: f64,
    power: f64,
    map: SrpMap,
}

impl DoaEstimate {
    /// Creates an estimate from a map by taking its peak. Returns `None` for an
    /// empty map, which has no peak.
    pub fn from_map(map: SrpMap) -> Option<Self> {
        let (idx, az) = map.peak()?;
        Some(DoaEstimate {
            azimuth_deg: az,
            power: map.power()[idx],
            map,
        })
    }

    /// Estimated azimuth in degrees.
    pub fn azimuth_deg(&self) -> f64 {
        self.azimuth_deg
    }

    /// Steered response power at the estimate.
    pub fn power(&self) -> f64 {
        self.power
    }

    /// The full SRP map behind the estimate.
    pub fn map(&self) -> &SrpMap {
        &self.map
    }
}

/// Reusable scratch memory for the allocation-free SRP-PHAT entry points
/// ([`SrpPhat::compute_map_into`], [`crate::srp_fast::SrpPhatFast::compute_map_into`]).
///
/// The conventional path sizes its buffers lazily on first use; the low-complexity
/// hot path instead **requires** a scratch pre-sized by
/// `SrpPhatFast::make_scratch` and returns [`crate::SslError::ScratchSize`] on any
/// mismatch, so no resize can sneak onto the per-frame path. One scratch serves one
/// processor at a time.
#[derive(Debug, Clone, Default)]
pub struct SrpScratch {
    /// Full-frame complex workspace: forward-FFT output per channel (or channel
    /// pair), and the rebuilt full-band cross spectrum in the f64 lag-domain path.
    pub(crate) spec: Vec<Complex>,
    /// Band-limited per-channel spectra, channel-major (`num_channels × num_bins`).
    pub(crate) channel_bins: Vec<Complex>,
    /// PHAT-weighted cross-power spectra, pair-major (`num_pairs × num_bins`).
    pub(crate) cross: Vec<Complex>,
    /// Full-frame real workspace for the inverse transform (f64 lag-domain path).
    pub(crate) corr: Vec<f64>,
    /// Zero-padded Nyquist-rate lag tables, pair-major (f64 lag-domain path).
    pub(crate) lag_tables: Vec<f64>,
    /// Band-limited per-channel spectra, real parts, channel-major
    /// (`num_channels × num_bins`; f32 SIMD path).
    pub(crate) ch_re: Vec<f32>,
    /// Imaginary parts matching [`SrpScratch::ch_re`].
    pub(crate) ch_im: Vec<f32>,
    /// PHAT-normalized cross spectrum of the pair currently being synthesized,
    /// real parts (`num_bins`; f32 SIMD path).
    pub(crate) phat_re: Vec<f32>,
    /// Imaginary parts matching [`SrpScratch::phat_re`].
    pub(crate) phat_im: Vec<f32>,
    /// Zero-padded Nyquist-rate lag tables, pair-major (f32 SIMD path). The
    /// `half_taps` pad cells at each table edge are zeroed once at creation and
    /// never written by the kernels, so edge tap windows read exact zeros.
    pub(crate) lag_f32: Vec<f32>,
    /// Decimated coarse-grid map (hierarchical search).
    pub(crate) coarse: SrpMap,
    /// Coarse-peak scratch for the refinement stage (hierarchical search).
    pub(crate) peaks: Vec<Peak>,
    /// Per-direction "holds an exactly steered value" mask (hierarchical
    /// search): interpolation runs between anchored cells after refinement so
    /// the seeded fill stays continuous at refinement-window edges.
    pub(crate) anchored: Vec<bool>,
}

impl SrpScratch {
    /// Creates an empty scratch. The conventional path grows it on first use; the
    /// low-complexity hot path rejects it — use `SrpPhatFast::make_scratch` there.
    pub fn new() -> Self {
        SrpScratch::default()
    }
}

/// The conventional (frequency-domain steering) SRP-PHAT processor.
#[derive(Debug, Clone)]
pub struct SrpPhat {
    config: SrpConfig,
    grid: SteeringGrid,
    fft: Fft,
    sample_rate: f64,
    num_channels: usize,
    bin_range: (usize, usize),
}

impl SrpPhat {
    /// Creates a processor for the given array and sampling rate.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration or array is invalid.
    pub fn new(
        config: SrpConfig,
        array: &MicrophoneArray,
        sample_rate: f64,
    ) -> Result<Self, SslError> {
        config.validate(sample_rate)?;
        let grid = SteeringGrid::azimuth_only(
            array,
            config.num_directions,
            sample_rate,
            config.speed_of_sound,
        )?;
        let fft = Fft::new(config.frame_len);
        let bin_hz = sample_rate / config.frame_len as f64;
        let kmin = (config.freq_min_hz / bin_hz).ceil().max(1.0) as usize;
        let kmax = ((config.freq_max_hz / bin_hz).floor() as usize).min(config.frame_len / 2);
        Ok(SrpPhat {
            config,
            grid,
            fft,
            sample_rate,
            num_channels: array.len(),
            bin_range: (kmin, kmax),
        })
    }

    /// Returns the configuration.
    pub fn config(&self) -> SrpConfig {
        self.config
    }

    /// Returns the steering grid.
    pub fn grid(&self) -> &SteeringGrid {
        &self.grid
    }

    /// Number of stored/steered coefficients per microphone pair (complex cross-power
    /// bins counted as two real coefficients). This is the quantity the low-complexity
    /// variant reduces by ≈50 % (Sec. IV-B of the paper).
    pub fn coefficients_per_pair(&self) -> usize {
        2 * self.num_bins()
    }

    /// The inclusive FFT bin range `(kmin, kmax)` covered by the steering sum.
    pub fn bin_range(&self) -> (usize, usize) {
        self.bin_range
    }

    /// Number of FFT bins in the steering band.
    pub fn num_bins(&self) -> usize {
        self.bin_range.1 - self.bin_range.0 + 1
    }

    /// The shared FFT plan (one per processor; the lag-domain variant reuses it).
    pub(crate) fn fft(&self) -> &Fft {
        &self.fft
    }

    pub(crate) fn validate_frame(&self, frame: &[&[f64]]) -> Result<(), SslError> {
        if frame.len() != self.num_channels {
            return Err(SslError::ChannelMismatch {
                expected: self.num_channels,
                actual: frame.len(),
            });
        }
        for ch in frame {
            if ch.len() != self.config.frame_len {
                return Err(SslError::invalid_config(
                    "frame",
                    format!(
                        "every channel must have {} samples, got {}",
                        self.config.frame_len,
                        ch.len()
                    ),
                ));
            }
        }
        Ok(())
    }

    /// Creates a scratch pre-sized for this processor, so even the first
    /// [`SrpPhat::compute_map_into`] call allocates nothing.
    pub fn make_scratch(&self) -> SrpScratch {
        SrpScratch {
            spec: vec![Complex::ZERO; self.config.frame_len],
            channel_bins: vec![Complex::ZERO; self.num_channels * self.num_bins()],
            cross: vec![Complex::ZERO; self.grid.num_pairs() * self.num_bins()],
            ..SrpScratch::default()
        }
    }

    /// Computes the PHAT-weighted cross-power spectra of all pairs for one frame
    /// into `scratch.cross` (flat pair-major storage, `num_pairs × num_bins`).
    ///
    /// Steady state performs no heap allocation: every buffer lives in `scratch`
    /// and is reused across frames.
    ///
    /// # Errors
    ///
    /// Returns an error if the channel count or frame length does not match.
    pub fn cross_spectra_into(
        &self,
        frame: &[&[f64]],
        scratch: &mut SrpScratch,
    ) -> Result<(), SslError> {
        self.validate_frame(frame)?;
        let nb = self.num_bins();
        let (kmin, kmax) = self.bin_range;
        scratch.spec.resize(self.config.frame_len, Complex::ZERO);
        scratch.channel_bins.resize(frame.len() * nb, Complex::ZERO);
        for (ch_idx, ch) in frame.iter().enumerate() {
            self.fft.forward_real_into(ch, &mut scratch.spec)?;
            scratch.channel_bins[ch_idx * nb..(ch_idx + 1) * nb]
                .copy_from_slice(&scratch.spec[kmin..=kmax]);
        }
        scratch
            .cross
            .resize(self.grid.num_pairs() * nb, Complex::ZERO);
        for (pair_idx, &(i, j)) in self.grid.pairs().iter().enumerate() {
            let (si, sj) = (
                &scratch.channel_bins[i * nb..(i + 1) * nb],
                &scratch.channel_bins[j * nb..(j + 1) * nb],
            );
            for (slot, (a, b)) in scratch.cross[pair_idx * nb..(pair_idx + 1) * nb]
                .iter_mut()
                .zip(si.iter().zip(sj))
            {
                let c = *a * b.conj();
                let mag = c.norm();
                *slot = if mag > 1e-12 { c / mag } else { Complex::ZERO };
            }
        }
        Ok(())
    }

    /// Computes the SRP map for one multichannel frame by frequency-domain steering,
    /// writing the result into `out` without allocating in steady state.
    ///
    /// # Errors
    ///
    /// Same as [`SrpPhat::cross_spectra_into`].
    pub fn compute_map_into(
        &self,
        frame: &[&[f64]],
        scratch: &mut SrpScratch,
        out: &mut SrpMap,
    ) -> Result<(), SslError> {
        self.cross_spectra_into(frame, scratch)?;
        let n = self.config.frame_len as f64;
        let (kmin, _) = self.bin_range;
        let nb = self.num_bins();
        let num_pairs = self.grid.num_pairs();
        let power = out.prepare(self.grid.azimuths_deg());
        for (d, p) in power.iter_mut().enumerate() {
            let mut acc = 0.0;
            for pair_idx in 0..num_pairs {
                let w = &scratch.cross[pair_idx * nb..(pair_idx + 1) * nb];
                let tdoa = self.grid.tdoa(d, pair_idx);
                // The GCC peaks at lag -tdoa, so steer with exp(-j 2 pi k tdoa / N).
                for (idx, c) in w.iter().enumerate() {
                    let k = (kmin + idx) as f64;
                    let phase = -2.0 * PI * k * tdoa / n;
                    acc += c.re * phase.cos() - c.im * phase.sin();
                }
            }
            *p = acc;
        }
        Ok(())
    }

    /// Computes the SRP map for one multichannel frame by frequency-domain steering.
    ///
    /// Allocating convenience wrapper around [`SrpPhat::compute_map_into`]; the hot
    /// path should hold a [`SrpScratch`] and an output map and call the `_into`
    /// variant instead.
    ///
    /// # Errors
    ///
    /// Same as [`SrpPhat::cross_spectra_into`].
    pub fn compute_map(&self, frame: &[&[f64]]) -> Result<SrpMap, SslError> {
        let mut scratch = self.make_scratch();
        let mut out = SrpMap::default();
        self.compute_map_into(frame, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// Localizes the dominant source in one frame.
    ///
    /// # Errors
    ///
    /// Same as [`SrpPhat::compute_map`].
    pub fn localize(&self, frame: &[&[f64]]) -> Result<DoaEstimate, SslError> {
        DoaEstimate::from_map(self.compute_map(frame)?)
            .ok_or_else(|| SslError::invalid_config("map", "empty SRP map has no peak"))
    }

    /// Sampling rate the processor was built for.
    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use ispot_roadsim::engine::Simulator;
    use ispot_roadsim::geometry::Position;
    use ispot_roadsim::microphone::MicrophoneArray;
    use ispot_roadsim::scene::SceneBuilder;
    use ispot_roadsim::source::SoundSource;
    use ispot_roadsim::trajectory::Trajectory;

    /// Simulates a static broadband source at `azimuth_deg` and `distance` metres from
    /// a circular array, returning the multichannel audio and the array.
    pub fn simulate_static_source(
        azimuth_deg: f64,
        distance: f64,
        fs: f64,
        num_samples: usize,
        num_mics: usize,
    ) -> (Vec<Vec<f64>>, MicrophoneArray) {
        let az = azimuth_deg.to_radians();
        let source_pos = Position::new(distance * az.cos(), distance * az.sin(), 1.0);
        let signal: Vec<f64> =
            ispot_dsp::generator::NoiseSource::new(ispot_dsp::generator::NoiseKind::White, 42)
                .take(num_samples)
                .collect();
        let array = MicrophoneArray::circular(num_mics, 0.2, Position::new(0.0, 0.0, 1.0));
        let scene = SceneBuilder::new(fs)
            .source(SoundSource::new(signal, Trajectory::fixed(source_pos)))
            .array(array.clone())
            .reflection(false)
            .air_absorption(false)
            .build()
            .unwrap();
        let audio = Simulator::new(scene).unwrap().run().unwrap();
        (audio.into_channels(), array)
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::simulate_static_source;
    use super::*;
    use crate::metrics::angular_error_deg;

    #[test]
    fn localizes_static_sources_at_various_azimuths() {
        let fs = 16_000.0;
        for &truth in &[0.0, 45.0, 120.0, -90.0] {
            let (channels, array) = simulate_static_source(truth, 20.0, fs, 8192, 6);
            let srp = SrpPhat::new(SrpConfig::default(), &array, fs).unwrap();
            let frame: Vec<&[f64]> = channels.iter().map(|c| &c[4096..6144]).collect();
            let est = srp.localize(&frame).unwrap();
            let err = angular_error_deg(est.azimuth_deg(), truth);
            assert!(
                err < 8.0,
                "azimuth {truth}: estimated {} (err {err})",
                est.azimuth_deg()
            );
        }
    }

    #[test]
    fn map_peak_is_sharp_for_broadband_source() {
        let fs = 16_000.0;
        let (channels, array) = simulate_static_source(30.0, 15.0, fs, 8192, 6);
        let srp = SrpPhat::new(SrpConfig::default(), &array, fs).unwrap();
        let frame: Vec<&[f64]> = channels.iter().map(|c| &c[4096..6144]).collect();
        let map = srp.compute_map(&frame).unwrap();
        let normalized = map.normalized();
        let above_half = normalized.iter().filter(|&&v| v > 0.5).count();
        // The peak region should be a small fraction of the 181 directions.
        assert!(above_half < 40, "{above_half} directions above half power");
    }

    #[test]
    fn channel_and_frame_validation() {
        let fs = 16_000.0;
        let array = ispot_roadsim::microphone::MicrophoneArray::circular(
            4,
            0.2,
            ispot_roadsim::geometry::Position::new(0.0, 0.0, 1.0),
        );
        let srp = SrpPhat::new(SrpConfig::default(), &array, fs).unwrap();
        let short = vec![0.0; 100];
        let ok = vec![0.0; 2048];
        let two: Vec<&[f64]> = vec![&ok, &ok];
        assert!(matches!(
            srp.compute_map(&two),
            Err(SslError::ChannelMismatch { .. })
        ));
        let bad_len: Vec<&[f64]> = vec![&ok, &ok, &ok, &short];
        assert!(srp.compute_map(&bad_len).is_err());
    }

    #[test]
    fn invalid_configurations_rejected() {
        let array = ispot_roadsim::microphone::MicrophoneArray::circular(
            4,
            0.2,
            ispot_roadsim::geometry::Position::new(0.0, 0.0, 1.0),
        );
        let fs = 16_000.0;
        for bad in [
            SrpConfig {
                frame_len: 0,
                ..SrpConfig::default()
            },
            SrpConfig {
                num_directions: 0,
                ..SrpConfig::default()
            },
            SrpConfig {
                freq_max_hz: 9000.0,
                ..SrpConfig::default()
            },
            SrpConfig {
                freq_min_hz: 5000.0,
                freq_max_hz: 1000.0,
                ..SrpConfig::default()
            },
        ] {
            assert!(SrpPhat::new(bad, &array, fs).is_err());
        }
    }

    #[test]
    fn map_utilities_behave() {
        let map = SrpMap::new(vec![-90.0, 0.0, 90.0], vec![0.1, 0.9, 0.5]);
        assert_eq!(map.peak(), Some((1, 0.0)));
        let norm = map.normalized();
        assert_eq!(norm[1], 1.0);
        assert_eq!(norm[0], 0.0);
        let same = map.correlation(&map);
        assert!((same - 1.0).abs() < 1e-12);
        let est = DoaEstimate::from_map(map.clone()).unwrap();
        assert_eq!(est.azimuth_deg(), 0.0);
        assert_eq!(est.map().len(), 3);
    }

    #[test]
    fn peaks_applies_nms_on_the_wrapped_grid() {
        // Grid of 8 directions over [-180, 180); a strong lobe straddling the
        // wrap point (135 / -180 / -135 at 8.5 / 9 / 8) and a weak lobe at -45.
        let azimuths: Vec<f64> = (0..8).map(|d| -180.0 + 45.0 * d as f64).collect();
        //                         -180  -135  -90  -45   0    45   90   135
        let power = vec![9.0, 8.0, 1.0, 1.5, 1.0, 2.0, 6.0, 8.5];
        let map = SrpMap::new(azimuths, power);
        let peaks = map.peaks(4, 80.0);
        // The wrap-straddling lobe yields exactly one peak: its 135- and
        // -135-degree shoulders are not local maxima across the wrap.
        assert_eq!(peaks.len(), 2);
        assert_eq!(peaks[0].azimuth_deg, -180.0);
        assert_eq!(peaks[0].salience, 1.0);
        assert_eq!(peaks[1].azimuth_deg, -45.0);
        assert!(peaks[1].salience > 0.0 && peaks[1].salience < 0.1);
        // The first peak always matches the global peak().
        assert_eq!(peaks[0].index, map.peak().unwrap().0);
        // A separation wider than the lobe spacing suppresses the weak lobe.
        let peaks = map.peaks(4, 170.0);
        assert_eq!(peaks.len(), 1);
        assert_eq!(peaks[0].azimuth_deg, -180.0);
        // max_peaks truncates in power order.
        let peaks = map.peaks(1, 10.0);
        assert_eq!(peaks.len(), 1);
        assert_eq!(peaks[0].azimuth_deg, -180.0);
        // Zero separation disables NMS but must never duplicate a peak: each
        // local maximum appears exactly once.
        let two_lobes = SrpMap::new(vec![-180.0, -90.0, 0.0, 90.0], vec![5.0, 1.0, 4.0, 1.0]);
        let peaks = two_lobes.peaks(4, 0.0);
        assert_eq!(peaks.len(), 2);
        assert_eq!(peaks[0].index, 0);
        assert_eq!(peaks[1].index, 2);
    }

    #[test]
    fn peaks_into_reuses_scratch_and_handles_degenerate_maps() {
        let mut out = Vec::with_capacity(4);
        SrpMap::new(Vec::new(), Vec::new()).peaks_into(4, 10.0, &mut out);
        assert!(out.is_empty());
        let one = SrpMap::new(vec![30.0], vec![2.5]);
        one.peaks_into(4, 10.0, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].azimuth_deg, 30.0);
        // Scratch is cleared between calls, and max_peaks == 0 yields nothing.
        one.peaks_into(0, 10.0, &mut out);
        assert!(out.is_empty());
        // Non-finite powers are skipped rather than propagated.
        let bad = SrpMap::new(vec![-90.0, 0.0, 90.0], vec![f64::NAN, 1.0, 2.0]);
        bad.peaks_into(4, 10.0, &mut out);
        assert!(out.iter().all(|p| p.power.is_finite()));
        assert_eq!(out[0].azimuth_deg, 90.0);
    }

    #[test]
    fn two_simulated_sources_yield_two_peaks() {
        use ispot_roadsim::engine::Simulator;
        use ispot_roadsim::geometry::Position;
        use ispot_roadsim::scene::SceneBuilder;
        use ispot_roadsim::source::SoundSource;
        use ispot_roadsim::trajectory::Trajectory;

        let fs = 16_000.0;
        let array = ispot_roadsim::microphone::MicrophoneArray::circular(
            6,
            0.2,
            Position::new(0.0, 0.0, 1.0),
        );
        let mut sources = Vec::new();
        for (az_deg, seed) in [(40.0_f64, 7u64), (-110.0, 13)] {
            let az = az_deg.to_radians();
            let signal: Vec<f64> = ispot_dsp::generator::NoiseSource::new(
                ispot_dsp::generator::NoiseKind::White,
                seed,
            )
            .take(8192)
            .collect();
            sources.push(SoundSource::new(
                signal,
                Trajectory::fixed(Position::new(18.0 * az.cos(), 18.0 * az.sin(), 1.0)),
            ));
        }
        let scene = SceneBuilder::new(fs)
            .sources(sources)
            .array(array.clone())
            .reflection(false)
            .air_absorption(false)
            .build()
            .unwrap();
        let audio = Simulator::new(scene).unwrap().run().unwrap();
        let srp = SrpPhat::new(SrpConfig::default(), &array, fs).unwrap();
        let frame: Vec<&[f64]> = audio.channels().iter().map(|c| &c[4096..6144]).collect();
        let map = srp.compute_map(&frame).unwrap();
        let peaks = map.peaks(4, 20.0);
        assert!(peaks.len() >= 2, "only {} peaks", peaks.len());
        let mut hits = 0;
        for truth in [40.0, -110.0] {
            if peaks
                .iter()
                .take(3)
                .any(|p| angular_error_deg(p.azimuth_deg, truth) < 8.0)
            {
                hits += 1;
            }
        }
        assert_eq!(hits, 2, "peaks {peaks:?} miss a source");
    }

    #[test]
    fn empty_map_has_no_peak_and_no_estimate() {
        // Regression: peak()/from_map() used to index out of bounds on empty maps.
        let empty = SrpMap::new(Vec::new(), Vec::new());
        assert!(empty.is_empty());
        assert_eq!(empty.peak(), None);
        assert!(DoaEstimate::from_map(empty).is_none());
    }

    #[test]
    fn compute_map_into_matches_allocating_compute_map() {
        let fs = 16_000.0;
        let (channels, array) = simulate_static_source(25.0, 12.0, fs, 8192, 4);
        let srp = SrpPhat::new(SrpConfig::default(), &array, fs).unwrap();
        let frame: Vec<&[f64]> = channels.iter().map(|c| &c[4096..6144]).collect();
        let expected = srp.compute_map(&frame).unwrap();
        let mut scratch = srp.make_scratch();
        let mut out = SrpMap::default();
        srp.compute_map_into(&frame, &mut scratch, &mut out)
            .unwrap();
        assert_eq!(out, expected);
        // Reusing the same scratch and output map must reproduce the result.
        srp.compute_map_into(&frame, &mut scratch, &mut out)
            .unwrap();
        assert_eq!(out, expected);
    }
}
