//! Azimuth tracking with a constant-velocity Kalman filter.
//!
//! The "t" in SELD(t) — tracking — smooths the per-frame DOA estimates of a moving
//! source (e.g. an approaching emergency vehicle) and bridges frames where the
//! detector is uncertain.

use serde::{Deserialize, Serialize};

/// A 1-D constant-velocity Kalman filter on the azimuth angle (degrees), with
/// wrap-around handling at ±180°.
///
/// # Example
///
/// ```
/// use ispot_ssl::tracking::AzimuthKalmanTracker;
///
/// let mut tracker = AzimuthKalmanTracker::new(1.0, 25.0);
/// tracker.update(10.0);
/// tracker.update(12.0);
/// let state = tracker.update(14.0);
/// assert!((state.azimuth_deg - 13.0).abs() < 3.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AzimuthKalmanTracker {
    /// Process-noise variance (deg^2 per step) on the velocity.
    process_noise: f64,
    /// Measurement-noise variance (deg^2).
    measurement_noise: f64,
    state: Option<TrackState>,
    /// State covariance matrix entries [p00, p01, p10, p11].
    covariance: [f64; 4],
}

/// The tracked state: azimuth and azimuth rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrackState {
    /// Smoothed azimuth in degrees, wrapped to `(-180, 180]`.
    pub azimuth_deg: f64,
    /// Azimuth rate in degrees per update step.
    pub rate_deg_per_step: f64,
}

impl AzimuthKalmanTracker {
    /// Creates a tracker with the given process and measurement noise variances.
    pub fn new(process_noise: f64, measurement_noise: f64) -> Self {
        AzimuthKalmanTracker {
            process_noise: process_noise.max(1e-9),
            measurement_noise: measurement_noise.max(1e-9),
            state: None,
            covariance: [100.0, 0.0, 0.0, 100.0],
        }
    }

    /// Returns the current state, if any update has been received.
    pub fn state(&self) -> Option<TrackState> {
        self.state
    }

    /// Resets the tracker to its uninitialized state.
    pub fn reset(&mut self) {
        self.state = None;
        self.covariance = [100.0, 0.0, 0.0, 100.0];
    }

    /// Incorporates one azimuth measurement (degrees) and returns the smoothed state.
    pub fn update(&mut self, measurement_deg: f64) -> TrackState {
        let measurement = wrap_deg(measurement_deg);
        let Some(prev) = self.state else {
            let state = TrackState {
                azimuth_deg: measurement,
                rate_deg_per_step: 0.0,
            };
            self.state = Some(state);
            return state;
        };
        // Predict.
        let pred_az = prev.azimuth_deg + prev.rate_deg_per_step;
        let pred_rate = prev.rate_deg_per_step;
        let [p00, p01, p10, p11] = self.covariance;
        // P = F P F' + Q with F = [[1, 1], [0, 1]].
        let q = self.process_noise;
        let np00 = p00 + p01 + p10 + p11 + q * 0.25;
        let np01 = p01 + p11 + q * 0.5;
        let np10 = p10 + p11 + q * 0.5;
        let np11 = p11 + q;
        // Update with the measurement (H = [1, 0]), handling wrap-around in the
        // innovation.
        let innovation = wrap_deg(measurement - pred_az);
        let s = np00 + self.measurement_noise;
        let k0 = np00 / s;
        let k1 = np10 / s;
        let new_az = wrap_deg(pred_az + k0 * innovation);
        let new_rate = pred_rate + k1 * innovation;
        self.covariance = [
            (1.0 - k0) * np00,
            (1.0 - k0) * np01,
            np10 - k1 * np00,
            np11 - k1 * np01,
        ];
        let state = TrackState {
            azimuth_deg: new_az,
            rate_deg_per_step: new_rate,
        };
        self.state = Some(state);
        state
    }

    /// Advances the filter one step **without** a measurement: the state moves
    /// along its constant-velocity prediction and the covariance inflates by the
    /// process noise. Returns the predicted state, or `None` if the filter has
    /// never been initialized by an update.
    ///
    /// This is the coasting step of multi-target tracking
    /// ([`crate::multitrack`]): a track whose source is momentarily occluded (or
    /// merged with another SRP lobe) keeps moving along its estimated rate until
    /// a gated measurement re-associates with it or it times out.
    pub fn coast(&mut self) -> Option<TrackState> {
        let prev = self.state?;
        let [p00, p01, p10, p11] = self.covariance;
        let q = self.process_noise;
        self.covariance = [
            p00 + p01 + p10 + p11 + q * 0.25,
            p01 + p11 + q * 0.5,
            p10 + p11 + q * 0.5,
            p11 + q,
        ];
        let state = TrackState {
            azimuth_deg: wrap_deg(prev.azimuth_deg + prev.rate_deg_per_step),
            rate_deg_per_step: prev.rate_deg_per_step,
        };
        self.state = Some(state);
        Some(state)
    }

    /// Processes a whole sequence of measurements, returning the smoothed azimuths.
    pub fn smooth(&mut self, measurements_deg: &[f64]) -> Vec<f64> {
        measurements_deg
            .iter()
            .map(|&m| self.update(m).azimuth_deg)
            .collect()
    }
}

/// Wraps an angle in degrees to `(-180, 180]`.
pub fn wrap_deg(angle: f64) -> f64 {
    let mut a = angle % 360.0;
    if a > 180.0 {
        a -= 360.0;
    }
    if a <= -180.0 {
        a += 360.0;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{angular_error_deg, mean_angular_error_deg};

    #[test]
    fn wrapping_behaviour() {
        assert_eq!(wrap_deg(190.0), -170.0);
        assert_eq!(wrap_deg(-190.0), 170.0);
        assert_eq!(wrap_deg(360.0), 0.0);
        assert_eq!(wrap_deg(180.0), 180.0);
    }

    #[test]
    fn tracker_reduces_measurement_noise() {
        // Ground truth: azimuth moves linearly from -60 to +60 degrees.
        let steps = 120;
        let truth: Vec<f64> = (0..steps).map(|i| -60.0 + i as f64).collect();
        // Deterministic pseudo-noise.
        let noisy: Vec<f64> = truth
            .iter()
            .enumerate()
            .map(|(i, &t)| t + 12.0 * ((i as f64 * 2.399).sin()))
            .collect();
        let mut tracker = AzimuthKalmanTracker::new(0.5, 144.0);
        let smoothed = tracker.smooth(&noisy);
        // Compare errors over the second half (after convergence).
        let raw_err = mean_angular_error_deg(&noisy[60..], &truth[60..]);
        let smooth_err = mean_angular_error_deg(&smoothed[60..], &truth[60..]);
        assert!(
            smooth_err < raw_err * 0.7,
            "smoothed {smooth_err} vs raw {raw_err}"
        );
    }

    #[test]
    fn tracker_follows_wraparound_crossing() {
        // Azimuth increases through +180 and wraps to -180.
        let truth: Vec<f64> = (0..80).map(|i| wrap_deg(150.0 + i as f64)).collect();
        let mut tracker = AzimuthKalmanTracker::new(1.0, 4.0);
        let smoothed = tracker.smooth(&truth);
        let err = mean_angular_error_deg(&smoothed[40..], &truth[40..]);
        assert!(err < 5.0, "error across the wrap {err}");
    }

    #[test]
    fn first_update_initializes_state() {
        let mut tracker = AzimuthKalmanTracker::new(1.0, 10.0);
        assert!(tracker.state().is_none());
        let s = tracker.update(42.0);
        assert_eq!(s.azimuth_deg, 42.0);
        assert_eq!(s.rate_deg_per_step, 0.0);
        tracker.reset();
        assert!(tracker.state().is_none());
    }

    #[test]
    fn innovation_wraps_across_plus_minus_180() {
        // Regression pin: a measurement sequence stepping over the ±180° seam
        // (178° then -179°) must be treated as a +3° innovation through the
        // seam, never as a -357° swing that drags the state through 0°.
        let mut tracker = AzimuthKalmanTracker::new(1.0, 25.0);
        tracker.update(178.0);
        let state = tracker.update(-179.0);
        // The smoothed azimuth stays in the seam neighbourhood...
        assert!(
            angular_error_deg(state.azimuth_deg, 180.0) < 3.0,
            "state spun to {}",
            state.azimuth_deg
        );
        // ...and the estimated rate is the small positive step, not a full turn.
        assert!(
            state.rate_deg_per_step.abs() < 10.0,
            "rate exploded to {}",
            state.rate_deg_per_step
        );
        // Continuing around the circle keeps tracking tightly through the wrap.
        for i in 0..40 {
            let truth = wrap_deg(-179.0 + 3.0 * (i + 1) as f64);
            let s = tracker.update(truth);
            assert!(
                angular_error_deg(s.azimuth_deg, truth) < 8.0,
                "step {i}: tracked {} vs truth {truth}",
                s.azimuth_deg
            );
        }
    }

    #[test]
    fn coast_advances_prediction_and_inflates_covariance() {
        let mut tracker = AzimuthKalmanTracker::new(0.5, 1.0);
        assert_eq!(tracker.coast(), None, "uninitialized filter cannot coast");
        for i in 0..30 {
            tracker.update(i as f64 * 2.0);
        }
        let before = tracker.state().unwrap();
        let coasted = tracker.coast().unwrap();
        assert!(
            (coasted.azimuth_deg - (before.azimuth_deg + before.rate_deg_per_step)).abs() < 1e-9
        );
        assert_eq!(coasted.rate_deg_per_step, before.rate_deg_per_step);
        // Coasting across the seam wraps the prediction.
        let mut seam = AzimuthKalmanTracker::new(0.5, 1.0);
        for i in 0..40 {
            seam.update(wrap_deg(170.0 + 3.0 * i as f64));
        }
        let prev = seam.state().unwrap();
        let next = seam.coast().unwrap();
        assert!((-180.0..=180.0).contains(&next.azimuth_deg));
        assert!(
            angular_error_deg(next.azimuth_deg, prev.azimuth_deg + prev.rate_deg_per_step) < 1e-9
        );
    }

    #[test]
    fn estimated_rate_matches_true_motion() {
        let mut tracker = AzimuthKalmanTracker::new(0.5, 1.0);
        for i in 0..100 {
            tracker.update(i as f64 * 2.0);
        }
        let state = tracker.state().unwrap();
        assert!(
            (state.rate_deg_per_step - 2.0).abs() < 0.5,
            "rate {}",
            state.rate_deg_per_step
        );
        assert!(angular_error_deg(state.azimuth_deg, 198.0) < 5.0);
    }
}
