//! Error type for the localization crate.

use ispot_dsp::DspError;
use ispot_features::FeatureError;
use ispot_nn::NnError;
use std::error::Error;
use std::fmt;

/// Errors produced by the localization front-ends and back-ends.
#[derive(Debug, Clone, PartialEq)]
pub enum SslError {
    /// A configuration parameter is invalid.
    InvalidConfig {
        /// Name of the offending parameter.
        name: &'static str,
        /// Description of the violated constraint.
        reason: String,
    },
    /// The multichannel input does not match the array the processor was built for.
    ChannelMismatch {
        /// Number of channels expected (the array size).
        expected: usize,
        /// Number of channels supplied.
        actual: usize,
    },
    /// A caller-provided scratch buffer does not match the processor's geometry.
    ///
    /// The allocation-free compute paths require scratch buffers pre-sized by the
    /// processor's `make_scratch`; they refuse to grow buffers on the hot path.
    ScratchSize {
        /// Name of the offending scratch buffer.
        buffer: &'static str,
        /// Length the processor requires.
        expected: usize,
        /// Length actually supplied.
        actual: usize,
    },
    /// A low-level DSP operation failed.
    Dsp(DspError),
    /// A feature-extraction step failed.
    Feature(FeatureError),
    /// A neural-network step failed.
    Nn(NnError),
}

impl fmt::Display for SslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SslError::InvalidConfig { name, reason } => {
                write!(f, "invalid configuration `{name}`: {reason}")
            }
            SslError::ChannelMismatch { expected, actual } => {
                write!(f, "channel mismatch: expected {expected}, got {actual}")
            }
            SslError::ScratchSize {
                buffer,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "scratch buffer `{buffer}` has length {actual}, expected {expected} \
                     (create the scratch with the processor's make_scratch)"
                )
            }
            SslError::Dsp(e) => write!(f, "dsp error: {e}"),
            SslError::Feature(e) => write!(f, "feature error: {e}"),
            SslError::Nn(e) => write!(f, "neural network error: {e}"),
        }
    }
}

impl Error for SslError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SslError::Dsp(e) => Some(e),
            SslError::Feature(e) => Some(e),
            SslError::Nn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DspError> for SslError {
    fn from(e: DspError) -> Self {
        SslError::Dsp(e)
    }
}

impl From<FeatureError> for SslError {
    fn from(e: FeatureError) -> Self {
        SslError::Feature(e)
    }
}

impl From<NnError> for SslError {
    fn from(e: NnError) -> Self {
        SslError::Nn(e)
    }
}

impl SslError {
    /// Convenience constructor for [`SslError::InvalidConfig`].
    pub fn invalid_config(name: &'static str, reason: impl Into<String>) -> Self {
        SslError::InvalidConfig {
            name,
            reason: reason.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        assert!(SslError::invalid_config("grid", "empty")
            .to_string()
            .contains("grid"));
        let e = SslError::ChannelMismatch {
            expected: 6,
            actual: 2,
        };
        assert!(e.to_string().contains('6'));
        let e = SslError::ScratchSize {
            buffer: "lag_tables",
            expected: 765,
            actual: 0,
        };
        assert!(e.to_string().contains("lag_tables"));
        assert!(e.to_string().contains("765"));
        let wrapped: SslError = NnError::EmptyModel.into();
        assert!(Error::source(&wrapped).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SslError>();
    }
}
