//! # ispot-sed
//!
//! Emergency sound event detection for automotive scenarios.
//!
//! This crate reproduces the dataset-generation protocol and detection task of Sec.
//! IV-A of the I-SPOT paper:
//!
//! * parametric synthesisers for the three siren patterns studied in the emergency-
//!   vehicle-detection literature (**hi-low**, **wail**, **yelp**), car horns and urban
//!   background noise (substituting for the freesound.org recordings used by the
//!   authors, which are not redistributable);
//! * a dataset generator that moves each event source along a random trajectory through
//!   the road-acoustics simulator and mixes it with background noise at a random SNR in
//!   `[-30, 0]` dB — the paper's 15 000-sample protocol;
//! * a CNN detector over log-mel features plus two classical baselines (band-energy and
//!   spectral-template matching);
//! * classification metrics (accuracy, per-class precision/recall/F1, confusion matrix).
//!
//! # Example
//!
//! ```
//! use ispot_sed::prelude::*;
//!
//! # fn main() -> Result<(), ispot_sed::SedError> {
//! // Synthesize one second of a "wail" siren and verify the detector input pipeline.
//! let fs = 16_000.0;
//! let siren = SirenSynthesizer::new(SirenKind::Wail, fs).synthesize(1.0);
//! assert_eq!(siren.len(), 16_000);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod baseline;
pub mod dataset;
pub mod detector;
pub mod error;
pub mod labels;
pub mod metrics;
pub mod noise;
pub mod sirens;

pub use error::SedError;
pub use labels::EventClass;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::baseline::{EnergyDetector, SpectralTemplateDetector};
    pub use crate::dataset::{Dataset, DatasetConfig, DatasetSample};
    pub use crate::detector::{CnnDetector, DetectorConfig};
    pub use crate::error::SedError;
    pub use crate::labels::EventClass;
    pub use crate::metrics::ClassificationReport;
    pub use crate::noise::UrbanNoiseSynthesizer;
    pub use crate::sirens::{CarHornSynthesizer, SirenKind, SirenSynthesizer};
}
