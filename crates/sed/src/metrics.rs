//! Classification metrics for the detection task.

use crate::error::SedError;
use crate::labels::EventClass;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A confusion matrix and the derived metrics for the 5-class detection task.
///
/// # Example
///
/// ```
/// use ispot_sed::{labels::EventClass, metrics::ClassificationReport};
///
/// # fn main() -> Result<(), ispot_sed::SedError> {
/// let truth = vec![EventClass::CarHorn, EventClass::Background];
/// let pred = vec![EventClass::CarHorn, EventClass::CarHorn];
/// let report = ClassificationReport::from_predictions(&truth, &pred)?;
/// assert_eq!(report.accuracy(), 0.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassificationReport {
    /// `confusion[t][p]` counts samples of true class `t` predicted as class `p`.
    confusion: [[usize; EventClass::COUNT]; EventClass::COUNT],
    total: usize,
}

impl ClassificationReport {
    /// Builds a report from parallel slices of ground truth and predictions.
    ///
    /// # Errors
    ///
    /// Returns an error if the slices are empty or differ in length.
    pub fn from_predictions(
        truth: &[EventClass],
        predictions: &[EventClass],
    ) -> Result<Self, SedError> {
        if truth.is_empty() {
            return Err(SedError::EmptyDataset);
        }
        if truth.len() != predictions.len() {
            return Err(SedError::invalid_config(
                "predictions",
                format!(
                    "expected {} predictions, got {}",
                    truth.len(),
                    predictions.len()
                ),
            ));
        }
        let mut confusion = [[0usize; EventClass::COUNT]; EventClass::COUNT];
        for (t, p) in truth.iter().zip(predictions) {
            confusion[t.index()][p.index()] += 1;
        }
        Ok(ClassificationReport {
            confusion,
            total: truth.len(),
        })
    }

    /// Raw confusion matrix (`[true][predicted]`).
    pub fn confusion_matrix(&self) -> &[[usize; EventClass::COUNT]; EventClass::COUNT] {
        &self.confusion
    }

    /// Number of scored samples.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let correct: usize = (0..EventClass::COUNT).map(|i| self.confusion[i][i]).sum();
        correct as f64 / self.total.max(1) as f64
    }

    /// Precision for one class (1.0 when the class was never predicted).
    pub fn precision(&self, class: EventClass) -> f64 {
        let p = class.index();
        let tp = self.confusion[p][p];
        let predicted: usize = (0..EventClass::COUNT).map(|t| self.confusion[t][p]).sum();
        if predicted == 0 {
            1.0
        } else {
            tp as f64 / predicted as f64
        }
    }

    /// Recall for one class (1.0 when the class never occurs in the ground truth).
    pub fn recall(&self, class: EventClass) -> f64 {
        let t = class.index();
        let tp = self.confusion[t][t];
        let actual: usize = self.confusion[t].iter().sum();
        if actual == 0 {
            1.0
        } else {
            tp as f64 / actual as f64
        }
    }

    /// F1 score for one class.
    pub fn f1(&self, class: EventClass) -> f64 {
        let p = self.precision(class);
        let r = self.recall(class);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Macro-averaged F1 over the classes that actually occur in the ground truth.
    pub fn macro_f1(&self) -> f64 {
        let mut sum = 0.0;
        let mut count = 0;
        for class in EventClass::ALL {
            let occurs: usize = self.confusion[class.index()].iter().sum();
            if occurs > 0 {
                sum += self.f1(class);
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }

    /// Binary event-detection accuracy: every siren/horn class collapsed to "event",
    /// background to "no event". This is the figure of merit used when comparing the
    /// CNN against the classical energy detector.
    pub fn event_detection_accuracy(&self) -> f64 {
        let mut correct = 0usize;
        for t in 0..EventClass::COUNT {
            for p in 0..EventClass::COUNT {
                let truth_event = EventClass::ALL[t].is_event();
                let pred_event = EventClass::ALL[p].is_event();
                if truth_event == pred_event {
                    correct += self.confusion[t][p];
                }
            }
        }
        correct as f64 / self.total.max(1) as f64
    }

    /// Binary event counts `(tp, fp, fn)` with every siren/horn class collapsed to
    /// "event" and background to "no event".
    fn event_counts(&self) -> (usize, usize, usize) {
        let (mut tp, mut fp, mut fn_) = (0usize, 0usize, 0usize);
        for t in 0..EventClass::COUNT {
            for p in 0..EventClass::COUNT {
                let truth_event = EventClass::ALL[t].is_event();
                let pred_event = EventClass::ALL[p].is_event();
                match (truth_event, pred_event) {
                    (true, true) => tp += self.confusion[t][p],
                    (false, true) => fp += self.confusion[t][p],
                    (true, false) => fn_ += self.confusion[t][p],
                    (false, false) => {}
                }
            }
        }
        (tp, fp, fn_)
    }

    /// Binary event precision: of the frames flagged as an event (any siren/horn
    /// class), the fraction whose ground truth is an event. 1.0 when nothing was
    /// flagged.
    pub fn event_precision(&self) -> f64 {
        let (tp, fp, _) = self.event_counts();
        if tp + fp == 0 {
            1.0
        } else {
            tp as f64 / (tp + fp) as f64
        }
    }

    /// Binary event recall: of the ground-truth event frames, the fraction flagged
    /// as an event of any class. 1.0 when no event frames occur.
    pub fn event_recall(&self) -> f64 {
        let (tp, _, fn_) = self.event_counts();
        if tp + fn_ == 0 {
            1.0
        } else {
            tp as f64 / (tp + fn_) as f64
        }
    }

    /// Binary event-detection F1: harmonic mean of [`event_precision`] and
    /// [`event_recall`]. This is the per-scene detection figure reported by the
    /// scenario evaluation harness, where "did we flag the siren at all" matters
    /// before "which siren was it".
    ///
    /// [`event_precision`]: ClassificationReport::event_precision
    /// [`event_recall`]: ClassificationReport::event_recall
    pub fn event_f1(&self) -> f64 {
        let p = self.event_precision();
        let r = self.event_recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

impl fmt::Display for ClassificationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "accuracy: {:.3}  macro-F1: {:.3}  event-detection: {:.3}",
            self.accuracy(),
            self.macro_f1(),
            self.event_detection_accuracy()
        )?;
        writeln!(f, "{:>12} | precision  recall  f1", "class")?;
        for class in EventClass::ALL {
            writeln!(
                f,
                "{:>12} |   {:.3}     {:.3}   {:.3}",
                class.label(),
                self.precision(class),
                self.recall(class),
                self.f1(class)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions_give_perfect_metrics() {
        let truth: Vec<EventClass> = EventClass::ALL.iter().copied().cycle().take(20).collect();
        let report = ClassificationReport::from_predictions(&truth, &truth).unwrap();
        assert_eq!(report.accuracy(), 1.0);
        assert_eq!(report.macro_f1(), 1.0);
        assert_eq!(report.event_detection_accuracy(), 1.0);
        for class in EventClass::ALL {
            assert_eq!(report.precision(class), 1.0);
            assert_eq!(report.recall(class), 1.0);
        }
    }

    #[test]
    fn known_confusion_matrix_metrics() {
        // 3 horns: 2 correct, 1 predicted background; 1 background predicted horn.
        let truth = vec![
            EventClass::CarHorn,
            EventClass::CarHorn,
            EventClass::CarHorn,
            EventClass::Background,
        ];
        let pred = vec![
            EventClass::CarHorn,
            EventClass::CarHorn,
            EventClass::Background,
            EventClass::CarHorn,
        ];
        let r = ClassificationReport::from_predictions(&truth, &pred).unwrap();
        assert_eq!(r.accuracy(), 0.5);
        assert!((r.recall(EventClass::CarHorn) - 2.0 / 3.0).abs() < 1e-12);
        assert!((r.precision(EventClass::CarHorn) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.recall(EventClass::Background), 0.0);
        assert_eq!(r.event_detection_accuracy(), 0.5);
        assert_eq!(r.total(), 4);
    }

    #[test]
    fn event_detection_ignores_between_event_confusions() {
        // Predicting "wail" for a "yelp" is wrong classification but correct detection.
        let truth = vec![EventClass::YelpSiren, EventClass::Background];
        let pred = vec![EventClass::WailSiren, EventClass::Background];
        let r = ClassificationReport::from_predictions(&truth, &pred).unwrap();
        assert_eq!(r.accuracy(), 0.5);
        assert_eq!(r.event_detection_accuracy(), 1.0);
        assert_eq!(r.event_f1(), 1.0);
    }

    #[test]
    fn event_f1_from_known_counts() {
        // Truth: 4 event frames, 2 background. Predictions: 3 of the events flagged
        // (one as the wrong siren — still a detection), 1 missed, 1 background
        // false-flagged. tp = 3, fp = 1, fn = 1.
        let truth = vec![
            EventClass::WailSiren,
            EventClass::WailSiren,
            EventClass::YelpSiren,
            EventClass::CarHorn,
            EventClass::Background,
            EventClass::Background,
        ];
        let pred = vec![
            EventClass::WailSiren,
            EventClass::HiLowSiren,
            EventClass::Background,
            EventClass::CarHorn,
            EventClass::CarHorn,
            EventClass::Background,
        ];
        let r = ClassificationReport::from_predictions(&truth, &pred).unwrap();
        assert!((r.event_precision() - 0.75).abs() < 1e-12);
        assert!((r.event_recall() - 0.75).abs() < 1e-12);
        assert!((r.event_f1() - 0.75).abs() < 1e-12);
        // All-background truth and predictions: vacuous success, not a divide-by-zero.
        let quiet = vec![EventClass::Background; 3];
        let r = ClassificationReport::from_predictions(&quiet, &quiet).unwrap();
        assert_eq!(r.event_precision(), 1.0);
        assert_eq!(r.event_recall(), 1.0);
        assert_eq!(r.event_f1(), 1.0);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(ClassificationReport::from_predictions(&[], &[]).is_err());
        assert!(ClassificationReport::from_predictions(
            &[EventClass::CarHorn],
            &[EventClass::CarHorn, EventClass::Background]
        )
        .is_err());
    }

    #[test]
    fn display_contains_all_class_labels() {
        let truth = vec![EventClass::CarHorn, EventClass::Background];
        let r = ClassificationReport::from_predictions(&truth, &truth).unwrap();
        let text = r.to_string();
        for class in EventClass::ALL {
            assert!(text.contains(class.label()));
        }
    }
}
