//! Event classes for the emergency-sound detection task.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The sound classes of the I-SPOT emergency-sound dataset (Sec. IV-A of the paper):
/// three siren patterns, car horns, and background (traffic/urban noise only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventClass {
    /// Two-tone "hi-low" siren (common on European emergency vehicles).
    HiLowSiren,
    /// Slow-sweep "wail" siren.
    WailSiren,
    /// Fast-sweep "yelp" siren.
    YelpSiren,
    /// Car horn.
    CarHorn,
    /// No event of interest: urban/traffic background only.
    Background,
}

impl EventClass {
    /// All classes in index order.
    pub const ALL: [EventClass; 5] = [
        EventClass::HiLowSiren,
        EventClass::WailSiren,
        EventClass::YelpSiren,
        EventClass::CarHorn,
        EventClass::Background,
    ];

    /// Number of classes.
    pub const COUNT: usize = 5;

    /// Numeric index of the class (stable, used as the network target).
    pub fn index(self) -> usize {
        match self {
            EventClass::HiLowSiren => 0,
            EventClass::WailSiren => 1,
            EventClass::YelpSiren => 2,
            EventClass::CarHorn => 3,
            EventClass::Background => 4,
        }
    }

    /// Class for a numeric index, if valid.
    pub fn from_index(index: usize) -> Option<EventClass> {
        EventClass::ALL.get(index).copied()
    }

    /// Returns true for classes that represent an emergency event (anything but
    /// background).
    pub fn is_event(self) -> bool {
        self != EventClass::Background
    }

    /// Short lowercase label, e.g. `"hi-low"`.
    pub fn label(self) -> &'static str {
        match self {
            EventClass::HiLowSiren => "hi-low",
            EventClass::WailSiren => "wail",
            EventClass::YelpSiren => "yelp",
            EventClass::CarHorn => "horn",
            EventClass::Background => "background",
        }
    }
}

impl fmt::Display for EventClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One labeled activity interval in a scene timeline: `class` is audible from
/// `start_s` to `end_s` (seconds of scene time).
///
/// A road scene's ground truth is a list of these — one per event-emitting source,
/// derived from the source's onset time and signal length.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LabeledInterval {
    /// The sound class audible during the interval.
    pub class: EventClass,
    /// Interval start in seconds.
    pub start_s: f64,
    /// Interval end in seconds (exclusive).
    pub end_s: f64,
}

impl LabeledInterval {
    /// Creates an interval; `end_s` below `start_s` is clamped to an empty interval.
    pub fn new(class: EventClass, start_s: f64, end_s: f64) -> Self {
        LabeledInterval {
            class,
            start_s,
            end_s: end_s.max(start_s),
        }
    }

    /// Overlap (seconds) between this interval and `[from_s, to_s)`.
    pub fn overlap_s(&self, from_s: f64, to_s: f64) -> f64 {
        (self.end_s.min(to_s) - self.start_s.max(from_s)).max(0.0)
    }

    /// Interval length in seconds.
    pub fn duration_s(&self) -> f64 {
        self.end_s - self.start_s
    }
}

/// Generates one ground-truth [`EventClass`] per analysis frame from a scene
/// timeline, matching the pipeline's framing (`frame_len` samples every `hop`).
///
/// Frame `i` spans `[i * hop, i * hop + frame_len)` samples. It is labeled with the
/// event class that overlaps it the most, provided that overlap covers at least half
/// the frame **or** half the event interval (so a transient much shorter than a frame
/// still labels the frame it lands in); otherwise the frame is
/// [`EventClass::Background`]. Background intervals in the timeline are ignored —
/// background is the absence of any event.
///
/// # Example
///
/// ```
/// use ispot_sed::labels::{frame_labels, EventClass, LabeledInterval};
///
/// let fs = 16_000.0;
/// // A siren audible from 0.5 s to 1.5 s of a 2 s scene.
/// let timeline = [LabeledInterval::new(EventClass::WailSiren, 0.5, 1.5)];
/// let labels = frame_labels(&timeline, 16, 2048, 2048, fs);
/// assert_eq!(labels.len(), 16);
/// assert_eq!(labels[0], EventClass::Background);
/// assert_eq!(labels[8], EventClass::WailSiren);
/// ```
pub fn frame_labels(
    timeline: &[LabeledInterval],
    num_frames: usize,
    frame_len: usize,
    hop: usize,
    fs: f64,
) -> Vec<EventClass> {
    let frame_s = frame_len as f64 / fs;
    (0..num_frames)
        .map(|i| {
            let from_s = i as f64 * hop as f64 / fs;
            let to_s = from_s + frame_s;
            let mut best = EventClass::Background;
            let mut best_overlap = 0.0;
            for interval in timeline {
                if interval.class == EventClass::Background {
                    continue;
                }
                let overlap = interval.overlap_s(from_s, to_s);
                let needed = 0.5 * frame_s.min(interval.duration_s());
                if overlap > best_overlap && overlap >= needed && overlap > 0.0 {
                    best_overlap = overlap;
                    best = interval.class;
                }
            }
            best
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_round_trip() {
        for class in EventClass::ALL {
            assert_eq!(EventClass::from_index(class.index()), Some(class));
        }
        assert_eq!(EventClass::from_index(99), None);
        assert_eq!(EventClass::ALL.len(), EventClass::COUNT);
    }

    #[test]
    fn frame_labels_follow_interval_overlap() {
        let fs = 1000.0;
        // 10 frames of 100 samples, hop 100: scene spans [0, 1) s.
        let timeline = [
            LabeledInterval::new(EventClass::YelpSiren, 0.2, 0.6),
            LabeledInterval::new(EventClass::Background, 0.0, 1.0), // ignored
        ];
        let labels = frame_labels(&timeline, 10, 100, 100, fs);
        assert_eq!(labels.len(), 10);
        assert_eq!(labels[0], EventClass::Background);
        assert_eq!(labels[1], EventClass::Background); // [0.1, 0.2): no overlap
        for (i, label) in labels.iter().enumerate().take(6).skip(2) {
            assert_eq!(*label, EventClass::YelpSiren, "frame {i}");
        }
        assert_eq!(labels[6], EventClass::Background);
    }

    #[test]
    fn short_transients_still_label_their_frame() {
        let fs = 1000.0;
        // A 30 ms horn inside a 100 ms frame: covers less than half the frame but
        // all of itself, so the frame is labeled.
        let timeline = [LabeledInterval::new(EventClass::CarHorn, 0.43, 0.46)];
        let labels = frame_labels(&timeline, 10, 100, 100, fs);
        assert_eq!(labels[4], EventClass::CarHorn);
        assert_eq!(labels[3], EventClass::Background);
        assert_eq!(labels[5], EventClass::Background);
    }

    #[test]
    fn overlapping_events_pick_the_larger_overlap() {
        let fs = 1000.0;
        let timeline = [
            LabeledInterval::new(EventClass::WailSiren, 0.0, 1.0),
            LabeledInterval::new(EventClass::CarHorn, 0.35, 0.45),
        ];
        // Frame [0.3, 0.4): wail covers all 0.1 s, horn covers 0.05 s.
        let labels = frame_labels(&timeline, 10, 100, 100, fs);
        assert_eq!(labels[3], EventClass::WailSiren);
        // Degenerate interval never labels anything.
        let empty = [LabeledInterval::new(EventClass::CarHorn, 0.5, 0.2)];
        assert!(frame_labels(&empty, 10, 100, 100, fs)
            .iter()
            .all(|&c| c == EventClass::Background));
    }

    #[test]
    fn event_flag_and_labels() {
        assert!(EventClass::WailSiren.is_event());
        assert!(!EventClass::Background.is_event());
        assert_eq!(EventClass::CarHorn.to_string(), "horn");
        // Labels are unique.
        let mut labels: Vec<&str> = EventClass::ALL.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), EventClass::COUNT);
    }
}
