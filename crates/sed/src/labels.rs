//! Event classes for the emergency-sound detection task.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The sound classes of the I-SPOT emergency-sound dataset (Sec. IV-A of the paper):
/// three siren patterns, car horns, and background (traffic/urban noise only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventClass {
    /// Two-tone "hi-low" siren (common on European emergency vehicles).
    HiLowSiren,
    /// Slow-sweep "wail" siren.
    WailSiren,
    /// Fast-sweep "yelp" siren.
    YelpSiren,
    /// Car horn.
    CarHorn,
    /// No event of interest: urban/traffic background only.
    Background,
}

impl EventClass {
    /// All classes in index order.
    pub const ALL: [EventClass; 5] = [
        EventClass::HiLowSiren,
        EventClass::WailSiren,
        EventClass::YelpSiren,
        EventClass::CarHorn,
        EventClass::Background,
    ];

    /// Number of classes.
    pub const COUNT: usize = 5;

    /// Numeric index of the class (stable, used as the network target).
    pub fn index(self) -> usize {
        match self {
            EventClass::HiLowSiren => 0,
            EventClass::WailSiren => 1,
            EventClass::YelpSiren => 2,
            EventClass::CarHorn => 3,
            EventClass::Background => 4,
        }
    }

    /// Class for a numeric index, if valid.
    pub fn from_index(index: usize) -> Option<EventClass> {
        EventClass::ALL.get(index).copied()
    }

    /// Returns true for classes that represent an emergency event (anything but
    /// background).
    pub fn is_event(self) -> bool {
        self != EventClass::Background
    }

    /// Short lowercase label, e.g. `"hi-low"`.
    pub fn label(self) -> &'static str {
        match self {
            EventClass::HiLowSiren => "hi-low",
            EventClass::WailSiren => "wail",
            EventClass::YelpSiren => "yelp",
            EventClass::CarHorn => "horn",
            EventClass::Background => "background",
        }
    }
}

impl fmt::Display for EventClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_round_trip() {
        for class in EventClass::ALL {
            assert_eq!(EventClass::from_index(class.index()), Some(class));
        }
        assert_eq!(EventClass::from_index(99), None);
        assert_eq!(EventClass::ALL.len(), EventClass::COUNT);
    }

    #[test]
    fn event_flag_and_labels() {
        assert!(EventClass::WailSiren.is_event());
        assert!(!EventClass::Background.is_event());
        assert_eq!(EventClass::CarHorn.to_string(), "horn");
        // Labels are unique.
        let mut labels: Vec<&str> = EventClass::ALL.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), EventClass::COUNT);
    }
}
