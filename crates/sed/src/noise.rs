//! Urban / traffic background-noise synthesis.
//!
//! The paper's dataset mixes events with 2.5 hours of urban ambience and traffic noise;
//! this synthesiser produces a statistically similar background: low-frequency traffic
//! rumble (filtered brown/pink noise), broadband "passing car" swells and wind-like
//! gusts, all seeded and therefore reproducible.

use ispot_dsp::biquad::{Biquad, BiquadDesign};
use ispot_dsp::generator::{NoiseKind, NoiseSource};

/// Synthesises urban background-noise clips.
///
/// # Example
///
/// ```
/// use ispot_sed::noise::UrbanNoiseSynthesizer;
///
/// let noise = UrbanNoiseSynthesizer::new(16_000.0, 7).synthesize(0.5);
/// assert_eq!(noise.len(), 8000);
/// // Non-silent, bounded output.
/// assert!(noise.iter().any(|x| x.abs() > 0.01));
/// assert!(noise.iter().all(|x| x.abs() <= 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct UrbanNoiseSynthesizer {
    fs: f64,
    seed: u64,
    /// Relative level of the low-frequency traffic rumble.
    rumble_level: f64,
    /// Relative level of the broadband component.
    broadband_level: f64,
    /// Relative level of the slowly gusting wind-like component.
    wind_level: f64,
}

impl UrbanNoiseSynthesizer {
    /// Creates a synthesiser for sampling rate `fs` with the given random `seed`.
    pub fn new(fs: f64, seed: u64) -> Self {
        UrbanNoiseSynthesizer {
            fs,
            seed,
            rumble_level: 1.0,
            broadband_level: 0.35,
            wind_level: 0.5,
        }
    }

    /// Adjusts the mixture levels (rumble, broadband, wind).
    pub fn with_levels(mut self, rumble: f64, broadband: f64, wind: f64) -> Self {
        self.rumble_level = rumble.max(0.0);
        self.broadband_level = broadband.max(0.0);
        self.wind_level = wind.max(0.0);
        self
    }

    /// Synthesises `duration_s` seconds of background noise, peak-normalized to 0.9.
    pub fn synthesize(&self, duration_s: f64) -> Vec<f64> {
        let n = (duration_s * self.fs).max(0.0) as usize;
        if n == 0 {
            return Vec::new();
        }
        // Traffic rumble: brown noise low-passed at 300 Hz.
        let mut rumble_lp = Biquad::design(
            BiquadDesign::Lowpass {
                freq_hz: 300.0,
                q: 0.707,
            },
            self.fs,
        )
        .expect("valid filter parameters");
        let rumble: Vec<f64> = NoiseSource::new(NoiseKind::Brown, self.seed)
            .take(n)
            .map(|x| rumble_lp.process(x))
            .collect();
        // Broadband tyre/asphalt hiss: pink noise band-passed 500-4000 Hz.
        let mut hiss_hp = Biquad::design(
            BiquadDesign::Highpass {
                freq_hz: 500.0,
                q: 0.707,
            },
            self.fs,
        )
        .expect("valid filter parameters");
        let mut hiss_lp = Biquad::design(
            BiquadDesign::Lowpass {
                freq_hz: 4000.0,
                q: 0.707,
            },
            self.fs,
        )
        .expect("valid filter parameters");
        let hiss: Vec<f64> = NoiseSource::new(NoiseKind::Pink, self.seed ^ 0xA5A5)
            .take(n)
            .map(|x| hiss_lp.process(hiss_hp.process(x)))
            .collect();
        // Wind gusts: pink noise with a slow (0.5 Hz-ish) amplitude modulation.
        let wind_raw: Vec<f64> = NoiseSource::new(NoiseKind::Pink, self.seed ^ 0x5A5A)
            .take(n)
            .collect();
        let mut lfo_noise = NoiseSource::new(NoiseKind::White, self.seed ^ 0x1234);
        let lfo_rate = 0.5;
        let mut lfo_phase = (lfo_noise.next().unwrap_or(0.0) + 1.0) * std::f64::consts::PI;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let gust = 0.5 + 0.5 * lfo_phase.sin();
            lfo_phase += 2.0 * std::f64::consts::PI * lfo_rate / self.fs;
            let sample = self.rumble_level * rumble[i]
                + self.broadband_level * hiss[i]
                + self.wind_level * gust * wind_raw[i];
            out.push(sample);
        }
        // Peak normalize.
        let peak = out.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
        if peak > 0.0 {
            let g = 0.9 / peak;
            for x in out.iter_mut() {
                *x *= g;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispot_dsp::fft::Fft;

    #[test]
    fn output_is_deterministic_per_seed() {
        let a = UrbanNoiseSynthesizer::new(16_000.0, 1).synthesize(0.25);
        let b = UrbanNoiseSynthesizer::new(16_000.0, 1).synthesize(0.25);
        let c = UrbanNoiseSynthesizer::new(16_000.0, 2).synthesize(0.25);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn spectrum_is_low_frequency_dominated() {
        let fs = 16_000.0;
        let x = UrbanNoiseSynthesizer::new(fs, 3).synthesize(1.0);
        let n = 8192;
        let spec = Fft::new(n).forward_real(&x[..n]).unwrap();
        let low: f64 = spec[1..n / 32].iter().map(|c| c.norm_sqr()).sum();
        let high: f64 = spec[n / 4..n / 2].iter().map(|c| c.norm_sqr()).sum();
        assert!(low > 3.0 * high, "low {low} vs high {high}");
    }

    #[test]
    fn levels_change_the_character() {
        let fs = 16_000.0;
        let rumble_only = UrbanNoiseSynthesizer::new(fs, 4)
            .with_levels(1.0, 0.0, 0.0)
            .synthesize(0.5);
        let hiss_only = UrbanNoiseSynthesizer::new(fs, 4)
            .with_levels(0.0, 1.0, 0.0)
            .synthesize(0.5);
        let n = 4096;
        let fft = Fft::new(n);
        let centroid = |x: &[f64]| {
            let spec = fft.forward_real(&x[..n]).unwrap();
            let mut num = 0.0;
            let mut den = 0.0;
            for (k, c) in spec.iter().take(n / 2).enumerate() {
                num += k as f64 * c.norm_sqr();
                den += c.norm_sqr();
            }
            num / den
        };
        assert!(centroid(&hiss_only) > 2.0 * centroid(&rumble_only));
    }

    #[test]
    fn zero_duration_gives_empty_output() {
        assert!(UrbanNoiseSynthesizer::new(16_000.0, 1)
            .synthesize(0.0)
            .is_empty());
    }

    #[test]
    fn output_is_bounded_and_finite() {
        let x = UrbanNoiseSynthesizer::new(16_000.0, 9).synthesize(0.5);
        assert!(x.iter().all(|v| v.is_finite() && v.abs() <= 0.9 + 1e-12));
    }
}
