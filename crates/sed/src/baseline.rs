//! Classical (non-neural) detection baselines.
//!
//! The paper motivates deep learning by its robustness to low SNR compared with
//! traditional signal processing (Sec. III). To reproduce that comparison, this module
//! provides two classical baselines:
//!
//! * [`EnergyDetector`] — binary event detection by thresholding the energy ratio in
//!   the siren/horn band (400–1800 Hz) against the full-band energy;
//! * [`SpectralTemplateDetector`] — multi-class nearest-template classification on
//!   time-averaged log-mel spectra built from clean synthesised prototypes.

use crate::dataset::Dataset;
use crate::error::SedError;
use crate::labels::EventClass;
use crate::metrics::ClassificationReport;
use crate::noise::UrbanNoiseSynthesizer;
use crate::sirens::synthesize_event;
use ispot_dsp::stft::StftScratch;
use ispot_features::error::FeatureError;
use ispot_features::mel::MelFilterbank;
use ispot_features::spectrogram::{SpectrogramConfig, SpectrogramExtractor, SpectrogramScale};

/// Binary detector thresholding the band-energy ratio.
#[derive(Debug, Clone)]
pub struct EnergyDetector {
    spectrogram: SpectrogramExtractor,
    sample_rate: f64,
    band_low_hz: f64,
    band_high_hz: f64,
    threshold: f64,
}

impl EnergyDetector {
    /// Creates a detector for audio at `sample_rate` with the default siren band
    /// (400–1800 Hz) and a threshold of 0.5.
    ///
    /// # Errors
    ///
    /// Returns an error if the spectrogram configuration is invalid (never for the
    /// defaults).
    pub fn new(sample_rate: f64) -> Result<Self, SedError> {
        let spectrogram = SpectrogramExtractor::new(SpectrogramConfig {
            frame_len: 512,
            hop: 256,
            fft_size: 512,
            scale: SpectrogramScale::Power,
            ..SpectrogramConfig::default()
        })?;
        Ok(EnergyDetector {
            spectrogram,
            sample_rate,
            band_low_hz: 400.0,
            band_high_hz: 1800.0,
            threshold: 0.5,
        })
    }

    /// Overrides the detection band.
    pub fn with_band(mut self, low_hz: f64, high_hz: f64) -> Self {
        self.band_low_hz = low_hz;
        self.band_high_hz = high_hz.max(low_hz + 1.0);
        self
    }

    /// Overrides the decision threshold on the band-energy ratio (0–1).
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        self.threshold = threshold;
        self
    }

    /// Returns the decision threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Computes the detection statistic: the fraction of spectral energy inside the
    /// siren/horn band, averaged over the loudest quarter of frames (sirens are
    /// intermittent, so peak frames carry the information).
    ///
    /// # Errors
    ///
    /// Returns an error if the clip is shorter than one analysis frame.
    pub fn band_energy_ratio(&self, audio: &[f64]) -> Result<f64, SedError> {
        let power = self.spectrogram.compute(audio)?;
        let bins = power.num_cols();
        let bin_hz = self.sample_rate / 2.0 / (bins as f64 - 1.0);
        let lo = (self.band_low_hz / bin_hz).floor() as usize;
        let hi = ((self.band_high_hz / bin_hz).ceil() as usize).min(bins - 1);
        let mut ratios: Vec<f64> = power
            .iter_rows()
            .map(|row| {
                let total: f64 = row.iter().sum();
                let band: f64 = row[lo..=hi].iter().sum();
                if total > 1e-15 {
                    band / total
                } else {
                    0.0
                }
            })
            .collect();
        ratios.sort_by(|a, b| b.total_cmp(a));
        let top = (ratios.len() / 4).max(1);
        Ok(ratios[..top].iter().sum::<f64>() / top as f64)
    }

    /// Returns true if an emergency event is detected in `audio`.
    ///
    /// # Errors
    ///
    /// Same as [`EnergyDetector::band_energy_ratio`].
    pub fn detect(&self, audio: &[f64]) -> Result<bool, SedError> {
        Ok(self.band_energy_ratio(audio)? > self.threshold)
    }

    /// Evaluates binary event-detection accuracy on a dataset (any event class counts
    /// as a positive).
    ///
    /// # Errors
    ///
    /// Returns an error if the dataset is empty or a clip cannot be analysed.
    pub fn evaluate(&self, dataset: &Dataset) -> Result<f64, SedError> {
        if dataset.is_empty() {
            return Err(SedError::EmptyDataset);
        }
        let mut correct = 0usize;
        for sample in dataset.samples() {
            let detected = self.detect(&sample.audio)?;
            if detected == sample.label.is_event() {
                correct += 1;
            }
        }
        Ok(correct as f64 / dataset.len() as f64)
    }
}

/// Reusable workspace for the allocation-free
/// [`SpectralTemplateDetector::predict_with_confidence_into`] path.
///
/// All buffers are sized lazily on first use (or pre-sized by
/// [`SpectralTemplateDetector::make_scratch`]) and reused afterwards; one scratch
/// serves one detector at a time. Since the detector itself is immutable after
/// construction, many concurrent streams can share one detector (e.g. behind an
/// `Arc`) while each holds its own scratch.
#[derive(Debug, Clone, Default)]
pub struct DetectorScratch {
    /// STFT workspace (windowed frame + complex spectrum).
    stft: StftScratch,
    /// Power spectrum of the current analysis frame.
    power: Vec<f64>,
    /// Mel band energies of the current analysis frame.
    mel: Vec<f64>,
    /// Accumulated (then normalized) mean log-mel feature vector.
    features: Vec<f64>,
}

/// Multi-class nearest-template classifier on time-averaged log-mel spectra.
#[derive(Debug, Clone)]
pub struct SpectralTemplateDetector {
    spectrogram: SpectrogramExtractor,
    filterbank: MelFilterbank,
    /// One template per [`EventClass`], indexed by class index.
    templates: Vec<Vec<f64>>,
}

impl SpectralTemplateDetector {
    /// Builds the detector for audio at `sample_rate`, deriving one template per class
    /// from clean synthesised prototypes (and from the noise synthesiser for the
    /// background class).
    ///
    /// # Errors
    ///
    /// Returns an error if feature extraction fails (never for the defaults).
    pub fn new(sample_rate: f64) -> Result<Self, SedError> {
        let spectrogram = SpectrogramExtractor::new(SpectrogramConfig {
            frame_len: 512,
            hop: 256,
            fft_size: 512,
            scale: SpectrogramScale::Power,
            ..SpectrogramConfig::default()
        })?;
        let filterbank = MelFilterbank::new(
            32,
            spectrogram.num_bins(),
            sample_rate,
            50.0,
            sample_rate / 2.0,
        )?;
        let mut templates = Vec::with_capacity(EventClass::COUNT);
        for class in EventClass::ALL {
            let prototype = if class == EventClass::Background {
                UrbanNoiseSynthesizer::new(sample_rate, 12_345).synthesize(2.0)
            } else {
                synthesize_event(class, sample_rate, 2.0)
            };
            let template = Self::mean_log_mel(&spectrogram, &filterbank, &prototype)?;
            templates.push(template);
        }
        Ok(SpectralTemplateDetector {
            spectrogram,
            filterbank,
            templates,
        })
    }

    fn mean_log_mel(
        spectrogram: &SpectrogramExtractor,
        filterbank: &MelFilterbank,
        audio: &[f64],
    ) -> Result<Vec<f64>, SedError> {
        let mut scratch = DetectorScratch::default();
        Self::mean_log_mel_into(spectrogram, filterbank, audio, &mut scratch)?;
        Ok(std::mem::take(&mut scratch.features))
    }

    /// Streaming core of [`SpectralTemplateDetector::mean_log_mel`]: computes the
    /// normalized mean log-mel feature vector into `scratch.features` using only
    /// scratch-owned buffers. Numerically identical to the batch path (same frame
    /// walk, same per-column accumulation order), but allocation-free in steady
    /// state.
    fn mean_log_mel_into(
        spectrogram: &SpectrogramExtractor,
        filterbank: &MelFilterbank,
        audio: &[f64],
        scratch: &mut DetectorScratch,
    ) -> Result<(), SedError> {
        let config = spectrogram.config();
        if audio.len() < config.frame_len {
            return Err(FeatureError::SignalTooShort {
                required: config.frame_len,
                actual: audio.len(),
            }
            .into());
        }
        let num_frames = spectrogram.frames_for(audio.len());
        let num_bands = filterbank.num_bands();
        scratch.features.clear();
        scratch.features.resize(num_bands, 0.0);
        for f in 0..num_frames {
            let start = f * config.hop;
            let frame = &audio[start..start + config.frame_len];
            spectrogram.power_frame_into(frame, &mut scratch.stft, &mut scratch.power)?;
            filterbank.apply_into(&scratch.power, &mut scratch.mel)?;
            for (acc, &m) in scratch.features.iter_mut().zip(&scratch.mel) {
                *acc += m.max(1e-10).ln();
            }
        }
        let mean = &mut scratch.features;
        for v in mean.iter_mut() {
            *v /= num_frames as f64;
        }
        // Normalize to zero mean / unit norm so that the match is level-invariant.
        let mu = mean.iter().sum::<f64>() / mean.len() as f64;
        for v in mean.iter_mut() {
            *v -= mu;
        }
        let norm = mean.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-12);
        for v in mean.iter_mut() {
            *v /= norm;
        }
        Ok(())
    }

    /// Classifies one audio clip by maximum cosine similarity against the class
    /// templates.
    ///
    /// # Errors
    ///
    /// Returns an error if the clip is shorter than one analysis frame.
    pub fn predict(&self, audio: &[f64]) -> Result<EventClass, SedError> {
        Ok(self.predict_with_confidence(audio)?.0)
    }

    /// Classifies one audio clip and also returns a confidence score in `[0, 1]`
    /// (the winning cosine similarity mapped from `[-1, 1]`).
    ///
    /// # Errors
    ///
    /// Returns an error if the clip is shorter than one analysis frame.
    pub fn predict_with_confidence(&self, audio: &[f64]) -> Result<(EventClass, f64), SedError> {
        let mut scratch = self.make_scratch();
        self.predict_with_confidence_into(audio, &mut scratch)
    }

    /// Creates a scratch pre-sized for this detector, so even the first
    /// [`SpectralTemplateDetector::predict_with_confidence_into`] call allocates
    /// nothing.
    pub fn make_scratch(&self) -> DetectorScratch {
        let mut scratch = DetectorScratch {
            stft: self.spectrogram.make_stft_scratch(),
            power: Vec::with_capacity(self.spectrogram.num_bins()),
            mel: Vec::with_capacity(self.filterbank.num_bands()),
            features: Vec::with_capacity(self.filterbank.num_bands()),
        };
        scratch.power.resize(self.spectrogram.num_bins(), 0.0);
        scratch.mel.resize(self.filterbank.num_bands(), 0.0);
        scratch
    }

    /// Classifies one audio clip using caller-owned scratch memory — the real-time
    /// hot path of the perception pipeline.
    ///
    /// Identical results to
    /// [`predict_with_confidence`](Self::predict_with_confidence), but repeated
    /// calls with the same scratch perform **no heap allocation** in steady state.
    ///
    /// # Errors
    ///
    /// Returns an error if the clip is shorter than one analysis frame.
    pub fn predict_with_confidence_into(
        &self,
        audio: &[f64],
        scratch: &mut DetectorScratch,
    ) -> Result<(EventClass, f64), SedError> {
        Self::mean_log_mel_into(&self.spectrogram, &self.filterbank, audio, scratch)?;
        let features = &scratch.features;
        let mut best = EventClass::Background;
        let mut best_score = f64::NEG_INFINITY;
        for class in EventClass::ALL {
            let template = &self.templates[class.index()];
            let score: f64 = template.iter().zip(features).map(|(a, b)| a * b).sum();
            if score > best_score {
                best_score = score;
                best = class;
            }
        }
        Ok((best, ((best_score + 1.0) / 2.0).clamp(0.0, 1.0)))
    }

    /// Evaluates the template detector on a dataset.
    ///
    /// # Errors
    ///
    /// Returns an error if the dataset is empty or a clip cannot be analysed.
    pub fn evaluate(&self, dataset: &Dataset) -> Result<ClassificationReport, SedError> {
        if dataset.is_empty() {
            return Err(SedError::EmptyDataset);
        }
        let mut truth = Vec::with_capacity(dataset.len());
        let mut predictions = Vec::with_capacity(dataset.len());
        for sample in dataset.samples() {
            truth.push(sample.label);
            predictions.push(self.predict(&sample.audio)?);
        }
        ClassificationReport::from_predictions(&truth, &predictions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetConfig;

    /// The pre-refactor batch feature path (whole-matrix spectrogram + mel +
    /// column means), kept to pin the streaming scratch path against.
    fn reference_mean_log_mel(detector: &SpectralTemplateDetector, audio: &[f64]) -> Vec<f64> {
        let power = detector.spectrogram.compute(audio).unwrap();
        let mut mel = detector.filterbank.apply_spectrogram(&power).unwrap();
        mel.log_compress(1e-10);
        let mut mean = mel.column_means();
        let mu = mean.iter().sum::<f64>() / mean.len() as f64;
        for v in mean.iter_mut() {
            *v -= mu;
        }
        let norm = mean.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-12);
        for v in mean.iter_mut() {
            *v /= norm;
        }
        mean
    }

    #[test]
    fn scratch_prediction_matches_the_batch_reference() {
        let fs = 16_000.0;
        let detector = SpectralTemplateDetector::new(fs).unwrap();
        let mut scratch = detector.make_scratch();
        for class in EventClass::ALL {
            let clip = if class == EventClass::Background {
                UrbanNoiseSynthesizer::new(fs, 7).synthesize(0.5)
            } else {
                synthesize_event(class, fs, 0.5)
            };
            let streaming = detector
                .predict_with_confidence_into(&clip, &mut scratch)
                .unwrap();
            assert_eq!(scratch.features, reference_mean_log_mel(&detector, &clip));
            assert_eq!(
                streaming,
                detector.predict_with_confidence(&clip).unwrap(),
                "class {class}"
            );
        }
        assert!(detector
            .predict_with_confidence_into(&[0.0; 16], &mut scratch)
            .is_err());
    }

    #[test]
    fn energy_detector_separates_clean_siren_from_noise() {
        let fs = 16_000.0;
        let det = EnergyDetector::new(fs).unwrap();
        let siren = synthesize_event(EventClass::WailSiren, fs, 1.0);
        let noise = UrbanNoiseSynthesizer::new(fs, 7).synthesize(1.0);
        let r_siren = det.band_energy_ratio(&siren).unwrap();
        let r_noise = det.band_energy_ratio(&noise).unwrap();
        assert!(r_siren > 0.8, "siren ratio {r_siren}");
        assert!(r_noise < 0.5, "noise ratio {r_noise}");
        assert!(det.detect(&siren).unwrap());
        assert!(!det.detect(&noise).unwrap());
    }

    #[test]
    fn template_detector_classifies_clean_prototypes_correctly() {
        let fs = 16_000.0;
        let det = SpectralTemplateDetector::new(fs).unwrap();
        for class in [
            EventClass::HiLowSiren,
            EventClass::CarHorn,
            EventClass::WailSiren,
        ] {
            let audio = synthesize_event(class, fs, 1.5);
            let predicted = det.predict(&audio).unwrap();
            // Wail and yelp share the same frequency band, so confusing them is
            // acceptable for this baseline; everything else must be exact.
            if class == EventClass::WailSiren {
                assert!(predicted == EventClass::WailSiren || predicted == EventClass::YelpSiren);
            } else {
                assert_eq!(predicted, class, "prototype for {class}");
            }
        }
    }

    #[test]
    fn baselines_beat_chance_at_high_snr_and_degrade_at_low_snr() {
        let fs = 16_000.0;
        let easy = Dataset::generate(
            &DatasetConfig {
                num_samples: 24,
                duration_s: 0.8,
                spatialize: false,
                snr_min_db: 15.0,
                snr_max_db: 20.0,
                background_fraction: 0.5,
                ..DatasetConfig::default()
            },
            9,
        )
        .unwrap();
        let hard = Dataset::generate(
            &DatasetConfig {
                num_samples: 24,
                duration_s: 0.8,
                spatialize: false,
                snr_min_db: -30.0,
                snr_max_db: -25.0,
                background_fraction: 0.5,
                ..DatasetConfig::default()
            },
            9,
        )
        .unwrap();
        let det = EnergyDetector::new(fs).unwrap();
        let easy_acc = det.evaluate(&easy).unwrap();
        let hard_acc = det.evaluate(&hard).unwrap();
        assert!(easy_acc > 0.7, "easy accuracy {easy_acc}");
        assert!(
            hard_acc < easy_acc + 1e-9,
            "hard ({hard_acc}) should not beat easy ({easy_acc})"
        );
    }

    #[test]
    fn errors_on_empty_or_too_short_input() {
        let fs = 16_000.0;
        let energy = EnergyDetector::new(fs).unwrap();
        assert!(energy.band_energy_ratio(&[0.0; 10]).is_err());
        assert!(energy.evaluate(&Dataset::default()).is_err());
        let template = SpectralTemplateDetector::new(fs).unwrap();
        assert!(template.predict(&[0.0; 10]).is_err());
        assert!(template.evaluate(&Dataset::default()).is_err());
    }

    #[test]
    fn threshold_and_band_builders() {
        let det = EnergyDetector::new(16_000.0)
            .unwrap()
            .with_band(300.0, 2000.0)
            .with_threshold(0.6);
        assert_eq!(det.threshold(), 0.6);
    }
}
