//! CNN-based emergency-sound detector.
//!
//! Follows the dominant recipe of the surveyed literature (Sec. III of the paper): a
//! log-mel time–frequency patch is classified by a small convolutional network. The
//! network is deliberately low-complexity (tens of thousands of parameters, in the
//! spirit of the DCASE low-complexity track discussed in the paper) so that it can be
//! deployed on the embedded targets modelled by `ispot-codesign`.

use crate::dataset::Dataset;
use crate::error::SedError;
use crate::labels::EventClass;
use crate::metrics::ClassificationReport;
use ispot_features::mel::MelFilterbank;
use ispot_features::spectrogram::{SpectrogramConfig, SpectrogramExtractor, SpectrogramScale};
use ispot_nn::activation::Activation;
use ispot_nn::conv::Conv2d;
use ispot_nn::dense::Dense;
use ispot_nn::layer::Flatten;
use ispot_nn::loss::CrossEntropyLoss;
use ispot_nn::model::Sequential;
use ispot_nn::optimizer::Adam;
use ispot_nn::pooling::MaxPool2d;
use ispot_nn::Tensor;
use serde::{Deserialize, Serialize};

/// Configuration of the [`CnnDetector`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Number of mel bands of the input patch.
    pub num_mels: usize,
    /// Number of time frames of the input patch.
    pub num_frames: usize,
    /// STFT frame length in samples.
    pub frame_len: usize,
    /// STFT hop in samples.
    pub hop: usize,
    /// Channels of the first convolution.
    pub conv1_channels: usize,
    /// Channels of the second convolution.
    pub conv2_channels: usize,
    /// Width of the hidden dense layer.
    pub hidden_units: usize,
    /// Number of training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Seed for weight initialization and batch shuffling.
    pub seed: u64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            num_mels: 32,
            num_frames: 32,
            frame_len: 512,
            hop: 256,
            conv1_channels: 8,
            conv2_channels: 16,
            hidden_units: 32,
            epochs: 15,
            batch_size: 16,
            learning_rate: 1e-3,
            seed: 42,
        }
    }
}

impl DetectorConfig {
    /// A reduced configuration suitable for unit tests and quick experiments.
    pub fn tiny() -> Self {
        DetectorConfig {
            num_mels: 16,
            num_frames: 16,
            conv1_channels: 4,
            conv2_channels: 8,
            hidden_units: 16,
            epochs: 10,
            batch_size: 8,
            learning_rate: 2e-3,
            ..DetectorConfig::default()
        }
    }

    fn validate(&self) -> Result<(), SedError> {
        if self.num_mels < 4 || self.num_frames < 4 {
            return Err(SedError::invalid_config(
                "num_mels/num_frames",
                "must be at least 4",
            ));
        }
        if !self.num_mels.is_multiple_of(4) || !self.num_frames.is_multiple_of(4) {
            return Err(SedError::invalid_config(
                "num_mels/num_frames",
                "must be divisible by 4 (two 2x2 pooling stages)",
            ));
        }
        if self.conv1_channels == 0 || self.conv2_channels == 0 || self.hidden_units == 0 {
            return Err(SedError::invalid_config("channels", "must be positive"));
        }
        if self.epochs == 0 || self.batch_size == 0 {
            return Err(SedError::invalid_config(
                "epochs/batch_size",
                "must be positive",
            ));
        }
        if self.learning_rate <= 0.0 {
            return Err(SedError::invalid_config(
                "learning_rate",
                "must be positive",
            ));
        }
        Ok(())
    }
}

/// A CNN classifier over log-mel patches.
#[derive(Debug)]
pub struct CnnDetector {
    config: DetectorConfig,
    sample_rate: f64,
    spectrogram: SpectrogramExtractor,
    filterbank: MelFilterbank,
    model: Sequential,
    trained: bool,
}

impl CnnDetector {
    /// Creates an untrained detector for audio at `sample_rate`.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid.
    pub fn new(config: DetectorConfig, sample_rate: f64) -> Result<Self, SedError> {
        config.validate()?;
        let spec_cfg = SpectrogramConfig {
            frame_len: config.frame_len,
            hop: config.hop,
            fft_size: config.frame_len,
            scale: SpectrogramScale::Power,
            ..SpectrogramConfig::default()
        };
        let spectrogram = SpectrogramExtractor::new(spec_cfg)?;
        let filterbank = MelFilterbank::new(
            config.num_mels,
            spectrogram.num_bins(),
            sample_rate,
            50.0,
            sample_rate / 2.0,
        )?;
        let model = Self::build_model(&config)?;
        Ok(CnnDetector {
            config,
            sample_rate,
            spectrogram,
            filterbank,
            model,
            trained: false,
        })
    }

    fn build_model(config: &DetectorConfig) -> Result<Sequential, SedError> {
        let mut model = Sequential::new();
        model.push(Conv2d::new(
            1,
            config.conv1_channels,
            (3, 3),
            1,
            1,
            config.seed,
        )?);
        model.push(Activation::relu());
        model.push(MaxPool2d::new((2, 2))?);
        model.push(Conv2d::new(
            config.conv1_channels,
            config.conv2_channels,
            (3, 3),
            1,
            1,
            config.seed.wrapping_add(1),
        )?);
        model.push(Activation::relu());
        model.push(MaxPool2d::new((2, 2))?);
        model.push(Flatten::new());
        let flat = config.conv2_channels * (config.num_mels / 4) * (config.num_frames / 4);
        model.push(Dense::new(
            flat,
            config.hidden_units,
            config.seed.wrapping_add(2),
        )?);
        model.push(Activation::relu());
        model.push(Dense::new(
            config.hidden_units,
            EventClass::COUNT,
            config.seed.wrapping_add(3),
        )?);
        Ok(model)
    }

    /// Returns the configuration.
    pub fn config(&self) -> DetectorConfig {
        self.config
    }

    /// Total number of trainable parameters of the CNN.
    pub fn num_parameters(&self) -> usize {
        self.model.num_parameters()
    }

    /// Whether [`CnnDetector::train`] has completed at least one epoch.
    pub fn is_trained(&self) -> bool {
        self.trained
    }

    /// Gives mutable access to the underlying model (used by the co-design passes to
    /// prune and quantize the detector in place).
    pub fn model_mut(&mut self) -> &mut Sequential {
        &mut self.model
    }

    /// Computes the fixed-size log-mel input patch (`[mels, frames]`, flattened
    /// row-major) for one audio clip: frames beyond the patch are dropped, missing
    /// frames are zero-padded, and the patch is standardized.
    ///
    /// # Errors
    ///
    /// Returns an error if the clip is shorter than one STFT frame.
    pub fn features(&self, audio: &[f64]) -> Result<Vec<f64>, SedError> {
        let power = self.spectrogram.compute(audio)?;
        let mut mel = self.filterbank.apply_spectrogram(&power)?;
        mel.log_compress(1e-10);
        let mels = self.config.num_mels;
        let frames = self.config.num_frames;
        // Build [mels, frames] patch: transpose from [frames, mels] with crop/pad.
        let mut patch = vec![0.0; mels * frames];
        for f in 0..frames.min(mel.num_rows()) {
            for m in 0..mels {
                patch[m * frames + f] = mel.get(f, m);
            }
        }
        // Standardize the patch (zero mean, unit variance) for stable training.
        let mean = patch.iter().sum::<f64>() / patch.len() as f64;
        let var = patch.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / patch.len() as f64;
        let std = var.sqrt().max(1e-9);
        for v in patch.iter_mut() {
            *v = (*v - mean) / std;
        }
        Ok(patch)
    }

    fn batch_tensor(&self, patches: &[Vec<f64>]) -> Result<Tensor, SedError> {
        let mels = self.config.num_mels;
        let frames = self.config.num_frames;
        let mut data = Vec::with_capacity(patches.len() * mels * frames);
        for p in patches {
            data.extend_from_slice(p);
        }
        Ok(Tensor::from_vec(data, &[patches.len(), 1, mels, frames])?)
    }

    /// Trains the detector on `dataset`, returning the per-epoch mean training loss.
    ///
    /// # Errors
    ///
    /// Returns an error if the dataset is empty or a training step fails.
    pub fn train(&mut self, dataset: &Dataset) -> Result<Vec<f64>, SedError> {
        if dataset.is_empty() {
            return Err(SedError::EmptyDataset);
        }
        let patches: Vec<Vec<f64>> = dataset
            .samples()
            .iter()
            .map(|s| self.features(&s.audio))
            .collect::<Result<_, _>>()?;
        let labels: Vec<usize> = dataset.samples().iter().map(|s| s.label.index()).collect();
        let loss_fn = CrossEntropyLoss::new();
        let mut optimizer = Adam::new(self.config.learning_rate);
        let mut order: Vec<usize> = (0..patches.len()).collect();
        let mut epoch_losses = Vec::with_capacity(self.config.epochs);
        let mut rng_state = self.config.seed.max(1);
        for _ in 0..self.config.epochs {
            // Simple deterministic shuffle (xorshift-based Fisher-Yates).
            for i in (1..order.len()).rev() {
                rng_state ^= rng_state << 13;
                rng_state ^= rng_state >> 7;
                rng_state ^= rng_state << 17;
                let j = (rng_state % (i as u64 + 1)) as usize;
                order.swap(i, j);
            }
            let mut total_loss = 0.0;
            let mut batches = 0;
            for chunk in order.chunks(self.config.batch_size) {
                let batch_patches: Vec<Vec<f64>> =
                    chunk.iter().map(|&i| patches[i].clone()).collect();
                let batch_labels: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();
                let x = self.batch_tensor(&batch_patches)?;
                let loss = self
                    .model
                    .train_batch(&x, &batch_labels, &loss_fn, &mut optimizer)?;
                total_loss += loss;
                batches += 1;
            }
            epoch_losses.push(total_loss / batches.max(1) as f64);
        }
        self.trained = true;
        Ok(epoch_losses)
    }

    /// Classifies one audio clip.
    ///
    /// # Errors
    ///
    /// Returns an error if feature extraction or inference fails.
    pub fn predict(&mut self, audio: &[f64]) -> Result<EventClass, SedError> {
        let patch = self.features(audio)?;
        let x = self.batch_tensor(&[patch])?;
        let prediction = self.model.predict(&x)?;
        Ok(EventClass::from_index(prediction[0]).unwrap_or(EventClass::Background))
    }

    /// Evaluates the detector on a dataset.
    ///
    /// # Errors
    ///
    /// Returns an error if the dataset is empty or inference fails.
    pub fn evaluate(&mut self, dataset: &Dataset) -> Result<ClassificationReport, SedError> {
        if dataset.is_empty() {
            return Err(SedError::EmptyDataset);
        }
        let mut truth = Vec::with_capacity(dataset.len());
        let mut predictions = Vec::with_capacity(dataset.len());
        for sample in dataset.samples() {
            truth.push(sample.label);
            predictions.push(self.predict(&sample.audio)?);
        }
        ClassificationReport::from_predictions(&truth, &predictions)
    }

    /// Sampling rate the detector was built for.
    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetConfig;

    fn tiny_dataset(n: usize, seed: u64) -> Dataset {
        let cfg = DatasetConfig {
            num_samples: n,
            duration_s: 0.6,
            spatialize: false,
            snr_min_db: 10.0,
            snr_max_db: 20.0,
            background_fraction: 0.25,
            ..DatasetConfig::default()
        };
        Dataset::generate(&cfg, seed).unwrap()
    }

    #[test]
    fn untrained_detector_has_expected_size_and_runs() {
        let mut det = CnnDetector::new(DetectorConfig::tiny(), 16_000.0).unwrap();
        assert!(det.num_parameters() > 1000);
        assert!(!det.is_trained());
        let audio = crate::sirens::synthesize_event(EventClass::CarHorn, 16_000.0, 0.6);
        // Prediction works (value is arbitrary before training).
        det.predict(&audio).unwrap();
    }

    #[test]
    fn training_reduces_loss_and_fits_training_set() {
        let data = tiny_dataset(40, 3);
        let mut det = CnnDetector::new(DetectorConfig::tiny(), 16_000.0).unwrap();
        let losses = det.train(&data).unwrap();
        assert!(det.is_trained());
        assert!(
            losses.last().unwrap() < losses.first().unwrap(),
            "loss did not decrease: {:?}",
            losses
        );
        let report = det.evaluate(&data).unwrap();
        // At easy SNR and when evaluating on the training set itself, the small CNN
        // must do much better than the 25% majority-class baseline.
        assert!(
            report.accuracy() > 0.5,
            "training accuracy {}",
            report.accuracy()
        );
    }

    #[test]
    fn feature_patch_has_fixed_size() {
        let det = CnnDetector::new(DetectorConfig::tiny(), 16_000.0).unwrap();
        let short = crate::sirens::synthesize_event(EventClass::WailSiren, 16_000.0, 0.2);
        let long = crate::sirens::synthesize_event(EventClass::WailSiren, 16_000.0, 2.0);
        assert_eq!(det.features(&short).unwrap().len(), 16 * 16);
        assert_eq!(det.features(&long).unwrap().len(), 16 * 16);
        assert!(det.features(&[0.0; 10]).is_err());
    }

    #[test]
    fn invalid_configurations_rejected() {
        for bad in [
            DetectorConfig {
                num_mels: 3,
                ..DetectorConfig::tiny()
            },
            DetectorConfig {
                num_frames: 18,
                ..DetectorConfig::tiny()
            },
            DetectorConfig {
                epochs: 0,
                ..DetectorConfig::tiny()
            },
            DetectorConfig {
                learning_rate: 0.0,
                ..DetectorConfig::tiny()
            },
        ] {
            assert!(CnnDetector::new(bad, 16_000.0).is_err());
        }
    }

    #[test]
    fn training_on_empty_dataset_fails() {
        let mut det = CnnDetector::new(DetectorConfig::tiny(), 16_000.0).unwrap();
        assert!(matches!(
            det.train(&Dataset::default()),
            Err(SedError::EmptyDataset)
        ));
    }
}
