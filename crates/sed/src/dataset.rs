//! Emergency-sound dataset generation.
//!
//! Reproduces the protocol of Sec. IV-A of the paper: each sample contains the sound of
//! a source of interest (a siren or a car horn) moving along a random trajectory with a
//! random speed, rendered through the road-acoustics simulator, and summed with urban
//! background noise at a random SNR drawn from `[-30, 0]` dB. The paper generates
//! 15 000 single-channel samples; the generator below is parameterized so that test
//! suites can use small counts while the benchmark harness can regenerate the full
//! protocol.

use crate::error::SedError;
use crate::labels::EventClass;
use crate::noise::UrbanNoiseSynthesizer;
use crate::sirens::synthesize_event;
use ispot_dsp::level::mix_at_snr;
use ispot_roadsim::engine::Simulator;
use ispot_roadsim::geometry::Position;
use ispot_roadsim::microphone::MicrophoneArray;
use ispot_roadsim::scene::SceneBuilder;
use ispot_roadsim::source::SoundSource;
use ispot_roadsim::trajectory::Trajectory;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the dataset generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// Number of samples to generate.
    pub num_samples: usize,
    /// Sampling rate in Hz (the paper and this reproduction use 16 kHz).
    pub sample_rate: f64,
    /// Duration of each sample in seconds.
    pub duration_s: f64,
    /// Lower edge of the SNR range in dB.
    pub snr_min_db: f64,
    /// Upper edge of the SNR range in dB.
    pub snr_max_db: f64,
    /// Minimum source speed in m/s.
    pub speed_min: f64,
    /// Maximum source speed in m/s.
    pub speed_max: f64,
    /// Whether event sources are rendered through the road-acoustics simulator
    /// (random trajectory, Doppler, spreading, reflection). When `false`, the clean
    /// synthesised event is mixed directly — much faster, used for quick experiments.
    pub spatialize: bool,
    /// Fraction of samples labelled [`EventClass::Background`] (no event present).
    pub background_fraction: f64,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig {
            num_samples: 100,
            sample_rate: 16_000.0,
            duration_s: 1.0,
            snr_min_db: -30.0,
            snr_max_db: 0.0,
            speed_min: 5.0,
            speed_max: 30.0,
            spatialize: true,
            background_fraction: 0.2,
        }
    }
}

impl DatasetConfig {
    /// The full 15 000-sample protocol described in the paper (3-second clips,
    /// SNR ∈ [−30, 0] dB).
    pub fn paper_protocol() -> Self {
        DatasetConfig {
            num_samples: 15_000,
            duration_s: 3.0,
            ..DatasetConfig::default()
        }
    }

    fn validate(&self) -> Result<(), SedError> {
        if self.num_samples == 0 {
            return Err(SedError::invalid_config("num_samples", "must be positive"));
        }
        if self.sample_rate <= 0.0 {
            return Err(SedError::invalid_config("sample_rate", "must be positive"));
        }
        if self.duration_s <= 0.0 {
            return Err(SedError::invalid_config("duration_s", "must be positive"));
        }
        if self.snr_min_db > self.snr_max_db {
            return Err(SedError::invalid_config(
                "snr_min_db",
                "must not exceed snr_max_db",
            ));
        }
        if self.speed_min <= 0.0 || self.speed_min > self.speed_max {
            return Err(SedError::invalid_config(
                "speed_min",
                "must be positive and not exceed speed_max",
            ));
        }
        if !(0.0..=1.0).contains(&self.background_fraction) {
            return Err(SedError::invalid_config(
                "background_fraction",
                "must be within [0, 1]",
            ));
        }
        Ok(())
    }
}

/// One generated dataset sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSample {
    /// Single-channel audio at the configured sampling rate.
    pub audio: Vec<f64>,
    /// Ground-truth class.
    pub label: EventClass,
    /// SNR (dB) at which the event was mixed with the background; `None` for
    /// background-only samples.
    pub snr_db: Option<f64>,
    /// Source speed in m/s for spatialized samples.
    pub source_speed: Option<f64>,
}

/// A generated emergency-sound dataset.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    samples: Vec<DatasetSample>,
    sample_rate: f64,
}

impl Dataset {
    /// Generates a dataset according to `config`, deterministically from `seed`.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid or the simulation fails.
    pub fn generate(config: &DatasetConfig, seed: u64) -> Result<Self, SedError> {
        config.validate()?;
        let mut rng = StdRng::seed_from_u64(seed);
        let fs = config.sample_rate;
        let mut samples = Vec::with_capacity(config.num_samples);
        let event_classes = [
            EventClass::HiLowSiren,
            EventClass::WailSiren,
            EventClass::YelpSiren,
            EventClass::CarHorn,
        ];
        for i in 0..config.num_samples {
            let is_background = rng.random::<f64>() < config.background_fraction;
            let noise_seed = seed ^ (i as u64).wrapping_mul(0x9E37_79B9);
            let noise = UrbanNoiseSynthesizer::new(fs, noise_seed).synthesize(config.duration_s);
            if is_background {
                samples.push(DatasetSample {
                    audio: noise,
                    label: EventClass::Background,
                    snr_db: None,
                    source_speed: None,
                });
                continue;
            }
            let class = event_classes[rng.random_range(0..event_classes.len())];
            let clean = synthesize_event(class, fs, config.duration_s);
            let speed = rng.random_range(config.speed_min..=config.speed_max);
            let event = if config.spatialize {
                let rendered = Self::spatialize(&clean, fs, speed, &mut rng)?;
                // The rendered signal can be very quiet at large distances; keep it as
                // is, the SNR mixing below rescales the *noise* to hit the target SNR.
                rendered
            } else {
                clean
            };
            let snr = rng.random_range(config.snr_min_db..=config.snr_max_db);
            let (mix, _) = mix_at_snr(&event, &noise, snr)?;
            samples.push(DatasetSample {
                audio: mix,
                label: class,
                snr_db: Some(snr),
                source_speed: Some(speed),
            });
        }
        Ok(Dataset {
            samples,
            sample_rate: fs,
        })
    }

    fn spatialize(
        clean: &[f64],
        fs: f64,
        speed: f64,
        rng: &mut StdRng,
    ) -> Result<Vec<f64>, SedError> {
        // Random drive-by: the source crosses the microphone's field on a straight
        // line at a random lateral offset and height, starting from a random side.
        let offset = rng.random_range(3.0..15.0);
        let start_x = rng.random_range(-60.0..-20.0);
        let end_x = rng.random_range(20.0..60.0);
        let height = rng.random_range(0.5..1.5);
        let (from, to) = if rng.random::<f64>() < 0.5 {
            (
                Position::new(start_x, offset, height),
                Position::new(end_x, offset, height),
            )
        } else {
            (
                Position::new(end_x, offset, height),
                Position::new(start_x, offset, height),
            )
        };
        let trajectory = Trajectory::linear(from, to, speed);
        let scene = SceneBuilder::new(fs)
            .source(SoundSource::new(clean.to_vec(), trajectory))
            .array(MicrophoneArray::custom(vec![Position::new(0.0, 0.0, 1.0)])?)
            .reflection(true)
            .air_absorption(false)
            .filter_taps(33)
            .build()?;
        let audio = Simulator::new(scene)?.run()?;
        Ok(audio.into_channels().remove(0))
    }

    /// Returns the samples.
    pub fn samples(&self) -> &[DatasetSample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns true if the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Sampling rate of the audio clips.
    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }

    /// Per-class sample counts, indexed by [`EventClass::index`].
    pub fn class_histogram(&self) -> [usize; EventClass::COUNT] {
        let mut histogram = [0usize; EventClass::COUNT];
        for s in &self.samples {
            histogram[s.label.index()] += 1;
        }
        histogram
    }

    /// Splits the dataset into a training and a test set (the first
    /// `train_fraction` of samples go to training; generation order is already random).
    ///
    /// # Errors
    ///
    /// Returns an error if the dataset is empty or the fraction is outside `(0, 1)`.
    pub fn split(&self, train_fraction: f64) -> Result<(Dataset, Dataset), SedError> {
        if self.samples.is_empty() {
            return Err(SedError::EmptyDataset);
        }
        if !(0.0..1.0).contains(&train_fraction) || train_fraction == 0.0 {
            return Err(SedError::invalid_config(
                "train_fraction",
                "must be within (0, 1)",
            ));
        }
        let cut = ((self.samples.len() as f64) * train_fraction).round() as usize;
        let cut = cut.clamp(1, self.samples.len() - 1);
        Ok((
            Dataset {
                samples: self.samples[..cut].to_vec(),
                sample_rate: self.sample_rate,
            },
            Dataset {
                samples: self.samples[cut..].to_vec(),
                sample_rate: self.sample_rate,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config(n: usize, spatialize: bool) -> DatasetConfig {
        DatasetConfig {
            num_samples: n,
            duration_s: 0.3,
            spatialize,
            ..DatasetConfig::default()
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = quick_config(6, false);
        let a = Dataset::generate(&cfg, 11).unwrap();
        let b = Dataset::generate(&cfg, 11).unwrap();
        let c = Dataset::generate(&cfg, 12).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn samples_have_requested_length_and_rate() {
        let cfg = quick_config(5, false);
        let d = Dataset::generate(&cfg, 1).unwrap();
        assert_eq!(d.len(), 5);
        assert_eq!(d.sample_rate(), 16_000.0);
        for s in d.samples() {
            assert_eq!(s.audio.len(), 4800);
            assert!(s.audio.iter().all(|x| x.is_finite()));
        }
    }

    #[test]
    fn snr_values_fall_in_configured_range() {
        let cfg = DatasetConfig {
            num_samples: 12,
            duration_s: 0.25,
            spatialize: false,
            snr_min_db: -20.0,
            snr_max_db: -5.0,
            background_fraction: 0.0,
            ..DatasetConfig::default()
        };
        let d = Dataset::generate(&cfg, 3).unwrap();
        for s in d.samples() {
            let snr = s.snr_db.expect("event samples carry an SNR");
            assert!((-20.0..=-5.0).contains(&snr));
        }
    }

    #[test]
    fn background_fraction_is_roughly_respected() {
        let cfg = DatasetConfig {
            num_samples: 60,
            duration_s: 0.2,
            spatialize: false,
            background_fraction: 0.5,
            ..DatasetConfig::default()
        };
        let d = Dataset::generate(&cfg, 5).unwrap();
        let hist = d.class_histogram();
        let background = hist[EventClass::Background.index()];
        assert!(
            background > 15 && background < 45,
            "{background} backgrounds"
        );
    }

    #[test]
    fn spatialized_samples_render_through_the_simulator() {
        let cfg = quick_config(3, true);
        let d = Dataset::generate(&cfg, 7).unwrap();
        assert_eq!(d.len(), 3);
        for s in d.samples() {
            assert!(s.audio.iter().any(|x| x.abs() > 0.0));
            if s.label.is_event() {
                assert!(s.source_speed.unwrap() >= cfg.speed_min);
            }
        }
    }

    #[test]
    fn split_partitions_all_samples() {
        let cfg = quick_config(10, false);
        let d = Dataset::generate(&cfg, 2).unwrap();
        let (train, test) = d.split(0.7).unwrap();
        assert_eq!(train.len() + test.len(), 10);
        assert!(train.len() >= 6);
        assert!(!test.is_empty());
        assert!(d.split(0.0).is_err());
        assert!(d.split(1.5).is_err());
    }

    #[test]
    fn invalid_configurations_rejected() {
        for cfg in [
            DatasetConfig {
                num_samples: 0,
                ..quick_config(1, false)
            },
            DatasetConfig {
                snr_min_db: 5.0,
                snr_max_db: -5.0,
                ..quick_config(1, false)
            },
            DatasetConfig {
                speed_min: 0.0,
                ..quick_config(1, false)
            },
            DatasetConfig {
                background_fraction: 1.5,
                ..quick_config(1, false)
            },
        ] {
            assert!(Dataset::generate(&cfg, 0).is_err());
        }
    }

    #[test]
    fn paper_protocol_matches_published_numbers() {
        let cfg = DatasetConfig::paper_protocol();
        assert_eq!(cfg.num_samples, 15_000);
        assert_eq!(cfg.snr_min_db, -30.0);
        assert_eq!(cfg.snr_max_db, 0.0);
        assert_eq!(cfg.duration_s, 3.0);
    }
}
