//! Parametric siren and car-horn synthesisers.
//!
//! The paper's dataset is built from freesound.org recordings of hi-low, wail and yelp
//! sirens plus car horns (Sec. IV-A). Those recordings cannot be redistributed, so this
//! module synthesises signals with the same spectro-temporal structure: the
//! characteristic frequency trajectories of each siren pattern with a small number of
//! harmonics, and a dual-tone horn with a rich harmonic stack.

use crate::labels::EventClass;
use serde::{Deserialize, Serialize};
use std::f64::consts::PI;

/// The three siren patterns evaluated in the emergency-vehicle-detection literature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SirenKind {
    /// Two alternating steady tones (e.g. 440 Hz / 585 Hz, ~0.5 s each).
    HiLow,
    /// Slow continuous sweep between ~600 Hz and ~1350 Hz (period of several seconds).
    Wail,
    /// Fast continuous sweep over the same range (period ~0.3 s).
    Yelp,
}

impl SirenKind {
    /// The [`EventClass`] corresponding to this siren pattern.
    pub fn event_class(self) -> EventClass {
        match self {
            SirenKind::HiLow => EventClass::HiLowSiren,
            SirenKind::Wail => EventClass::WailSiren,
            SirenKind::Yelp => EventClass::YelpSiren,
        }
    }
}

/// Synthesises siren signals of a given [`SirenKind`].
///
/// # Example
///
/// ```
/// use ispot_sed::sirens::{SirenKind, SirenSynthesizer};
///
/// let fs = 16_000.0;
/// let yelp = SirenSynthesizer::new(SirenKind::Yelp, fs).synthesize(0.5);
/// assert_eq!(yelp.len(), 8000);
/// assert!(yelp.iter().all(|x| x.abs() <= 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct SirenSynthesizer {
    kind: SirenKind,
    fs: f64,
    low_hz: f64,
    high_hz: f64,
    period_s: f64,
    num_harmonics: usize,
}

impl SirenSynthesizer {
    /// Creates a synthesiser with the standard parameters for the given pattern.
    pub fn new(kind: SirenKind, fs: f64) -> Self {
        let (low_hz, high_hz, period_s) = match kind {
            SirenKind::HiLow => (440.0, 585.0, 1.0),
            SirenKind::Wail => (600.0, 1350.0, 4.0),
            SirenKind::Yelp => (600.0, 1350.0, 0.32),
        };
        SirenSynthesizer {
            kind,
            fs,
            low_hz,
            high_hz,
            period_s,
            num_harmonics: 3,
        }
    }

    /// Overrides the sweep (or alternation) period in seconds.
    pub fn with_period(mut self, period_s: f64) -> Self {
        self.period_s = period_s.max(1e-3);
        self
    }

    /// Overrides the frequency range, emulating region-specific sirens (the paper notes
    /// sirens "are usually different in each country or region").
    pub fn with_frequency_range(mut self, low_hz: f64, high_hz: f64) -> Self {
        self.low_hz = low_hz;
        self.high_hz = high_hz.max(low_hz + 1.0);
        self
    }

    /// Sets the number of harmonics (default 3).
    pub fn with_harmonics(mut self, num_harmonics: usize) -> Self {
        self.num_harmonics = num_harmonics.max(1);
        self
    }

    /// Returns the siren pattern.
    pub fn kind(&self) -> SirenKind {
        self.kind
    }

    /// Instantaneous fundamental frequency at time `t` seconds.
    pub fn instantaneous_frequency(&self, t: f64) -> f64 {
        let phase = (t / self.period_s).fract();
        match self.kind {
            SirenKind::HiLow => {
                if phase < 0.5 {
                    self.low_hz
                } else {
                    self.high_hz
                }
            }
            SirenKind::Wail | SirenKind::Yelp => {
                // Triangular up-down sweep, continuous at the period boundary.
                let tri = if phase < 0.5 {
                    2.0 * phase
                } else {
                    2.0 * (1.0 - phase)
                };
                self.low_hz + (self.high_hz - self.low_hz) * tri
            }
        }
    }

    /// Synthesises `duration_s` seconds of the siren, peak-normalized to 0.9.
    pub fn synthesize(&self, duration_s: f64) -> Vec<f64> {
        let n = (duration_s * self.fs).max(0.0) as usize;
        let mut phase = vec![0.0f64; self.num_harmonics];
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let t = i as f64 / self.fs;
            let f0 = self.instantaneous_frequency(t);
            let mut sample = 0.0;
            for (h, ph) in phase.iter_mut().enumerate() {
                let harmonic = (h + 1) as f64;
                // Harmonic amplitudes fall off as 1/h.
                sample += (*ph).sin() / harmonic;
                *ph += 2.0 * PI * f0 * harmonic / self.fs;
                if *ph > 2.0 * PI {
                    *ph -= 2.0 * PI;
                }
            }
            out.push(sample);
        }
        normalize(&mut out, 0.9);
        out
    }
}

/// Synthesises car-horn signals: two simultaneous fundamental tones (a musical interval,
/// as used by most dual-horn cars) with a rich harmonic stack.
#[derive(Debug, Clone)]
pub struct CarHornSynthesizer {
    fs: f64,
    f1_hz: f64,
    f2_hz: f64,
    num_harmonics: usize,
}

impl CarHornSynthesizer {
    /// Creates a horn synthesiser with the typical dual fundamental (circa 420/510 Hz).
    pub fn new(fs: f64) -> Self {
        CarHornSynthesizer {
            fs,
            f1_hz: 420.0,
            f2_hz: 510.0,
            num_harmonics: 5,
        }
    }

    /// Overrides the two fundamentals.
    pub fn with_fundamentals(mut self, f1_hz: f64, f2_hz: f64) -> Self {
        self.f1_hz = f1_hz;
        self.f2_hz = f2_hz;
        self
    }

    /// Synthesises `duration_s` seconds of horn, peak-normalized to 0.9, with a short
    /// attack/release envelope so clips do not click.
    pub fn synthesize(&self, duration_s: f64) -> Vec<f64> {
        let n = (duration_s * self.fs).max(0.0) as usize;
        let ramp = (0.01 * self.fs) as usize;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let t = i as f64 / self.fs;
            let mut sample = 0.0;
            for h in 1..=self.num_harmonics {
                let hf = h as f64;
                sample += (2.0 * PI * self.f1_hz * hf * t).sin() / hf;
                sample += (2.0 * PI * self.f2_hz * hf * t).sin() / hf;
            }
            // Envelope.
            let env_in = if i < ramp {
                i as f64 / ramp as f64
            } else {
                1.0
            };
            let env_out = if n - i <= ramp {
                (n - i) as f64 / ramp as f64
            } else {
                1.0
            };
            out.push(sample * env_in.min(env_out));
        }
        normalize(&mut out, 0.9);
        out
    }
}

/// Synthesises the clean (pre-propagation) event signal for any [`EventClass`]; for
/// [`EventClass::Background`] the output is silence of the requested length, since the
/// background is added separately by the dataset mixer.
pub fn synthesize_event(class: EventClass, fs: f64, duration_s: f64) -> Vec<f64> {
    match class {
        EventClass::HiLowSiren => {
            SirenSynthesizer::new(SirenKind::HiLow, fs).synthesize(duration_s)
        }
        EventClass::WailSiren => SirenSynthesizer::new(SirenKind::Wail, fs).synthesize(duration_s),
        EventClass::YelpSiren => SirenSynthesizer::new(SirenKind::Yelp, fs).synthesize(duration_s),
        EventClass::CarHorn => CarHornSynthesizer::new(fs).synthesize(duration_s),
        EventClass::Background => vec![0.0; (duration_s * fs) as usize],
    }
}

fn normalize(signal: &mut [f64], target: f64) {
    let peak = signal.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
    if peak > 0.0 {
        let g = target / peak;
        for x in signal.iter_mut() {
            *x *= g;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispot_features::spectrogram::{SpectrogramConfig, SpectrogramExtractor};

    fn peak_frequency_per_frame(signal: &[f64], fs: f64) -> Vec<f64> {
        let ex = SpectrogramExtractor::new(SpectrogramConfig::default()).unwrap();
        let spec = ex.compute(signal).unwrap();
        spec.iter_rows()
            .map(|row| {
                let peak = row
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .unwrap()
                    .0;
                peak as f64 * fs / 512.0
            })
            .collect()
    }

    #[test]
    fn hilow_alternates_between_two_tones() {
        let fs = 16_000.0;
        let s = SirenSynthesizer::new(SirenKind::HiLow, fs).synthesize(2.0);
        let peaks = peak_frequency_per_frame(&s, fs);
        let min = peaks.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = peaks.iter().cloned().fold(0.0f64, f64::max);
        assert!((min - 440.0).abs() < 50.0, "low tone {min}");
        assert!((max - 585.0).abs() < 50.0, "high tone {max}");
        // Both tones appear a substantial fraction of the time.
        let low_frames = peaks.iter().filter(|&&p| (p - 440.0).abs() < 60.0).count();
        let high_frames = peaks.iter().filter(|&&p| (p - 585.0).abs() < 60.0).count();
        assert!(low_frames > peaks.len() / 4);
        assert!(high_frames > peaks.len() / 4);
    }

    #[test]
    fn wail_sweeps_through_the_band() {
        let fs = 16_000.0;
        let s = SirenSynthesizer::new(SirenKind::Wail, fs).synthesize(4.0);
        let peaks = peak_frequency_per_frame(&s, fs);
        let min = peaks.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = peaks.iter().cloned().fold(0.0f64, f64::max);
        assert!(min < 750.0, "wail reaches low frequencies: {min}");
        assert!(max > 1200.0, "wail reaches high frequencies: {max}");
    }

    #[test]
    fn yelp_sweeps_much_faster_than_wail() {
        let fs = 16_000.0;
        let yelp = SirenSynthesizer::new(SirenKind::Yelp, fs);
        let wail = SirenSynthesizer::new(SirenKind::Wail, fs);
        // Count direction changes of the instantaneous frequency over 2 seconds.
        let changes = |syn: &SirenSynthesizer| {
            let f: Vec<f64> = (0..2000)
                .map(|i| syn.instantaneous_frequency(i as f64 * 0.001))
                .collect();
            f.windows(3)
                .filter(|w| (w[1] - w[0]).signum() != (w[2] - w[1]).signum())
                .count()
        };
        assert!(changes(&yelp) > 4 * changes(&wail).max(1));
    }

    #[test]
    fn horn_contains_both_fundamentals() {
        let fs = 16_000.0;
        let horn = CarHornSynthesizer::new(fs).synthesize(1.0);
        let ex = SpectrogramExtractor::new(SpectrogramConfig::default()).unwrap();
        let spec = ex.compute(&horn).unwrap();
        let mean_spectrum: Vec<f64> = (0..spec.num_cols())
            .map(|c| (0..spec.num_rows()).map(|r| spec.get(r, c)).sum::<f64>())
            .collect();
        let bin_hz = fs / 512.0;
        let energy_near = |f: f64| {
            let bin = (f / bin_hz).round() as usize;
            mean_spectrum[bin - 1..=bin + 1].iter().sum::<f64>()
        };
        let total: f64 = mean_spectrum.iter().sum();
        assert!(energy_near(420.0) / total > 0.05);
        assert!(energy_near(510.0) / total > 0.05);
    }

    #[test]
    fn synthesize_event_covers_all_classes() {
        let fs = 8000.0;
        for class in EventClass::ALL {
            let s = synthesize_event(class, fs, 0.25);
            assert_eq!(s.len(), 2000);
            if class.is_event() {
                assert!(s.iter().any(|&x| x.abs() > 0.1), "{class} is silent");
            } else {
                assert!(s.iter().all(|&x| x == 0.0));
            }
        }
    }

    #[test]
    fn custom_frequency_range_is_respected() {
        let fs = 16_000.0;
        let s = SirenSynthesizer::new(SirenKind::Wail, fs)
            .with_frequency_range(900.0, 1800.0)
            .synthesize(4.0);
        let peaks = peak_frequency_per_frame(&s, fs);
        assert!(peaks.iter().all(|&p| p > 800.0));
    }

    #[test]
    fn output_is_normalized_and_finite() {
        for kind in [SirenKind::HiLow, SirenKind::Wail, SirenKind::Yelp] {
            let s = SirenSynthesizer::new(kind, 16_000.0).synthesize(0.5);
            assert!(s.iter().all(|x| x.is_finite() && x.abs() <= 0.9 + 1e-12));
        }
    }
}
