//! Error type for the sound event detection crate.

use ispot_dsp::DspError;
use ispot_features::FeatureError;
use ispot_nn::NnError;
use ispot_roadsim::RoadSimError;
use std::error::Error;
use std::fmt;

/// Errors produced while generating datasets or training/running detectors.
#[derive(Debug, Clone, PartialEq)]
pub enum SedError {
    /// A configuration parameter is invalid.
    InvalidConfig {
        /// Name of the offending parameter.
        name: &'static str,
        /// Description of the violated constraint.
        reason: String,
    },
    /// The dataset is empty or otherwise unusable for the requested operation.
    EmptyDataset,
    /// A low-level DSP step failed.
    Dsp(DspError),
    /// A feature-extraction step failed.
    Feature(FeatureError),
    /// A neural-network step failed.
    Nn(NnError),
    /// The road-acoustics simulation failed.
    RoadSim(RoadSimError),
}

impl fmt::Display for SedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SedError::InvalidConfig { name, reason } => {
                write!(f, "invalid configuration `{name}`: {reason}")
            }
            SedError::EmptyDataset => write!(f, "dataset contains no samples"),
            SedError::Dsp(e) => write!(f, "dsp error: {e}"),
            SedError::Feature(e) => write!(f, "feature extraction error: {e}"),
            SedError::Nn(e) => write!(f, "neural network error: {e}"),
            SedError::RoadSim(e) => write!(f, "road simulation error: {e}"),
        }
    }
}

impl Error for SedError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SedError::Dsp(e) => Some(e),
            SedError::Feature(e) => Some(e),
            SedError::Nn(e) => Some(e),
            SedError::RoadSim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DspError> for SedError {
    fn from(e: DspError) -> Self {
        SedError::Dsp(e)
    }
}

impl From<FeatureError> for SedError {
    fn from(e: FeatureError) -> Self {
        SedError::Feature(e)
    }
}

impl From<NnError> for SedError {
    fn from(e: NnError) -> Self {
        SedError::Nn(e)
    }
}

impl From<RoadSimError> for SedError {
    fn from(e: RoadSimError) -> Self {
        SedError::RoadSim(e)
    }
}

impl SedError {
    /// Convenience constructor for [`SedError::InvalidConfig`].
    pub fn invalid_config(name: &'static str, reason: impl Into<String>) -> Self {
        SedError::InvalidConfig {
            name,
            reason: reason.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        assert!(SedError::invalid_config("snr", "bad range")
            .to_string()
            .contains("snr"));
        assert!(!SedError::EmptyDataset.to_string().is_empty());
        let e: SedError = NnError::EmptyModel.into();
        assert!(Error::source(&e).is_some());
        let e: SedError = FeatureError::invalid_config("x", "y").into();
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SedError>();
    }
}
