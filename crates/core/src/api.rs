//! The deployment-facing API: builder-validated construction, shared-state
//! engines, and per-stream sessions.
//!
//! Three layers, from outermost in:
//!
//! * [`PipelineBuilder`] — the only way to configure and construct anything.
//!   Every parameter is validated up front ([`PipelineError::InvalidConfig`]
//!   with the offending field), so degenerate configurations (`hop = 0`,
//!   `hop > frame_len`, `num_directions = 0`, out-of-range trigger parameters)
//!   can never reach the per-frame hot path.
//! * [`Engine`] — owns the **shared immutable** state of a deployment: the
//!   detector templates/filterbank and the precomputed SRP-PHAT steering
//!   operator with its FFT plans, all behind [`Arc`]s. Building an engine is the
//!   expensive step (template synthesis, steering-tap precomputation).
//! * [`Session`] — one independent audio stream opened against an engine via
//!   [`Engine::open_session`]. A session owns only per-stream *mutable* state
//!   (trigger noise floor, Kalman tracker, frame assembler, scratch buffers), so
//!   opening the 2nd…Nth session costs a small fraction of building the engine —
//!   this is the seam that lets one process serve many concurrent microphone
//!   arrays.
//!
//! Input enters a session in any driver format ([`AudioInput`]: interleaved or
//! planar, `i16`/`f32`/`f64`) and results leave **by reference** through an
//! [`EventSink`] — in steady state the whole path from chunk ingestion to event
//! emission performs no heap allocation (enforced by the counting-allocator test
//! in `crates/core/tests/zero_alloc.rs`).
//!
//! # Walkthrough: multi-source scene → session → sink
//!
//! The typical evaluation loop renders a multi-source road scene with
//! `ispot-roadsim` (a siren plus interfering traffic, each source on its own
//! trajectory), opens a session against a shared engine and drains the events
//! through a sink:
//!
//! ```
//! use ispot_core::prelude::*;
//! use ispot_roadsim::prelude::*;
//! use ispot_sed::sirens::{SirenKind, SirenSynthesizer};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let fs = 16_000.0;
//! let array = MicrophoneArray::circular(6, 0.2, Position::new(0.0, 0.0, 1.0));
//!
//! // 1. The scene: a yelp siren driving past, over a parked broadband masker.
//! let siren = SirenSynthesizer::new(SirenKind::Yelp, fs).synthesize(1.0);
//! let masker: Vec<f64> =
//!     ispot_dsp::generator::NoiseSource::new(ispot_dsp::generator::NoiseKind::Pink, 9)
//!         .take(16_000)
//!         .collect();
//! let scene = SceneBuilder::new(fs)
//!     .source(SoundSource::new(
//!         siren,
//!         Trajectory::linear(Position::new(-8.0, 6.0, 1.0), Position::new(8.0, 6.0, 1.0), 16.0),
//!     ))
//!     .source(SoundSource::new(masker, Trajectory::fixed(Position::new(10.0, -8.0, 0.8)))
//!         .with_gain(0.15))
//!     .array(array.clone())
//!     .reflection(false)
//!     .air_absorption(false)
//!     .build()?;
//! let audio = Simulator::new(scene)?.run()?;
//!
//! // 2. The engine (expensive, shared) and a session (cheap, per stream).
//! let engine = PipelineBuilder::new(fs)
//!     .array(&array)
//!     .confidence_threshold(0.3)
//!     .build_engine()?;
//! let mut session = engine.open_session();
//!
//! // 3. The sink: events arrive by reference as frames complete.
//! let mut events = VecSink::new();
//! let frames = session.process_recording_with(&audio, &mut events)?;
//! assert!(frames > 0);
//! assert!(events.events().iter().any(|e| e.is_alert()));
//! // Localization ran: alert events carry a tracked azimuth toward the siren.
//! assert!(events.events().iter().any(|e| e.tracked_azimuth_deg.is_some()));
//! # Ok(())
//! # }
//! ```
//!
//! `ispot-bench`'s `scenarios` module packages exactly this loop — named
//! multi-source scenes scored for detection F1 and DoA error — behind one
//! `evaluate` call.

use crate::error::PipelineError;
use crate::events::{PerceptionEvent, TrackList};
use crate::input::AudioInput;
use crate::latency::LatencyReport;
use crate::mode::OperatingMode;
use crate::pipeline::PipelineConfig;
use crate::sink::{EventSink, LatestEvent};
use crate::stages::{
    DetectStage, FrameOutcome, FrameParams, LocalizeStage, ObsCtx, StageGraph, TrackStage,
    TriggerStage,
};
use ispot_dsp::framing::FrameAssembler;
use ispot_obs::{StageObserver, TickSource};
use ispot_roadsim::engine::MultichannelAudio;
use ispot_roadsim::microphone::MicrophoneArray;
use ispot_sed::baseline::SpectralTemplateDetector;
use ispot_sed::EventClass;
use ispot_ssl::multitrack::TrackingConfig;
use ispot_ssl::srp_fast::{SrpPhatFast, SrpSearchConfig};
use ispot_ssl::srp_phat::SrpConfig;
use std::sync::Arc;

/// Channel counts up to this bound build their frame views on the stack; beyond it
/// the streaming path falls back to one small heap allocation per frame.
const MAX_STACK_CHANNELS: usize = 32;

/// Runs `f` over per-channel `&[f64]` views of `channels` — the channel-view arena
/// of the streaming paths. Up to [`MAX_STACK_CHANNELS`] channels the view table
/// lives on the stack (no allocation); beyond that one small `Vec` is built.
pub(crate) fn with_channel_views<R>(channels: &[Vec<f64>], f: impl FnOnce(&[&[f64]]) -> R) -> R {
    if channels.len() <= MAX_STACK_CHANNELS {
        let mut views: [&[f64]; MAX_STACK_CHANNELS] = [&[]; MAX_STACK_CHANNELS];
        for (view, ch) in views.iter_mut().zip(channels) {
            *view = ch.as_slice();
        }
        f(&views[..channels.len()])
    } else {
        let views: Vec<&[f64]> = channels.iter().map(|c| c.as_slice()).collect();
        f(&views)
    }
}

/// A factory producing one fresh [`StageObserver`] per opened session.
///
/// An engine is shared across streams while observers are per-stream mutable
/// state, so the builder carries a factory rather than an observer: every
/// [`Engine::open_session`] call invokes it once and attaches the result. The
/// factory must therefore be cheap and must hand out observers that honour the
/// [`StageObserver`] hot-path contract (no allocation in `on_span`).
///
/// Hosts that need per-stream resources wired in at open time (e.g. a span
/// ring per slot) can skip the factory and call [`Session::set_observer`]
/// directly instead.
#[derive(Clone)]
pub struct ObserverFactory {
    make: Arc<dyn Fn() -> Box<dyn StageObserver> + Send + Sync>,
}

impl ObserverFactory {
    /// Wraps a closure that builds one observer per session.
    pub fn new<F>(make: F) -> Self
    where
        F: Fn() -> Box<dyn StageObserver> + Send + Sync + 'static,
    {
        ObserverFactory {
            make: Arc::new(make),
        }
    }

    /// Builds a fresh observer (called once per [`Engine::open_session`]).
    #[must_use]
    pub fn make(&self) -> Box<dyn StageObserver> {
        (self.make)()
    }
}

impl std::fmt::Debug for ObserverFactory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObserverFactory").finish_non_exhaustive()
    }
}

/// How the input channels of a pipeline are specified.
#[derive(Debug, Clone)]
enum ChannelSpec {
    /// A bare channel count: detection only, no localization.
    Count(usize),
    /// A microphone array: detection plus localization when it has ≥ 2 mics.
    Array(MicrophoneArray),
}

/// Validated construction of [`Engine`]s and [`Session`]s — the only entry point.
///
/// Defaults: [`PipelineConfig::default`], one input channel, no localization.
///
/// # Example
///
/// ```
/// use ispot_core::prelude::*;
///
/// # fn main() -> Result<(), PipelineError> {
/// let mut session = PipelineBuilder::new(16_000.0)
///     .channels(2)
///     .confidence_threshold(0.3)
///     .build()?;
/// assert!(!session.localization_available());
///
/// // Degenerate configurations are rejected before anything is built.
/// let err = PipelineBuilder::new(16_000.0).hop(0).build();
/// assert!(matches!(err, Err(PipelineError::InvalidConfig { .. })));
/// # session.reset_streaming();
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PipelineBuilder {
    config: PipelineConfig,
    sample_rate: f64,
    channels: ChannelSpec,
    observer: Option<ObserverFactory>,
}

impl PipelineBuilder {
    /// Starts a builder for audio at `sample_rate` Hz with the default
    /// configuration and a single input channel.
    pub fn new(sample_rate: f64) -> Self {
        PipelineBuilder {
            config: PipelineConfig::default(),
            sample_rate,
            channels: ChannelSpec::Count(1),
            observer: None,
        }
    }

    /// Replaces the whole configuration at once.
    pub fn config(mut self, config: PipelineConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the analysis frame length in samples.
    pub fn frame_len(mut self, frame_len: usize) -> Self {
        self.config.frame_len = frame_len;
        self
    }

    /// Sets the hop between analysis frames in samples (must satisfy
    /// `0 < hop <= frame_len`).
    pub fn hop(mut self, hop: usize) -> Self {
        self.config.hop = hop;
        self
    }

    /// Sets the initial operating mode.
    pub fn mode(mut self, mode: OperatingMode) -> Self {
        self.config.mode = mode;
        self
    }

    /// Sets the number of azimuth grid directions for localization.
    pub fn num_directions(mut self, num_directions: usize) -> Self {
        self.config.num_directions = num_directions;
        self
    }

    /// Sets the minimum detector confidence for an event to be reported.
    pub fn confidence_threshold(mut self, threshold: f64) -> Self {
        self.config.confidence_threshold = threshold;
        self
    }

    /// Sets the park-mode trigger configuration.
    pub fn trigger(mut self, trigger: crate::trigger::TriggerConfig) -> Self {
        self.config.trigger = trigger;
        self
    }

    /// Sets the multi-target tracking configuration (peak budget, association
    /// gate, confirmation and coasting counts). Validated at build time like
    /// every other parameter.
    pub fn tracking(mut self, tracking: TrackingConfig) -> Self {
        self.config.tracking = tracking;
        self
    }

    /// Sets the SRP search strategy: exhaustive (the default) steers every grid
    /// direction; a hierarchical configuration steers a decimated coarse grid
    /// first and refines only around its top peaks — a large constant-factor
    /// saving on the per-frame map at identical peak locations in practice.
    ///
    /// Validated at build time against `num_directions` like every other
    /// parameter.
    ///
    /// # Example
    ///
    /// ```
    /// use ispot_core::prelude::*;
    /// use ispot_roadsim::{geometry::Position, microphone::MicrophoneArray};
    ///
    /// # fn main() -> Result<(), PipelineError> {
    /// let array = MicrophoneArray::circular(6, 0.2, Position::new(0.0, 0.0, 1.0));
    /// let engine = PipelineBuilder::new(16_000.0)
    ///     .array(&array)
    ///     .search(SrpSearchConfig::hierarchical())
    ///     .build_engine()?;
    /// assert!(engine.localization_available());
    ///
    /// // Degenerate search settings are rejected up front, never at frame time:
    /// // decimating a 181-direction grid by 64 leaves fewer than 8 coarse cells.
    /// let err = PipelineBuilder::new(16_000.0)
    ///     .array(&array)
    ///     .search(SrpSearchConfig { decimation: 64, ..SrpSearchConfig::hierarchical() })
    ///     .build_engine();
    /// assert!(matches!(err, Err(PipelineError::InvalidConfig { .. })));
    /// # Ok(())
    /// # }
    /// ```
    pub fn search(mut self, search: SrpSearchConfig) -> Self {
        self.config.search = search;
        self
    }

    /// Attaches a per-session stage-observer factory: every session opened
    /// against the built engine gets one fresh observer from `factory` and
    /// emits a timing span per executed stage into it. The default is no
    /// observer — the uninstrumented frame path pays a single branch per
    /// stage and nothing else.
    ///
    /// # Example
    ///
    /// ```
    /// use ispot_core::prelude::*;
    /// use std::sync::Arc;
    ///
    /// # fn main() -> Result<(), PipelineError> {
    /// let ring = Arc::new(SpanRing::new(1024));
    /// let sink = Arc::clone(&ring);
    /// struct RingObserver(Arc<SpanRing>);
    /// impl StageObserver for RingObserver {
    ///     fn on_span(&mut self, span: Span) {
    ///         self.0.record(span);
    ///     }
    /// }
    /// let engine = PipelineBuilder::new(16_000.0)
    ///     .observer(ObserverFactory::new(move || {
    ///         Box::new(RingObserver(Arc::clone(&sink)))
    ///     }))
    ///     .build_engine()?;
    /// let mut session = engine.open_session();
    /// assert!(session.observer_attached());
    ///
    /// let frame = vec![0.1f64; 2048];
    /// session.process_frame(&[&frame], 0)?;
    /// assert!(ring.recorded() > 0, "stages produced no spans");
    /// # Ok(())
    /// # }
    /// ```
    pub fn observer(mut self, factory: ObserverFactory) -> Self {
        self.observer = Some(factory);
        self
    }

    /// Uses a bare channel count: detection only, localization disabled.
    pub fn channels(mut self, num_channels: usize) -> Self {
        self.channels = ChannelSpec::Count(num_channels);
        self
    }

    /// Uses a microphone array: the channel count is the array size and
    /// localization is enabled when the array has at least two microphones.
    pub fn array(mut self, array: &MicrophoneArray) -> Self {
        self.channels = ChannelSpec::Array(array.clone());
        self
    }

    /// Validates the configuration and builds the shared [`Engine`].
    ///
    /// This is the expensive step: detector templates are synthesized and the
    /// SRP-PHAT steering operator is precomputed. Open per-stream workers with
    /// [`Engine::open_session`].
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::InvalidConfig`] naming the offending parameter if
    /// any value is out of range, or a stage error if the detector or localizer
    /// cannot be built.
    pub fn build_engine(self) -> Result<Engine, PipelineError> {
        if !(self.sample_rate.is_finite() && self.sample_rate > 0.0) {
            return Err(PipelineError::invalid_config(
                "sample_rate",
                "must be positive and finite",
            ));
        }
        self.config.validate()?;
        let num_channels = match &self.channels {
            ChannelSpec::Count(n) => *n,
            ChannelSpec::Array(a) => a.len(),
        };
        if num_channels == 0 {
            return Err(PipelineError::invalid_config(
                "num_channels",
                "must be positive",
            ));
        }
        let detector = Arc::new(SpectralTemplateDetector::new(self.sample_rate)?);
        let localizer = match &self.channels {
            ChannelSpec::Array(array) if array.len() >= 2 => {
                let srp_config = SrpConfig {
                    frame_len: self.config.frame_len,
                    num_directions: self.config.num_directions,
                    freq_max_hz: (self.sample_rate / 2.0 - 200.0).max(1000.0),
                    ..SrpConfig::default()
                };
                Some(Arc::new(SrpPhatFast::with_search(
                    srp_config,
                    self.config.search,
                    array,
                    self.sample_rate,
                )?))
            }
            _ => None,
        };
        Ok(Engine {
            shared: Arc::new(EngineShared {
                config: self.config,
                sample_rate: self.sample_rate,
                num_channels,
                detector,
                localizer,
                observer: self.observer,
            }),
        })
    }

    /// Builds an engine and opens a single [`Session`] on it — the convenience
    /// path for single-stream deployments.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PipelineBuilder::build_engine`].
    pub fn build(self) -> Result<Session, PipelineError> {
        Ok(self.build_engine()?.open_session())
    }
}

/// The immutable state one engine shares across all of its sessions.
#[derive(Debug)]
struct EngineShared {
    config: PipelineConfig,
    sample_rate: f64,
    num_channels: usize,
    detector: Arc<SpectralTemplateDetector>,
    localizer: Option<Arc<SrpPhatFast>>,
    observer: Option<ObserverFactory>,
}

/// The shared, immutable half of a deployment: detector weights and the
/// precomputed SRP-PHAT steering operator (with its FFT plans) behind [`Arc`]s.
///
/// One engine serves any number of concurrent audio streams: each
/// [`Engine::open_session`] call clones the `Arc`s and allocates only per-stream
/// scratch, so the marginal cost of another stream is a small fraction of the
/// engine build (see the `engine_sessions` Criterion bench). `Engine` is `Clone`
/// (a cheap handle) and `Send + Sync`, so sessions can be opened from and run on
/// any thread.
///
/// # Example
///
/// ```
/// use ispot_core::prelude::*;
///
/// # fn main() -> Result<(), PipelineError> {
/// let engine = PipelineBuilder::new(16_000.0).channels(1).build_engine()?;
/// // Two independent streams share the detector weights and FFT plans.
/// let mut cabin = engine.open_session();
/// let mut roof = engine.open_session();
///
/// let chunk = vec![0.0f64; 4096];
/// let mut events = Vec::new();
/// cabin.push_chunk_with(&[&chunk], &mut events)?;
/// roof.push_chunk_with(&[&chunk], &mut events)?;
/// assert_eq!(cabin.frames_processed(), roof.frames_processed());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Engine {
    shared: Arc<EngineShared>,
}

impl Engine {
    /// Starts a [`PipelineBuilder`] — identical to [`PipelineBuilder::new`],
    /// provided so discovery works from either type.
    pub fn builder(sample_rate: f64) -> PipelineBuilder {
        PipelineBuilder::new(sample_rate)
    }

    /// Returns the validated configuration sessions are opened with.
    pub fn config(&self) -> PipelineConfig {
        self.shared.config
    }

    /// Returns the audio sample rate in Hz.
    pub fn sample_rate(&self) -> f64 {
        self.shared.sample_rate
    }

    /// Returns the number of input channels per session.
    pub fn num_channels(&self) -> usize {
        self.shared.num_channels
    }

    /// Returns true if sessions localize detections (array with ≥ 2 mics).
    pub fn localization_available(&self) -> bool {
        self.shared.localizer.is_some()
    }

    /// Opens an independent processing session against this engine.
    ///
    /// The session shares the engine's detector and steering operator and owns
    /// only per-stream mutable state (trigger, tracker, frame assembler, scratch
    /// buffers); opening a session never re-derives shared state.
    pub fn open_session(&self) -> Session {
        let shared = &self.shared;
        let stages = StageGraph::new(
            TriggerStage::new(shared.config.trigger),
            DetectStage::shared(Arc::clone(&shared.detector)),
            LocalizeStage::shared(shared.localizer.clone(), shared.config.tracking),
            TrackStage::with_config(shared.config.tracking)
                .expect("tracking configuration was validated at engine build"),
            shared.config.frame_len,
        );
        Session {
            config: shared.config,
            sample_rate: shared.sample_rate,
            num_channels: shared.num_channels,
            stages,
            framing: None,
            latency: LatencyReport::new(),
            frames_processed: 0,
            frames_analyzed: 0,
            localization_shed: false,
            observer: shared.observer.as_ref().map(ObserverFactory::make),
            ticks: TickSource::new(),
        }
    }
}

/// Streaming state: the chunk-to-frame assembler plus recycled frame buffers.
/// Created lazily on the first chunk push; all buffers are reused across frames,
/// so steady-state streaming allocates nothing.
#[derive(Debug)]
struct Framing {
    assembler: FrameAssembler,
    frame_bufs: Vec<Vec<f64>>,
}

impl Framing {
    fn new(num_channels: usize, frame_len: usize, hop: usize) -> Result<Self, PipelineError> {
        Ok(Framing {
            assembler: FrameAssembler::new(num_channels, frame_len, hop)?,
            frame_bufs: vec![Vec::with_capacity(frame_len); num_channels],
        })
    }
}

/// One independent audio stream processed against an [`Engine`]: the complete
/// detection + localization + tracking worker.
///
/// A session owns every piece of per-stream mutable state — trigger noise floor,
/// Kalman tracker, chunk-to-frame assembler, feature/steering scratch, latency
/// statistics — while the heavyweight immutable state (detector weights, steering
/// operator, FFT plans) lives in the engine and is shared by reference.
///
/// Input can arrive as exact frames ([`Session::process_frame_with`]), as
/// arbitrary-size planar `f64` chunks ([`Session::push_chunk_with`]), or in any
/// capture-driver format ([`Session::push_input_with`] with [`AudioInput`]);
/// whole recordings go through [`Session::process_recording_with`]. All entry
/// points share one framing implementation and produce identical events, and all
/// emit events **by reference** through a caller-supplied [`EventSink`] — the
/// steady-state path performs no heap allocation. Thin `Vec`-returning wrappers
/// ([`Session::push_chunk`], [`Session::process_recording`]) are kept for
/// convenience and experiments.
pub struct Session {
    config: PipelineConfig,
    sample_rate: f64,
    num_channels: usize,
    stages: StageGraph,
    framing: Option<Framing>,
    latency: LatencyReport,
    frames_processed: usize,
    frames_analyzed: usize,
    localization_shed: bool,
    observer: Option<Box<dyn StageObserver>>,
    ticks: TickSource,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("config", &self.config)
            .field("sample_rate", &self.sample_rate)
            .field("num_channels", &self.num_channels)
            .field("stages", &self.stages)
            .field("framing", &self.framing)
            .field("latency", &self.latency)
            .field("frames_processed", &self.frames_processed)
            .field("frames_analyzed", &self.frames_analyzed)
            .field("localization_shed", &self.localization_shed)
            .field("observer_attached", &self.observer.is_some())
            .field("ticks", &self.ticks)
            .finish()
    }
}

impl Session {
    /// Returns the configuration (the session's current mode, other fields as
    /// validated at build time).
    pub fn config(&self) -> PipelineConfig {
        self.config
    }

    /// Returns the audio sample rate in Hz.
    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }

    /// Returns the number of input channels.
    pub fn num_channels(&self) -> usize {
        self.num_channels
    }

    /// Returns the operating mode.
    pub fn mode(&self) -> OperatingMode {
        self.config.mode
    }

    /// Switches the operating mode (e.g. drive ↔ park).
    ///
    /// On an actual transition the gated-stage state — the trigger's noise-floor
    /// estimate and the azimuth tracker — is reset, so state accumulated in one
    /// mode can never leak into the next (a drive-mode noise floor is meaningless
    /// to the park-mode trigger, and a parked tracker estimate is stale by the
    /// time driving resumes). Setting the current mode again is a no-op and does
    /// **not** disturb a running stream. Buffered streaming input is preserved
    /// either way.
    pub fn set_mode(&mut self, mode: OperatingMode) {
        if self.config.mode == mode {
            return;
        }
        self.config.mode = mode;
        self.stages.reset();
    }

    /// Returns true if localization is available (array geometry known, ≥ 2 mics).
    pub fn localization_available(&self) -> bool {
        self.stages.localize.is_available()
    }

    /// Sheds (or restores) localization for this stream without touching the
    /// operating mode: while shed, frames still run trigger + detection and
    /// events still fire, but the SRP/tracking stage is skipped and events carry
    /// no azimuth — the same detection-first priority the paper's drive/park
    /// duty-cycling encodes, applied per stream.
    ///
    /// This is the graceful-degradation hook of the serving layer: an overloaded
    /// host drops the expensive localization stage first and restores it when
    /// load falls. Unlike [`Session::set_mode`], toggling shed never resets
    /// stream state — tracker and trigger survive, so restoring fidelity resumes
    /// tracking from where it left off instead of restarting cold.
    pub fn set_localization_shed(&mut self, shed: bool) {
        self.localization_shed = shed;
    }

    /// Returns true while localization is shed via
    /// [`Session::set_localization_shed`].
    pub fn localization_shed(&self) -> bool {
        self.localization_shed
    }

    /// Attaches a per-stream stage observer: from the next frame on, every
    /// executed stage emits a timing span into it. Like
    /// [`Session::set_localization_shed`], attaching (or replacing) an
    /// observer never resets stream state — buffered input, trigger noise
    /// floor and tracker all survive, and stage results are bit-for-bit
    /// unaffected.
    pub fn set_observer(&mut self, observer: Box<dyn StageObserver>) {
        self.observer = Some(observer);
    }

    /// Detaches the stage observer (if any), returning it to the caller.
    /// Subsequent frames take the uninstrumented path.
    pub fn clear_observer(&mut self) -> Option<Box<dyn StageObserver>> {
        self.observer.take()
    }

    /// Returns true while a stage observer is attached.
    pub fn observer_attached(&self) -> bool {
        self.observer.is_some()
    }

    /// Re-anchors the session's span clock onto `ticks`. A host serving many
    /// streams hands every session a copy of one source, so the
    /// `start_ticks` of spans from different streams are directly comparable
    /// on a single timeline.
    pub fn set_tick_source(&mut self, ticks: TickSource) {
        self.ticks = ticks;
    }

    /// Per-stage latency statistics accumulated so far.
    pub fn latency_report(&self) -> &LatencyReport {
        &self.latency
    }

    /// Number of frames received.
    pub fn frames_processed(&self) -> usize {
        self.frames_processed
    }

    /// Number of frames on which the full analysis ran (in park mode this is the
    /// number of trigger wake-ups).
    pub fn frames_analyzed(&self) -> usize {
        self.frames_analyzed
    }

    /// Fraction of frames on which the full analysis ran — 1.0 in drive mode, the
    /// trigger duty cycle in park mode.
    pub fn analysis_duty_cycle(&self) -> f64 {
        if self.frames_processed == 0 {
            0.0
        } else {
            self.frames_analyzed as f64 / self.frames_processed as f64
        }
    }

    /// Samples currently buffered by the streaming assembler, waiting for enough
    /// input to complete the next frame. Zero before any chunk push.
    pub fn pending_samples(&self) -> usize {
        self.framing
            .as_ref()
            .map_or(0, |f| f.assembler.samples_buffered())
    }

    /// Discards any partially assembled streaming input and restarts streaming frame
    /// numbering at 0. Latency statistics and frame counters are retained. Buffers
    /// are kept, so resetting does not reintroduce allocations.
    pub fn reset_streaming(&mut self) {
        if let Some(framing) = &mut self.framing {
            framing.assembler.reset();
        }
    }

    /// Processes one multichannel frame (`frame[channel][sample]`, every channel
    /// exactly `frame_len` samples), reporting through `sink`, and returns the
    /// frame's outcome.
    ///
    /// This is the real-time hot path: in steady state it performs **no heap
    /// allocation** — all stages reuse session-owned scratch, and an emitted
    /// event is built on the stack and passed to the sink by reference.
    ///
    /// # Errors
    ///
    /// Returns an error if the channel count or frame length is wrong, or an
    /// analysis stage fails.
    pub fn process_frame_with<S: EventSink>(
        &mut self,
        frame: &[&[f64]],
        frame_index: usize,
        sink: &mut S,
    ) -> Result<FrameOutcome, PipelineError> {
        if frame.len() != self.num_channels {
            return Err(PipelineError::ChannelMismatch {
                expected: self.num_channels,
                actual: frame.len(),
            });
        }
        for ch in frame {
            if ch.len() != self.config.frame_len {
                return Err(PipelineError::invalid_config(
                    "frame",
                    format!(
                        "every channel must have {} samples, got {}",
                        self.config.frame_len,
                        ch.len()
                    ),
                ));
            }
        }
        self.frames_processed += 1;
        let params = FrameParams {
            gate_on_trigger: self.config.mode == OperatingMode::Park,
            localization_enabled: self.config.mode.localization_enabled()
                && !self.localization_shed,
            confidence_threshold: self.config.confidence_threshold,
        };
        let obs = self.observer.as_mut().map(|observer| ObsCtx {
            observer: observer.as_mut(),
            ticks: &self.ticks,
            frame_index: frame_index as u64,
        });
        let outcome = self
            .stages
            .run_frame_observed(frame, params, &mut self.latency, obs)?;
        self.latency.count_frame();
        match outcome {
            FrameOutcome::Gated => {}
            FrameOutcome::Analyzed => self.frames_analyzed += 1,
            FrameOutcome::Detection {
                class,
                confidence,
                azimuth_deg,
                tracked_azimuth_deg,
            } => {
                self.frames_analyzed += 1;
                let event = PerceptionEvent {
                    frame_index,
                    time_s: frame_index as f64 * self.config.hop as f64 / self.sample_rate,
                    class,
                    confidence,
                    azimuth_deg,
                    tracked_azimuth_deg,
                    // Inline copy of the tracker's snapshots: the event stays
                    // heap-free, so emission through the sink allocates nothing.
                    tracks: TrackList::from_slice(self.stages.track.tracks()),
                };
                sink.on_event(&event);
            }
        }
        sink.on_frame(&outcome);
        Ok(outcome)
    }

    /// Convenience wrapper around [`process_frame_with`](Self::process_frame_with)
    /// returning the emitted event (if any) by value.
    ///
    /// # Errors
    ///
    /// Same conditions as [`process_frame_with`](Self::process_frame_with).
    pub fn process_frame(
        &mut self,
        frame: &[&[f64]],
        frame_index: usize,
    ) -> Result<Option<PerceptionEvent>, PipelineError> {
        let mut latest = LatestEvent::new();
        self.process_frame_with(frame, frame_index, &mut latest)?;
        Ok(latest.take())
    }

    /// Streams one chunk in **any** supported sample format and layout (see
    /// [`AudioInput`]) into the session, reporting completed frames and emitted
    /// events through `sink`. Returns the number of frames processed during this
    /// call.
    ///
    /// Chunk sizes need not relate to `frame_len` or `hop` in any way: the
    /// internal assembler buffers the stream and emits exactly-`frame_len` frames
    /// every `hop` samples, so any chunking — and any sample format — of the same
    /// signal yields the same events. Samples are converted and de-interleaved
    /// directly into the assembler's rings; no intermediate buffer is built, and
    /// steady state performs no heap allocation for channel counts up to 32.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::ChannelMismatch`] if the chunk's channel count is
    /// wrong, [`PipelineError::InterleavedLayout`] if an interleaved chunk is not
    /// a whole number of channel frames, or an error if the channels have unequal
    /// lengths or an analysis stage fails. If an analysis stage fails, the frame
    /// being analyzed has already been consumed from the stream (its `hop`
    /// advance applied) and its result is lost; the remaining buffered samples
    /// are preserved, so a caller may continue streaming from the next frame
    /// after handling the error.
    pub fn push_input_with<S: EventSink>(
        &mut self,
        input: AudioInput<'_>,
        sink: &mut S,
    ) -> Result<usize, PipelineError> {
        if input.num_channels() != self.num_channels {
            return Err(PipelineError::ChannelMismatch {
                expected: self.num_channels,
                actual: input.num_channels(),
            });
        }
        // Move the framing state out of `self` so the frame buffers can be borrowed
        // while `process_frame_with` takes `&mut self`.
        let mut framing = match self.framing.take() {
            Some(f) => f,
            None => Framing::new(self.num_channels, self.config.frame_len, self.config.hop)?,
        };
        let result = self.ingest_and_drain(&mut framing, input, sink);
        self.framing = Some(framing);
        result
    }

    fn ingest_and_drain<S: EventSink>(
        &mut self,
        framing: &mut Framing,
        input: AudioInput<'_>,
        sink: &mut S,
    ) -> Result<usize, PipelineError> {
        match input {
            AudioInput::PlanarI16(chunk) => framing.assembler.push_planar(chunk)?,
            AudioInput::PlanarF32(chunk) => framing.assembler.push_planar(chunk)?,
            AudioInput::PlanarF64(chunk) => framing.assembler.push_planar(chunk)?,
            AudioInput::InterleavedI16 { data, channels } => {
                push_interleaved(&mut framing.assembler, data, channels)?
            }
            AudioInput::InterleavedF32 { data, channels } => {
                push_interleaved(&mut framing.assembler, data, channels)?
            }
            AudioInput::InterleavedF64 { data, channels } => {
                push_interleaved(&mut framing.assembler, data, channels)?
            }
        }
        let mut emitted = 0;
        while framing.assembler.frame_ready() {
            let index = framing.assembler.emit_into(&mut framing.frame_bufs)?;
            with_channel_views(&framing.frame_bufs, |views| {
                self.process_frame_with(views, index, sink)
            })?;
            emitted += 1;
        }
        Ok(emitted)
    }

    /// Streams one planar `f64` chunk (`chunk[channel][sample]`, every channel
    /// the same length) into the session, reporting through `sink`. Returns the
    /// number of frames processed during this call.
    ///
    /// Shorthand for [`push_input_with`](Self::push_input_with) with
    /// [`AudioInput::planar`]; see there for the full contract.
    ///
    /// # Errors
    ///
    /// Same conditions as [`push_input_with`](Self::push_input_with).
    pub fn push_chunk_with<S: EventSink>(
        &mut self,
        chunk: &[&[f64]],
        sink: &mut S,
    ) -> Result<usize, PipelineError> {
        self.push_input_with(AudioInput::PlanarF64(chunk), sink)
    }

    /// Convenience wrapper around [`push_chunk_with`](Self::push_chunk_with)
    /// appending emitted events to `events`. Returns the number of frames
    /// processed during this call.
    ///
    /// # Errors
    ///
    /// Same conditions as [`push_chunk_with`](Self::push_chunk_with).
    pub fn push_chunk_into(
        &mut self,
        chunk: &[&[f64]],
        events: &mut Vec<PerceptionEvent>,
    ) -> Result<usize, PipelineError> {
        self.push_chunk_with(chunk, events)
    }

    /// Convenience wrapper around [`push_chunk_with`](Self::push_chunk_with)
    /// returning the events as a fresh `Vec`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`push_chunk_with`](Self::push_chunk_with).
    pub fn push_chunk(&mut self, chunk: &[&[f64]]) -> Result<Vec<PerceptionEvent>, PipelineError> {
        let mut events = Vec::new();
        self.push_chunk_with(chunk, &mut events)?;
        Ok(events)
    }

    /// Processes a whole multichannel recording with the configured frame/hop,
    /// reporting through `sink`. Returns the number of frames processed.
    ///
    /// Implemented on the same streaming assembler as the chunk entry points (the
    /// recording is one big chunk); any in-progress streaming state is reset
    /// before and after, and the trailing samples that do not fill a final frame
    /// are dropped, as a batch framer would.
    ///
    /// # Errors
    ///
    /// Returns an error if the recording's channel count does not match or any frame
    /// fails to process.
    pub fn process_recording_with<S: EventSink>(
        &mut self,
        audio: &MultichannelAudio,
        sink: &mut S,
    ) -> Result<usize, PipelineError> {
        if audio.num_channels() != self.num_channels {
            return Err(PipelineError::ChannelMismatch {
                expected: self.num_channels,
                actual: audio.num_channels(),
            });
        }
        self.reset_streaming();
        let frames =
            with_channel_views(audio.channels(), |chunk| self.push_chunk_with(chunk, sink))?;
        self.reset_streaming();
        Ok(frames)
    }

    /// Convenience wrapper around
    /// [`process_recording_with`](Self::process_recording_with) returning every
    /// emitted event as a fresh `Vec`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`process_recording_with`](Self::process_recording_with).
    pub fn process_recording(
        &mut self,
        audio: &MultichannelAudio,
    ) -> Result<Vec<PerceptionEvent>, PipelineError> {
        let mut events = Vec::new();
        self.process_recording_with(audio, &mut events)?;
        Ok(events)
    }

    /// Detector class events not gated by the pipeline: classifies a mono clip
    /// directly (useful for diagnostics).
    ///
    /// # Errors
    ///
    /// Returns an error if the clip is shorter than one detector frame.
    pub fn classify_clip(&self, audio: &[f64]) -> Result<EventClass, PipelineError> {
        self.stages.detect.classify_clip(audio)
    }
}

/// Pushes an interleaved chunk, first rejecting layouts that are not a whole
/// number of channel frames with the typed [`PipelineError::InterleavedLayout`]
/// (pre-empting the untyped length error the assembler itself would raise —
/// the assembler keeps its own check as part of the public `ispot_dsp`
/// contract for direct callers).
fn push_interleaved<S: ispot_dsp::sample::Sample>(
    assembler: &mut FrameAssembler,
    data: &[S],
    channels: usize,
) -> Result<(), PipelineError> {
    if channels == 0 || !data.len().is_multiple_of(channels) {
        return Err(PipelineError::InterleavedLayout {
            samples: data.len(),
            channels,
        });
    }
    assembler.push_interleaved(data)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{AlertCounter, VecSink};
    use ispot_roadsim::geometry::Position;
    use ispot_sed::sirens::{SirenKind, SirenSynthesizer};

    #[test]
    fn builder_rejects_each_degenerate_config() {
        // Regression guards for the satellite fix: every one of these used to be
        // representable and only misbehaved deep in the hot path (`hop = 0`
        // stalls the assembler; `num_directions = 0` yields an empty SRP map on
        // every frame; out-of-range trigger parameters corrupt the noise floor).
        let cases: Vec<(&str, PipelineBuilder)> = vec![
            ("frame_len", PipelineBuilder::new(16_000.0).frame_len(0)),
            ("hop zero", PipelineBuilder::new(16_000.0).hop(0)),
            (
                "hop beyond frame",
                PipelineBuilder::new(16_000.0).frame_len(1024).hop(1025),
            ),
            (
                "num_directions",
                PipelineBuilder::new(16_000.0).num_directions(0),
            ),
            (
                "confidence low",
                PipelineBuilder::new(16_000.0).confidence_threshold(-0.1),
            ),
            (
                "confidence high",
                PipelineBuilder::new(16_000.0).confidence_threshold(1.1),
            ),
            (
                "confidence nan",
                PipelineBuilder::new(16_000.0).confidence_threshold(f64::NAN),
            ),
            (
                "trigger threshold",
                PipelineBuilder::new(16_000.0).trigger(crate::trigger::TriggerConfig {
                    threshold_db: f64::NAN,
                    ..Default::default()
                }),
            ),
            (
                "trigger smoothing",
                PipelineBuilder::new(16_000.0).trigger(crate::trigger::TriggerConfig {
                    floor_smoothing: 1.0,
                    ..Default::default()
                }),
            ),
            ("channels", PipelineBuilder::new(16_000.0).channels(0)),
            ("sample_rate", PipelineBuilder::new(0.0)),
            (
                "tracking max_tracks",
                PipelineBuilder::new(16_000.0).tracking(TrackingConfig {
                    max_tracks: 0,
                    ..Default::default()
                }),
            ),
            (
                "tracking gate",
                PipelineBuilder::new(16_000.0).tracking(TrackingConfig {
                    gate_deg: f64::NAN,
                    ..Default::default()
                }),
            ),
            (
                "tracking confirm window",
                PipelineBuilder::new(16_000.0).tracking(TrackingConfig {
                    confirm_hits: 4,
                    confirm_window: 2,
                    ..Default::default()
                }),
            ),
            (
                "tracking salience",
                PipelineBuilder::new(16_000.0).tracking(TrackingConfig {
                    min_salience: -0.5,
                    ..Default::default()
                }),
            ),
            (
                "search decimation zero",
                PipelineBuilder::new(16_000.0).search(SrpSearchConfig {
                    decimation: 0,
                    ..SrpSearchConfig::hierarchical()
                }),
            ),
            (
                "search coarse grid too small",
                PipelineBuilder::new(16_000.0).search(SrpSearchConfig {
                    decimation: 64,
                    ..SrpSearchConfig::hierarchical()
                }),
            ),
            (
                "search no coarse peaks",
                PipelineBuilder::new(16_000.0).search(SrpSearchConfig {
                    coarse_peaks: 0,
                    ..SrpSearchConfig::hierarchical()
                }),
            ),
            (
                "search radius below decimation",
                PipelineBuilder::new(16_000.0).search(SrpSearchConfig {
                    decimation: 4,
                    refine_radius: 3,
                    ..SrpSearchConfig::hierarchical()
                }),
            ),
        ];
        for (what, builder) in cases {
            assert!(
                matches!(
                    builder.build_engine(),
                    Err(PipelineError::InvalidConfig { .. })
                ),
                "{what} accepted"
            );
        }
        // hop == frame_len is the legal upper edge.
        assert!(PipelineBuilder::new(16_000.0)
            .frame_len(1024)
            .hop(1024)
            .build()
            .is_ok());
    }

    #[test]
    fn engine_sessions_are_independent_and_share_state() {
        let fs = 16_000.0;
        let array = MicrophoneArray::circular(4, 0.2, Position::new(0.0, 0.0, 1.0));
        let engine = PipelineBuilder::new(fs)
            .array(&array)
            .build_engine()
            .unwrap();
        assert!(engine.localization_available());
        assert_eq!(engine.num_channels(), 4);

        let mut a = engine.open_session();
        let mut b = engine.open_session();
        // The heavyweight state is genuinely shared, not copied.
        assert!(Arc::ptr_eq(
            a.stages.detect.detector(),
            b.stages.detect.detector()
        ));
        assert!(Arc::ptr_eq(
            a.stages.localize.localizer().unwrap(),
            b.stages.localize.localizer().unwrap()
        ));

        // Feeding one session leaves the other untouched.
        let siren = SirenSynthesizer::new(SirenKind::Wail, fs).synthesize(0.5);
        let chunk: Vec<&[f64]> = vec![&siren; 4];
        let mut sink = VecSink::new();
        a.push_chunk_with(&chunk, &mut sink).unwrap();
        assert!(a.frames_processed() > 0);
        assert_eq!(b.frames_processed(), 0);
        assert_eq!(b.pending_samples(), 0);

        // And the second session produces the same events as the first on the
        // same input: per-stream state is fully isolated.
        let mut sink_b = VecSink::new();
        b.push_chunk_with(&chunk, &mut sink_b).unwrap();
        assert_eq!(sink.events(), sink_b.events());
    }

    #[test]
    fn hierarchical_search_reports_the_same_alerts_as_exhaustive() {
        use ispot_roadsim::engine::Simulator;
        use ispot_roadsim::scene::SceneBuilder;
        use ispot_roadsim::source::SoundSource;
        use ispot_roadsim::trajectory::Trajectory;

        let fs = 16_000.0;
        let array = MicrophoneArray::circular(6, 0.2, Position::new(0.0, 0.0, 1.0));
        let siren = SirenSynthesizer::new(SirenKind::Wail, fs).synthesize(1.0);
        let az = 60.0f64.to_radians();
        let scene = SceneBuilder::new(fs)
            .source(SoundSource::new(
                siren,
                Trajectory::fixed(Position::new(20.0 * az.cos(), 20.0 * az.sin(), 1.0)),
            ))
            .array(array.clone())
            .reflection(false)
            .air_absorption(false)
            .build()
            .unwrap();
        let audio = Simulator::new(scene).unwrap().run().unwrap();

        let run = |search: ispot_ssl::srp_fast::SrpSearchConfig| {
            let mut session = PipelineBuilder::new(fs)
                .array(&array)
                .search(search)
                .build()
                .unwrap();
            let mut sink = VecSink::new();
            session.process_recording_with(&audio, &mut sink).unwrap();
            sink
        };
        let exhaustive = run(SrpSearchConfig::exhaustive());
        let hierarchical = run(SrpSearchConfig::hierarchical());
        assert!(!exhaustive.events().is_empty());
        // Identical detections; azimuths from both search strategies stay within
        // one coarse cell of each other (the map peak itself is refined exactly).
        assert_eq!(exhaustive.events().len(), hierarchical.events().len());
        let cell_deg = 360.0 / 181.0 * 4.0;
        for (a, b) in exhaustive.events().iter().zip(hierarchical.events()) {
            assert_eq!(a.frame_index, b.frame_index);
            assert_eq!(a.class, b.class);
            match (a.azimuth_deg, b.azimuth_deg) {
                (Some(az_a), Some(az_b)) => {
                    let err = ispot_ssl::metrics::angular_error_deg(az_a, az_b);
                    assert!(err <= cell_deg + 1e-9, "{az_a} vs {az_b}");
                }
                (None, None) => {}
                other => panic!("localization availability diverged: {other:?}"),
            }
        }
    }

    #[test]
    fn events_expose_the_multi_track_view_consistently() {
        use ispot_roadsim::engine::Simulator;
        use ispot_roadsim::scene::SceneBuilder;
        use ispot_roadsim::source::SoundSource;
        use ispot_roadsim::trajectory::Trajectory;

        let fs = 16_000.0;
        // The irregular hexagon breaks the regular array's reflection symmetry
        // so mirror lobes cannot pollute the two-source SRP map.
        let array = MicrophoneArray::irregular_hexagon(Position::new(0.0, 0.0, 1.0));
        // Two static sirens far apart in bearing: both must surface as tracks.
        let scene = SceneBuilder::new(fs)
            .source(
                SoundSource::new(
                    SirenSynthesizer::new(SirenKind::Wail, fs).synthesize(2.0),
                    Trajectory::fixed(Position::new(12.0, 10.0, 1.0)),
                )
                .with_gain(3.0),
            )
            .source(
                SoundSource::new(
                    SirenSynthesizer::new(SirenKind::Yelp, fs).synthesize(2.0),
                    Trajectory::fixed(Position::new(-5.0, -16.0, 1.0)),
                )
                .with_gain(1.5),
            )
            .array(array.clone())
            .reflection(false)
            .air_absorption(false)
            .build()
            .unwrap();
        let audio = Simulator::new(scene).unwrap().run().unwrap();
        let mut session = PipelineBuilder::new(fs).array(&array).build().unwrap();
        let mut sink = VecSink::new();
        session.process_recording_with(&audio, &mut sink).unwrap();
        let events = sink.events();
        assert!(!events.is_empty());
        assert!(
            events.iter().any(|e| e.tracks.confirmed().count() >= 2),
            "no event saw both sources as confirmed tracks"
        );
        for event in events {
            // The legacy single-source fields are views of the same state: the
            // tracked azimuth is the best (first) track, and track snapshots
            // arrive best-first with confirmed tracks ahead of tentative ones.
            if let Some(tracked) = event.tracked_azimuth_deg {
                assert_eq!(tracked, event.tracks[0].azimuth_deg, "{event:?}");
            }
            let statuses: Vec<bool> = event.tracks.iter().map(|t| t.is_confirmed()).collect();
            let mut sorted = statuses.clone();
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            assert_eq!(statuses, sorted, "confirmed tracks must sort first");
        }
    }

    #[test]
    fn localization_shed_drops_azimuths_and_restores_without_reset() {
        let fs = 16_000.0;
        let array = MicrophoneArray::circular(4, 0.2, Position::new(0.0, 0.0, 1.0));
        let siren = SirenSynthesizer::new(SirenKind::Wail, fs).synthesize(1.0);
        let channels: Vec<&[f64]> = vec![&siren; 4];
        let engine = PipelineBuilder::new(fs)
            .array(&array)
            .build_engine()
            .unwrap();

        // Shed from the start: detection events still fire, but nothing is
        // localized or tracked.
        let mut shed = engine.open_session();
        assert!(!shed.localization_shed());
        shed.set_localization_shed(true);
        assert!(shed.localization_shed());
        let mut shed_sink = VecSink::new();
        shed.push_chunk_with(&channels, &mut shed_sink).unwrap();
        assert!(
            !shed_sink.events().is_empty(),
            "detection must survive shed"
        );
        for event in shed_sink.events() {
            assert_eq!(event.azimuth_deg, None, "{event:?}");
            assert_eq!(event.tracked_azimuth_deg, None, "{event:?}");
            assert!(event.tracks.is_empty(), "{event:?}");
        }

        // Restore mid-stream: later frames localize again (no state reset, so
        // the assembler keeps its position and frame indices stay monotonic).
        shed.set_localization_shed(false);
        let mut restored_sink = VecSink::new();
        shed.push_chunk_with(&channels, &mut restored_sink).unwrap();
        assert!(
            restored_sink
                .events()
                .iter()
                .any(|e| e.azimuth_deg.is_some()),
            "localization must resume after restore"
        );

        // Shed never changes *detection* results: classes and confidences match
        // a full-fidelity session frame for frame over the shed window.
        let mut full = engine.open_session();
        let mut full_sink = VecSink::new();
        full.push_chunk_with(&channels, &mut full_sink).unwrap();
        assert_eq!(full_sink.events().len(), shed_sink.events().len());
        for (a, b) in full_sink.events().iter().zip(shed_sink.events()) {
            assert_eq!(a.frame_index, b.frame_index);
            assert_eq!(a.class, b.class);
            assert_eq!(a.confidence, b.confidence);
        }
    }

    #[test]
    fn sink_receives_every_frame_outcome() {
        let fs = 16_000.0;
        let siren = SirenSynthesizer::new(SirenKind::Yelp, fs).synthesize(1.0);
        let mut session = PipelineBuilder::new(fs).build().unwrap();
        let mut counter = AlertCounter::new();
        let frames = session.push_chunk_with(&[&siren], &mut counter).unwrap();
        assert_eq!(frames, (siren.len() - 2048) / 1024 + 1);
        assert_eq!(counter.frames, frames);
        assert!(counter.alerts > 0);
        assert!(counter.events >= counter.alerts);
        assert_eq!(counter.gated, 0, "drive mode never gates");
    }

    #[test]
    fn interleaved_layout_errors_are_typed() {
        let mut session = PipelineBuilder::new(16_000.0).channels(2).build().unwrap();
        let odd = [0.0f64; 5];
        let mut sink = VecSink::new();
        let err = session
            .push_input_with(AudioInput::interleaved(&odd[..], 2), &mut sink)
            .unwrap_err();
        assert!(matches!(
            err,
            PipelineError::InterleavedLayout {
                samples: 5,
                channels: 2
            }
        ));
        // Wrong channel count is still a channel mismatch, not a layout error.
        let err = session
            .push_input_with(AudioInput::interleaved(&odd[..], 5), &mut sink)
            .unwrap_err();
        assert!(matches!(err, PipelineError::ChannelMismatch { .. }));
    }

    #[test]
    fn mode_transitions_reset_gated_state_deterministically() {
        let fs = 16_000.0;
        let siren = SirenSynthesizer::new(SirenKind::Wail, fs).synthesize(2.0);
        let loud: Vec<f64> = siren.iter().map(|x| x * 0.9).collect();
        let frame_a = &loud[0..2048];
        let frame_b = &loud[4096..6144];

        let engine = PipelineBuilder::new(fs).build_engine().unwrap();

        // Accumulate drive-mode state, detour through park, return to drive.
        let mut toured = engine.open_session();
        for i in 0..8 {
            toured.process_frame(&[frame_a], i).unwrap();
        }
        toured.set_mode(OperatingMode::Park);
        for i in 8..16 {
            toured.process_frame(&[frame_a], i).unwrap();
        }
        toured.set_mode(OperatingMode::Drive);

        // A fresh drive session must now see exactly the same events for the same
        // frames: no trigger noise floor or tracker state may survive the tour.
        let mut fresh = engine.open_session();
        for i in 0..4 {
            let toured_event = toured.process_frame(&[frame_b], i).unwrap();
            let fresh_event = fresh.process_frame(&[frame_b], i).unwrap();
            assert_eq!(toured_event, fresh_event, "frame {i}");
        }

        // Re-setting the current mode is a no-op: it must not reset mid-stream
        // state (here: the trigger's park-mode wake-up statistics).
        let mut park = engine.open_session();
        park.set_mode(OperatingMode::Park);
        for i in 0..6 {
            park.process_frame(&[frame_a], i).unwrap();
        }
        let seen = park.stages.trigger.trigger().frames_seen();
        assert!(seen > 0);
        park.set_mode(OperatingMode::Park);
        assert_eq!(park.stages.trigger.trigger().frames_seen(), seen);
    }
}
