//! Driver-friendly audio ingestion: sample formats and channel layouts.
//!
//! Capture front-ends deliver audio as interleaved `i16` or `f32` blocks far more
//! often than as the planar `f64` slices the analysis runs on. [`AudioInput`]
//! describes one incoming chunk in any of those shapes; the pipeline
//! de-interleaves and converts it **directly into the frame assembler's rings**
//! (via the generic `ispot_dsp::framing` entry points), so no intermediate
//! conversion or de-interleave buffer is ever built — ingestion stays
//! allocation-free in steady state regardless of the wire format.
//!
//! See [`ispot_dsp::sample::Sample`] for the exact conversion rules.

use ispot_dsp::sample::Sample;

/// One multichannel audio chunk in any supported sample format and layout.
///
/// Construct with [`AudioInput::planar`] (one slice per channel) or
/// [`AudioInput::interleaved`] (`data[sample * channels + channel]`, the layout
/// capture drivers deliver). Chunks may have any length, including zero;
/// interleaved chunks must contain a whole number of channel frames.
///
/// # Example
///
/// ```
/// use ispot_core::input::AudioInput;
///
/// let pcm: Vec<i16> = vec![0; 640]; // a 10 ms stereo capture block at 16 kHz
/// let input = AudioInput::interleaved(&pcm, 2);
/// assert_eq!(input.num_channels(), 2);
/// assert_eq!(input.samples_per_channel(), Some(320));
/// ```
#[derive(Debug, Clone, Copy)]
pub enum AudioInput<'a> {
    /// Planar 16-bit PCM: one slice per channel.
    PlanarI16(&'a [&'a [i16]]),
    /// Planar 32-bit float: one slice per channel.
    PlanarF32(&'a [&'a [f32]]),
    /// Planar 64-bit float: one slice per channel (the pipeline's native format).
    PlanarF64(&'a [&'a [f64]]),
    /// Interleaved 16-bit PCM.
    InterleavedI16 {
        /// Channel-interleaved samples (`data[sample * channels + channel]`).
        data: &'a [i16],
        /// Number of interleaved channels.
        channels: usize,
    },
    /// Interleaved 32-bit float.
    InterleavedF32 {
        /// Channel-interleaved samples (`data[sample * channels + channel]`).
        data: &'a [f32],
        /// Number of interleaved channels.
        channels: usize,
    },
    /// Interleaved 64-bit float.
    InterleavedF64 {
        /// Channel-interleaved samples (`data[sample * channels + channel]`).
        data: &'a [f64],
        /// Number of interleaved channels.
        channels: usize,
    },
}

/// Dispatches a planar slice of any [`Sample`] type into the matching
/// [`AudioInput`] variant.
pub trait PlanarSample: Sample {
    /// Wraps `chunk` in the planar variant for this sample type.
    fn planar<'a>(chunk: &'a [&'a [Self]]) -> AudioInput<'a>;
    /// Wraps `data` in the interleaved variant for this sample type.
    fn interleaved(data: &[Self], channels: usize) -> AudioInput<'_>;
}

impl PlanarSample for i16 {
    fn planar<'a>(chunk: &'a [&'a [i16]]) -> AudioInput<'a> {
        AudioInput::PlanarI16(chunk)
    }
    fn interleaved(data: &[i16], channels: usize) -> AudioInput<'_> {
        AudioInput::InterleavedI16 { data, channels }
    }
}

impl PlanarSample for f32 {
    fn planar<'a>(chunk: &'a [&'a [f32]]) -> AudioInput<'a> {
        AudioInput::PlanarF32(chunk)
    }
    fn interleaved(data: &[f32], channels: usize) -> AudioInput<'_> {
        AudioInput::InterleavedF32 { data, channels }
    }
}

impl PlanarSample for f64 {
    fn planar<'a>(chunk: &'a [&'a [f64]]) -> AudioInput<'a> {
        AudioInput::PlanarF64(chunk)
    }
    fn interleaved(data: &[f64], channels: usize) -> AudioInput<'_> {
        AudioInput::InterleavedF64 { data, channels }
    }
}

impl<'a> AudioInput<'a> {
    /// Wraps a planar chunk (`chunk[channel][sample]`) of any supported sample
    /// type.
    pub fn planar<S: PlanarSample>(chunk: &'a [&'a [S]]) -> Self {
        S::planar(chunk)
    }

    /// Wraps an interleaved chunk (`data[sample * channels + channel]`) of any
    /// supported sample type.
    pub fn interleaved<S: PlanarSample>(data: &'a [S], channels: usize) -> Self {
        S::interleaved(data, channels)
    }

    /// The number of channels this chunk carries (the slice count for planar
    /// layouts, the declared channel count for interleaved layouts).
    pub fn num_channels(&self) -> usize {
        match self {
            AudioInput::PlanarI16(c) => c.len(),
            AudioInput::PlanarF32(c) => c.len(),
            AudioInput::PlanarF64(c) => c.len(),
            AudioInput::InterleavedI16 { channels, .. }
            | AudioInput::InterleavedF32 { channels, .. }
            | AudioInput::InterleavedF64 { channels, .. } => *channels,
        }
    }

    /// Samples per channel, or `None` when the layout is inconsistent (planar
    /// channels of unequal length, or an interleaved chunk that is not a whole
    /// number of channel frames).
    pub fn samples_per_channel(&self) -> Option<usize> {
        fn planar_len<T>(chunk: &[&[T]]) -> Option<usize> {
            let len = chunk.first().map_or(0, |c| c.len());
            chunk.iter().all(|c| c.len() == len).then_some(len)
        }
        fn interleaved_len<T>(data: &[T], channels: usize) -> Option<usize> {
            (channels > 0 && data.len().is_multiple_of(channels)).then(|| data.len() / channels)
        }
        match self {
            AudioInput::PlanarI16(c) => planar_len(c),
            AudioInput::PlanarF32(c) => planar_len(c),
            AudioInput::PlanarF64(c) => planar_len(c),
            AudioInput::InterleavedI16 { data, channels } => interleaved_len(data, *channels),
            AudioInput::InterleavedF32 { data, channels } => interleaved_len(data, *channels),
            AudioInput::InterleavedF64 { data, channels } => interleaved_len(data, *channels),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_and_length_accessors() {
        let a = [0i16, 1, 2, 3];
        let b = [4i16, 5, 6, 7];
        let channels = [&a[..], &b[..]];
        let planar = AudioInput::planar(&channels);
        assert_eq!(planar.num_channels(), 2);
        assert_eq!(planar.samples_per_channel(), Some(4));

        let inter = AudioInput::interleaved(&a[..], 2);
        assert_eq!(inter.num_channels(), 2);
        assert_eq!(inter.samples_per_channel(), Some(2));
    }

    #[test]
    fn inconsistent_layouts_report_none() {
        let a = [0.0f32; 4];
        let b = [0.0f32; 3];
        assert_eq!(
            AudioInput::planar(&[&a[..], &b[..]]).samples_per_channel(),
            None
        );
        let data = [0.0f64; 5];
        assert_eq!(
            AudioInput::interleaved(&data[..], 2).samples_per_channel(),
            None
        );
        assert_eq!(
            AudioInput::interleaved(&data[..], 0).samples_per_channel(),
            None
        );
        let empty: [&[f64]; 0] = [];
        assert_eq!(AudioInput::planar(&empty).samples_per_channel(), Some(0));
    }
}
