//! Operating modes of the perception system.

use serde::{Deserialize, Serialize};

/// The two operating modes required by the project (Sec. II, requirement 3): a fully
/// functional low-latency mode while driving and a trigger-based low-power mode while
/// parked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum OperatingMode {
    /// Drive mode: every frame is analysed (detection + localization + tracking).
    #[default]
    Drive,
    /// Park mode: the always-on energy trigger gates the expensive stages; frames are
    /// only analysed after a wake-up.
    Park,
}

impl OperatingMode {
    /// Returns true if the expensive analysis runs on every frame.
    pub fn is_always_on(self) -> bool {
        matches!(self, OperatingMode::Drive)
    }

    /// Returns true if localization is performed in this mode. Park mode only performs
    /// detection after a trigger; localization (and tracking) is a drive-mode feature.
    pub fn localization_enabled(self) -> bool {
        matches!(self, OperatingMode::Drive)
    }

    /// Short lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            OperatingMode::Drive => "drive",
            OperatingMode::Park => "park",
        }
    }
}

impl std::fmt::Display for OperatingMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_properties() {
        assert!(OperatingMode::Drive.is_always_on());
        assert!(!OperatingMode::Park.is_always_on());
        assert!(OperatingMode::Drive.localization_enabled());
        assert!(!OperatingMode::Park.localization_enabled());
        assert_eq!(OperatingMode::default(), OperatingMode::Drive);
        assert_eq!(OperatingMode::Park.to_string(), "park");
    }
}
