//! Event sinks: zero-copy consumers of pipeline output.
//!
//! Every streaming entry point of the pipeline ([`Session::process_frame_with`],
//! [`Session::push_chunk_with`], [`Session::push_input_with`],
//! [`Session::process_recording_with`], [`StreamRunner::run_with`]) emits
//! [`PerceptionEvent`]s **by reference** through a caller-supplied [`EventSink`].
//! The event is built on the stack and handed to the sink; nothing is boxed,
//! cloned or collected unless the sink chooses to — so a sink that only counts,
//! thresholds or forwards to a fixed-size slot keeps the whole streaming path at
//! zero heap allocations per frame in steady state.
//!
//! `Vec<PerceptionEvent>` implements `EventSink` by cloning each event into the
//! vector, which is what the thin `Vec`-returning convenience wrappers
//! ([`Session::push_chunk`], [`Session::process_recording`]) use internally.
//!
//! [`Session::process_frame_with`]: crate::api::Session::process_frame_with
//! [`Session::push_chunk_with`]: crate::api::Session::push_chunk_with
//! [`Session::push_input_with`]: crate::api::Session::push_input_with
//! [`Session::process_recording_with`]: crate::api::Session::process_recording_with
//! [`Session::push_chunk`]: crate::api::Session::push_chunk
//! [`Session::process_recording`]: crate::api::Session::process_recording
//! [`StreamRunner::run_with`]: crate::stream::StreamRunner::run_with

use crate::events::PerceptionEvent;
use crate::stages::FrameOutcome;

/// A consumer of pipeline output, fed by reference as frames complete.
///
/// Implementations decide what (if anything) to retain; the pipeline itself
/// never stores or clones events on the sink's behalf.
///
/// # Example
///
/// ```
/// use ispot_core::prelude::*;
///
/// /// Keeps only the most confident alert seen so far.
/// #[derive(Default)]
/// struct BestAlert(Option<PerceptionEvent>);
///
/// impl EventSink for BestAlert {
///     fn on_event(&mut self, event: &PerceptionEvent) {
///         if self.0.as_ref().is_none_or(|b| event.confidence > b.confidence) {
///             self.0 = Some(event.clone());
///         }
///     }
/// }
/// ```
pub trait EventSink {
    /// Called once per emitted perception event, before
    /// [`on_frame`](EventSink::on_frame) for the frame that produced it.
    fn on_event(&mut self, event: &PerceptionEvent);

    /// Called once per completed frame with its [`FrameOutcome`] (gated,
    /// analyzed, or detection). Default: ignored.
    fn on_frame(&mut self, outcome: &FrameOutcome) {
        let _ = outcome;
    }
}

/// Events are cloned into the vector; frame outcomes are ignored. This is the
/// adapter behind the `Vec`-returning convenience wrappers.
impl EventSink for Vec<PerceptionEvent> {
    fn on_event(&mut self, event: &PerceptionEvent) {
        self.push(event.clone());
    }
}

/// A sink that collects every event into an owned `Vec`.
///
/// Functionally equivalent to sinking into a `Vec<PerceptionEvent>` directly;
/// exists as a named adapter for code that wants to be explicit about the
/// collection behaviour.
#[derive(Debug, Clone, Default)]
pub struct VecSink {
    events: Vec<PerceptionEvent>,
}

impl VecSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        VecSink::default()
    }

    /// The events collected so far.
    pub fn events(&self) -> &[PerceptionEvent] {
        &self.events
    }

    /// Consumes the sink, returning the collected events.
    pub fn into_events(self) -> Vec<PerceptionEvent> {
        self.events
    }

    /// Discards the collected events, keeping the allocation.
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

impl EventSink for VecSink {
    fn on_event(&mut self, event: &PerceptionEvent) {
        self.events.push(event.clone());
    }
}

/// A sink that keeps only the most recent event — a fixed-size slot, so feeding
/// it never allocates ([`PerceptionEvent`] owns no heap memory).
///
/// This is the typical shape of a real-time alerting consumer: the HMI shows the
/// latest alert, not a history.
#[derive(Debug, Clone, Default)]
pub struct LatestEvent {
    latest: Option<PerceptionEvent>,
}

impl LatestEvent {
    /// Creates an empty slot.
    pub fn new() -> Self {
        LatestEvent::default()
    }

    /// The most recent event, if any was emitted.
    pub fn latest(&self) -> Option<&PerceptionEvent> {
        self.latest.as_ref()
    }

    /// Takes the most recent event, leaving the slot empty.
    pub fn take(&mut self) -> Option<PerceptionEvent> {
        self.latest.take()
    }
}

impl EventSink for LatestEvent {
    fn on_event(&mut self, event: &PerceptionEvent) {
        self.latest = Some(event.clone());
    }
}

/// A sink that counts frames and events without retaining anything — never
/// allocates, whatever the event rate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AlertCounter {
    /// Number of events whose class is an emergency sound.
    pub alerts: usize,
    /// Total number of emitted events. The current pipeline only emits events
    /// for emergency classes, so this equals [`alerts`](AlertCounter::alerts)
    /// unless the sink is also fed from a source that reports non-alert events.
    pub events: usize,
    /// Number of completed frames (gated + analyzed + detections).
    pub frames: usize,
    /// Number of frames the park-mode trigger kept asleep.
    pub gated: usize,
}

impl AlertCounter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        AlertCounter::default()
    }
}

impl EventSink for AlertCounter {
    fn on_event(&mut self, event: &PerceptionEvent) {
        self.events += 1;
        if event.is_alert() {
            self.alerts += 1;
        }
    }

    fn on_frame(&mut self, outcome: &FrameOutcome) {
        self.frames += 1;
        if matches!(outcome, FrameOutcome::Gated) {
            self.gated += 1;
        }
    }
}

/// Adapts a closure into an [`EventSink`] (frame outcomes are ignored).
///
/// ```
/// use ispot_core::sink::{EventSink, FnSink};
///
/// let mut count = 0;
/// let mut sink = FnSink(|_event: &ispot_core::events::PerceptionEvent| count += 1);
/// # let _ = &mut sink;
/// ```
#[derive(Debug)]
pub struct FnSink<F>(pub F);

impl<F: FnMut(&PerceptionEvent)> EventSink for FnSink<F> {
    fn on_event(&mut self, event: &PerceptionEvent) {
        (self.0)(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispot_sed::EventClass;

    fn event(class: EventClass, confidence: f64) -> PerceptionEvent {
        PerceptionEvent {
            frame_index: 0,
            time_s: 0.0,
            class,
            confidence,
            azimuth_deg: None,
            tracked_azimuth_deg: None,
            tracks: crate::events::TrackList::default(),
        }
    }

    #[test]
    fn vec_and_vecsink_collect_clones() {
        let e = event(EventClass::WailSiren, 0.9);
        let mut vec: Vec<PerceptionEvent> = Vec::new();
        vec.on_event(&e);
        assert_eq!(vec.len(), 1);
        let mut sink = VecSink::new();
        sink.on_event(&e);
        sink.on_frame(&FrameOutcome::Analyzed);
        assert_eq!(sink.events(), &vec[..]);
        sink.clear();
        assert!(sink.events().is_empty());
    }

    #[test]
    fn latest_event_keeps_only_the_newest() {
        let mut sink = LatestEvent::new();
        assert!(sink.latest().is_none());
        sink.on_event(&event(EventClass::CarHorn, 0.4));
        sink.on_event(&event(EventClass::WailSiren, 0.8));
        assert_eq!(sink.latest().unwrap().class, EventClass::WailSiren);
        assert_eq!(sink.take().unwrap().confidence, 0.8);
        assert!(sink.latest().is_none());
    }

    #[test]
    fn alert_counter_tallies_frames_events_and_gating() {
        let mut sink = AlertCounter::new();
        sink.on_event(&event(EventClass::WailSiren, 0.9));
        sink.on_frame(&FrameOutcome::Detection {
            class: EventClass::WailSiren,
            confidence: 0.9,
            azimuth_deg: None,
            tracked_azimuth_deg: None,
        });
        sink.on_frame(&FrameOutcome::Gated);
        sink.on_frame(&FrameOutcome::Analyzed);
        assert_eq!(
            sink,
            AlertCounter {
                alerts: 1,
                events: 1,
                frames: 3,
                gated: 1
            }
        );
    }

    #[test]
    fn fn_sink_invokes_the_closure() {
        let mut seen = Vec::new();
        let mut sink = FnSink(|e: &PerceptionEvent| seen.push(e.class));
        sink.on_event(&event(EventClass::YelpSiren, 0.5));
        sink.on_frame(&FrameOutcome::Analyzed);
        let FnSink(_) = sink;
        assert_eq!(seen, vec![EventClass::YelpSiren]);
    }
}
