//! The perception pipeline as a graph of named stages.
//!
//! The end-to-end analysis — wake trigger → detection → localization → tracking —
//! used to live inline in `AcousticPerceptionPipeline::process_frame`. This module
//! factors each step into a [`Stage`] with a stable name (the key under which the
//! [`LatencyReport`] accounts its cost) and composes them in a [`StageGraph`] that
//! owns all per-frame scratch memory. The graph's steady-state frame path performs
//! **zero heap allocations**: the mono mixdown is written into a buffer preallocated
//! at construction, and every stage operates on borrowed slices.
//!
//! Keeping stages first-class (rather than inlined) is what lets the pipeline scale
//! to many concurrent streams later: a stage graph is `Send`, self-contained, and
//! cheap to instantiate per stream, while its structure stays inspectable for the
//! co-design cost models.

use crate::error::PipelineError;
use crate::latency::LatencyReport;
use crate::trigger::{EnergyTrigger, TriggerConfig};
use ispot_roadsim::microphone::MicrophoneArray;
use ispot_sed::baseline::{DetectorScratch, SpectralTemplateDetector};
use ispot_sed::EventClass;
use ispot_ssl::srp_fast::SrpPhatFast;
use ispot_ssl::srp_phat::{SrpConfig, SrpMap, SrpScratch};
use ispot_ssl::tracking::AzimuthKalmanTracker;
use std::sync::Arc;

/// A named unit of per-frame work inside the perception pipeline.
///
/// The name doubles as the stage's key in the [`LatencyReport`]; it must therefore
/// stay stable across refactors ("trigger", "detection", "localization",
/// "tracking").
pub trait Stage {
    /// Stable stage name used for latency accounting.
    fn name(&self) -> &'static str;

    /// Clears any state accumulated across frames (mode switches, new streams).
    fn reset(&mut self);
}

/// Park-mode wake stage: the always-on low-power energy trigger.
#[derive(Debug)]
pub struct TriggerStage {
    trigger: EnergyTrigger,
}

impl TriggerStage {
    /// Creates the stage from a trigger configuration.
    pub fn new(config: TriggerConfig) -> Self {
        TriggerStage {
            trigger: EnergyTrigger::new(config),
        }
    }

    /// Runs the trigger on a mono frame; returns true when the frame wakes the rest
    /// of the graph.
    pub fn gate(&mut self, mono: &[f64], latency: &mut LatencyReport) -> bool {
        let trigger = &mut self.trigger;
        latency.time("trigger", || trigger.process_frame(mono))
    }

    /// Read access to the underlying trigger (duty cycle, noise floor).
    pub fn trigger(&self) -> &EnergyTrigger {
        &self.trigger
    }
}

impl Stage for TriggerStage {
    fn name(&self) -> &'static str {
        "trigger"
    }

    fn reset(&mut self) {
        self.trigger.reset();
    }
}

/// Detection stage: classifies the mono mixdown into an [`EventClass`] with a
/// confidence score.
///
/// The detector itself (templates, filterbank, FFT plan) is immutable and shared
/// behind an [`Arc`] — every session opened against one engine reuses the same
/// weights — while the per-frame feature scratch is stage-owned, so the
/// classification path performs no heap allocation.
#[derive(Debug)]
pub struct DetectStage {
    detector: Arc<SpectralTemplateDetector>,
    scratch: DetectorScratch,
}

impl DetectStage {
    /// Stable stage name, shared by [`Stage::name`] and the latency accounting
    /// in [`DetectStage::classify`].
    const NAME: &'static str = "detection";

    /// Creates the stage for the given sample rate, building a private detector.
    ///
    /// # Errors
    ///
    /// Returns an error if the detector cannot be built.
    pub fn new(sample_rate: f64) -> Result<Self, PipelineError> {
        Ok(Self::shared(Arc::new(SpectralTemplateDetector::new(
            sample_rate,
        )?)))
    }

    /// Creates the stage around an existing shared detector, allocating only the
    /// per-stream scratch. This is the cheap per-session constructor used by the
    /// engine.
    pub fn shared(detector: Arc<SpectralTemplateDetector>) -> Self {
        let scratch = detector.make_scratch();
        DetectStage { detector, scratch }
    }

    /// The shared detector (clone the `Arc` to open another stage against it).
    pub fn detector(&self) -> &Arc<SpectralTemplateDetector> {
        &self.detector
    }

    /// Classifies a mono frame, timing the call. Reuses the stage-owned scratch:
    /// no per-frame allocation.
    pub fn classify(
        &mut self,
        mono: &[f64],
        latency: &mut LatencyReport,
    ) -> Result<(EventClass, f64), PipelineError> {
        let DetectStage { detector, scratch } = self;
        Ok(latency.time(Self::NAME, || {
            detector.predict_with_confidence_into(mono, scratch)
        })?)
    }

    /// Classifies an arbitrary-length mono clip outside the frame path (diagnostics).
    ///
    /// # Errors
    ///
    /// Returns an error if the clip is shorter than one detector frame.
    pub fn classify_clip(&self, audio: &[f64]) -> Result<EventClass, PipelineError> {
        Ok(self.detector.predict(audio)?)
    }
}

impl Stage for DetectStage {
    fn name(&self) -> &'static str {
        Self::NAME
    }

    fn reset(&mut self) {}
}

/// Localization stage: low-complexity SRP-PHAT over the multichannel frame.
/// Absent (None) when the array geometry is unknown or has fewer than two mics.
///
/// The stage owns the localizer's [`SrpScratch`] and output [`SrpMap`], so the
/// per-frame localization path performs no heap allocation.
#[derive(Debug)]
pub struct LocalizeStage {
    localizer: Option<ActiveLocalizer>,
}

/// A live localizer plus the scratch memory its frame path reuses. The
/// processor (steering operator, FFT plans) is immutable and shared behind an
/// [`Arc`]; only the scratch and the output map are per-stream.
#[derive(Debug)]
struct ActiveLocalizer {
    srp: Arc<SrpPhatFast>,
    scratch: SrpScratch,
    map: SrpMap,
}

impl LocalizeStage {
    /// Creates a disabled stage (detection-only pipelines).
    pub fn disabled() -> Self {
        LocalizeStage { localizer: None }
    }

    /// Creates the stage for a microphone array (disabled for mono arrays).
    ///
    /// # Errors
    ///
    /// Returns an error if the SRP-PHAT localizer cannot be built.
    pub fn for_array(
        config: SrpConfig,
        array: &MicrophoneArray,
        sample_rate: f64,
    ) -> Result<Self, PipelineError> {
        if array.len() < 2 {
            return Ok(Self::disabled());
        }
        let srp = Arc::new(SrpPhatFast::new(config, array, sample_rate)?);
        Ok(Self::shared(Some(srp)))
    }

    /// Creates the stage around an existing shared localizer (or a disabled stage
    /// for `None`), allocating only the per-stream scratch and output map. This
    /// is the cheap per-session constructor used by the engine.
    pub fn shared(srp: Option<Arc<SrpPhatFast>>) -> Self {
        LocalizeStage {
            localizer: srp.map(|srp| {
                let scratch = srp.make_scratch();
                // Pre-size the output map too, so the very first frame allocates
                // nothing.
                let map = SrpMap::new(
                    srp.grid().azimuths_deg().to_vec(),
                    vec![0.0; srp.grid().num_directions()],
                );
                ActiveLocalizer { srp, scratch, map }
            }),
        }
    }

    /// The shared localizer, if the stage is enabled (clone the `Arc` to open
    /// another stage against it).
    pub fn localizer(&self) -> Option<&Arc<SrpPhatFast>> {
        self.localizer.as_ref().map(|a| &a.srp)
    }

    /// Returns true when a localizer is available.
    pub fn is_available(&self) -> bool {
        self.localizer.is_some()
    }

    /// Localizes the frame, returning the azimuth estimate in degrees (None when
    /// disabled). Reuses the stage-owned scratch and map: no per-frame allocation.
    pub fn localize(
        &mut self,
        frame: &[&[f64]],
        latency: &mut LatencyReport,
    ) -> Result<Option<f64>, PipelineError> {
        match &mut self.localizer {
            None => Ok(None),
            Some(ActiveLocalizer { srp, scratch, map }) => {
                latency.time("localization", || srp.compute_map_into(frame, scratch, map))?;
                Ok(map.peak().map(|(_, azimuth_deg)| azimuth_deg))
            }
        }
    }

    /// The SRP map produced by the most recent [`LocalizeStage::localize`] call
    /// (empty before the first frame; None when the stage is disabled).
    pub fn last_map(&self) -> Option<&SrpMap> {
        self.localizer.as_ref().map(|a| &a.map)
    }
}

impl Stage for LocalizeStage {
    fn name(&self) -> &'static str {
        "localization"
    }

    fn reset(&mut self) {}
}

/// Tracking stage: azimuth Kalman filter smoothing the per-frame estimates.
#[derive(Debug)]
pub struct TrackStage {
    tracker: AzimuthKalmanTracker,
}

impl TrackStage {
    /// Creates the stage with the given process / measurement noise (degrees²).
    pub fn new(process_noise: f64, measurement_noise: f64) -> Self {
        TrackStage {
            tracker: AzimuthKalmanTracker::new(process_noise, measurement_noise),
        }
    }

    /// Feeds one azimuth measurement, returning the smoothed azimuth.
    pub fn track(&mut self, azimuth_deg: f64, latency: &mut LatencyReport) -> f64 {
        let tracker = &mut self.tracker;
        latency
            .time("tracking", || tracker.update(azimuth_deg))
            .azimuth_deg
    }
}

impl Stage for TrackStage {
    fn name(&self) -> &'static str {
        "tracking"
    }

    fn reset(&mut self) {
        self.tracker.reset();
    }
}

/// What the stage graph concluded about one frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FrameOutcome {
    /// Park mode: the wake trigger kept the expensive stages asleep.
    Gated,
    /// The full analysis ran but no event cleared the confidence threshold.
    Analyzed,
    /// The full analysis ran and produced a detection.
    Detection {
        /// Detected event class.
        class: EventClass,
        /// Detector confidence in [0, 1].
        confidence: f64,
        /// Raw SRP-PHAT azimuth estimate (None when localization is off).
        azimuth_deg: Option<f64>,
        /// Kalman-smoothed azimuth (None when localization is off).
        tracked_azimuth_deg: Option<f64>,
    },
}

/// The composed trigger → detect → localize → track graph with its scratch memory.
///
/// Owns every buffer the frame path needs, so running a frame allocates nothing.
#[derive(Debug)]
pub struct StageGraph {
    /// Park-mode wake stage.
    pub trigger: TriggerStage,
    /// Detection stage.
    pub detect: DetectStage,
    /// Localization stage.
    pub localize: LocalizeStage,
    /// Tracking stage.
    pub track: TrackStage,
    /// Preallocated mono mixdown scratch (`frame_len` samples).
    mono: Vec<f64>,
}

/// Inputs controlling one [`StageGraph::run_frame`] call.
#[derive(Debug, Clone, Copy)]
pub struct FrameParams {
    /// Gate the expensive stages behind the wake trigger (park mode).
    pub gate_on_trigger: bool,
    /// Run localization/tracking on detections (drive mode with a known array).
    pub localization_enabled: bool,
    /// Minimum detector confidence for a detection to be reported.
    pub confidence_threshold: f64,
}

impl StageGraph {
    /// Composes a graph from its stages, preallocating scratch for `frame_len`.
    pub fn new(
        trigger: TriggerStage,
        detect: DetectStage,
        localize: LocalizeStage,
        track: TrackStage,
        frame_len: usize,
    ) -> Self {
        StageGraph {
            trigger,
            detect,
            localize,
            track,
            mono: vec![0.0; frame_len],
        }
    }

    /// Resets every stateful stage (streams restart, mode switches).
    pub fn reset(&mut self) {
        self.trigger.reset();
        self.detect.reset();
        self.localize.reset();
        self.track.reset();
    }

    /// Runs the graph on one multichannel frame.
    ///
    /// The steady-state path performs no heap allocation: the mixdown reuses the
    /// preallocated scratch and all stages borrow it.
    ///
    /// # Errors
    ///
    /// Returns an error if `frame` is empty or any channel does not hold exactly
    /// `frame_len` samples, or if the detection or localization stage fails.
    pub fn run_frame(
        &mut self,
        frame: &[&[f64]],
        params: FrameParams,
        latency: &mut LatencyReport,
    ) -> Result<FrameOutcome, PipelineError> {
        // Stage 0 (mixdown): average the channels into the preallocated scratch.
        // Destructure so the scratch borrow and the stage borrows stay disjoint.
        let StageGraph {
            trigger,
            detect,
            localize,
            track,
            mono,
        } = self;
        // An empty frame would turn the 1/N scale into infinity (NaN mixdown) and a
        // short channel would panic on indexing below; reject both up front.
        if frame.is_empty() {
            return Err(PipelineError::invalid_config(
                "frame",
                "must contain at least one channel",
            ));
        }
        for ch in frame {
            if ch.len() != mono.len() {
                return Err(PipelineError::invalid_config(
                    "frame",
                    format!(
                        "every channel must have {} samples, got {}",
                        mono.len(),
                        ch.len()
                    ),
                ));
            }
        }
        let scale = 1.0 / frame.len() as f64;
        for (i, slot) in mono.iter_mut().enumerate() {
            *slot = frame.iter().map(|c| c[i]).sum::<f64>() * scale;
        }
        // Stage 1 (trigger): in park mode the graph sleeps until the trigger fires.
        if params.gate_on_trigger && !trigger.gate(mono, latency) {
            return Ok(FrameOutcome::Gated);
        }
        // Stage 2 (detection).
        let (class, confidence) = detect.classify(mono, latency)?;
        if !class.is_event() || confidence < params.confidence_threshold {
            return Ok(FrameOutcome::Analyzed);
        }
        // Stage 3 + 4 (localization, tracking): only on confident detections.
        let mut azimuth_deg = None;
        let mut tracked = None;
        if params.localization_enabled {
            if let Some(az) = localize.localize(frame, latency)? {
                azimuth_deg = Some(az);
                tracked = Some(track.track(az, latency));
            }
        }
        Ok(FrameOutcome::Detection {
            class,
            confidence,
            azimuth_deg,
            tracked_azimuth_deg: tracked,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispot_sed::sirens::{SirenKind, SirenSynthesizer};

    fn graph(frame_len: usize) -> StageGraph {
        StageGraph::new(
            TriggerStage::new(TriggerConfig::default()),
            DetectStage::new(16_000.0).unwrap(),
            LocalizeStage::disabled(),
            TrackStage::new(1.0, 36.0),
            frame_len,
        )
    }

    #[test]
    fn stage_names_are_stable() {
        let g = graph(512);
        assert_eq!(g.trigger.name(), "trigger");
        assert_eq!(g.detect.name(), "detection");
        assert_eq!(g.localize.name(), "localization");
        assert_eq!(g.track.name(), "tracking");
    }

    #[test]
    fn siren_frame_produces_a_detection_outcome() {
        let fs = 16_000.0;
        let siren = SirenSynthesizer::new(SirenKind::Wail, fs).synthesize(0.5);
        let mut g = graph(2048);
        let mut latency = LatencyReport::new();
        let params = FrameParams {
            gate_on_trigger: false,
            localization_enabled: false,
            confidence_threshold: 0.2,
        };
        let frame = [&siren[0..2048]];
        let outcome = g.run_frame(&frame, params, &mut latency).unwrap();
        match outcome {
            FrameOutcome::Detection {
                class,
                confidence,
                azimuth_deg,
                tracked_azimuth_deg,
            } => {
                assert!(class.is_event());
                assert!(confidence >= 0.2);
                assert!(azimuth_deg.is_none());
                assert!(tracked_azimuth_deg.is_none());
            }
            other => panic!("expected a detection, got {other:?}"),
        }
        assert!(latency.stage("detection").is_some());
    }

    #[test]
    fn silence_is_gated_in_park_mode() {
        let mut g = graph(512);
        let mut latency = LatencyReport::new();
        let params = FrameParams {
            gate_on_trigger: true,
            localization_enabled: false,
            confidence_threshold: 0.2,
        };
        let quiet = vec![1e-6; 512];
        // After a couple of calibration frames the trigger settles on the noise
        // floor and keeps gating silence.
        let mut gated = 0;
        for _ in 0..20 {
            if g.run_frame(&[&quiet], params, &mut latency).unwrap() == FrameOutcome::Gated {
                gated += 1;
            }
        }
        assert!(gated > 10, "only {gated} frames gated");
    }

    #[test]
    fn empty_and_short_frames_are_rejected() {
        // Regression: an empty channel slice used to mix down to NaN (0.0 × ∞) and
        // a short channel used to panic on out-of-bounds indexing.
        let mut g = graph(512);
        let mut latency = LatencyReport::new();
        let params = FrameParams {
            gate_on_trigger: false,
            localization_enabled: false,
            confidence_threshold: 0.2,
        };
        let empty: [&[f64]; 0] = [];
        assert!(matches!(
            g.run_frame(&empty, params, &mut latency),
            Err(PipelineError::InvalidConfig { .. })
        ));
        let short = vec![0.0; 100];
        let ok = vec![0.0; 512];
        assert!(matches!(
            g.run_frame(&[&ok, &short], params, &mut latency),
            Err(PipelineError::InvalidConfig { .. })
        ));
        // A well-formed frame still runs after the rejected ones.
        assert!(g.run_frame(&[&ok], params, &mut latency).is_ok());
    }

    #[test]
    fn localize_stage_exposes_its_map_and_reuses_it() {
        use ispot_roadsim::geometry::Position;
        let fs = 16_000.0;
        let array = MicrophoneArray::circular(4, 0.2, Position::new(0.0, 0.0, 1.0));
        let mut stage = LocalizeStage::for_array(SrpConfig::default(), &array, fs).unwrap();
        assert!(stage.is_available());
        assert!(stage.last_map().is_some());
        let mut latency = LatencyReport::new();
        let ch: Vec<f64> = (0..2048).map(|i| (i as f64 * 0.11).sin()).collect();
        let frame: Vec<&[f64]> = vec![&ch; 4];
        let az = stage.localize(&frame, &mut latency).unwrap();
        assert!(az.is_some());
        assert_eq!(stage.last_map().unwrap().len(), 181);
        let mut disabled = LocalizeStage::disabled();
        assert!(disabled.localize(&frame, &mut latency).unwrap().is_none());
        assert!(disabled.last_map().is_none());
    }

    #[test]
    fn reset_clears_stage_state() {
        let mut g = graph(512);
        let mut latency = LatencyReport::new();
        let params = FrameParams {
            gate_on_trigger: true,
            localization_enabled: false,
            confidence_threshold: 0.2,
        };
        let quiet = vec![1e-6; 512];
        for _ in 0..5 {
            let _ = g.run_frame(&[&quiet], params, &mut latency).unwrap();
        }
        assert!(g.trigger.trigger().frames_seen() > 0);
        g.reset();
        assert_eq!(g.trigger.trigger().frames_seen(), 0);
    }
}
