//! The perception pipeline as a graph of named stages.
//!
//! The end-to-end analysis — wake trigger → detection → localization → tracking —
//! used to live inline in `AcousticPerceptionPipeline::process_frame`. This module
//! factors each step into a [`Stage`] with a stable name (the key under which the
//! [`LatencyReport`] accounts its cost) and composes them in a [`StageGraph`] that
//! owns all per-frame scratch memory. The graph's steady-state frame path performs
//! **zero heap allocations**: the mono mixdown is written into a buffer preallocated
//! at construction, and every stage operates on borrowed slices.
//!
//! Keeping stages first-class (rather than inlined) is what lets the pipeline scale
//! to many concurrent streams later: a stage graph is `Send`, self-contained, and
//! cheap to instantiate per stream, while its structure stays inspectable for the
//! co-design cost models.

use crate::error::PipelineError;
use crate::latency::LatencyReport;
use crate::trigger::{EnergyTrigger, TriggerConfig};
use ispot_obs::{Span, StageId, StageObserver, TickSource};
use ispot_roadsim::microphone::MicrophoneArray;
use ispot_sed::baseline::{DetectorScratch, SpectralTemplateDetector};
use ispot_sed::EventClass;
use ispot_ssl::multitrack::{MultiTargetTracker, TrackSnapshot, TrackingConfig};
use ispot_ssl::srp_fast::SrpPhatFast;
use ispot_ssl::srp_phat::{Peak, SrpConfig, SrpMap, SrpScratch};
use std::sync::Arc;

/// A named unit of per-frame work inside the perception pipeline.
///
/// The name doubles as the stage's key in the [`LatencyReport`]; it must therefore
/// stay stable across refactors ("trigger", "detection", "localization",
/// "tracking").
pub trait Stage {
    /// Stable stage name used for latency accounting.
    fn name(&self) -> &'static str;

    /// Clears any state accumulated across frames (mode switches, new streams).
    fn reset(&mut self);
}

/// Park-mode wake stage: the always-on low-power energy trigger.
#[derive(Debug)]
pub struct TriggerStage {
    trigger: EnergyTrigger,
}

impl TriggerStage {
    /// Creates the stage from a trigger configuration.
    pub fn new(config: TriggerConfig) -> Self {
        TriggerStage {
            trigger: EnergyTrigger::new(config),
        }
    }

    /// Runs the trigger on a mono frame; returns true when the frame wakes the rest
    /// of the graph.
    pub fn gate(&mut self, mono: &[f64], latency: &mut LatencyReport) -> bool {
        let trigger = &mut self.trigger;
        latency.time("trigger", || trigger.process_frame(mono))
    }

    /// Read access to the underlying trigger (duty cycle, noise floor).
    pub fn trigger(&self) -> &EnergyTrigger {
        &self.trigger
    }
}

impl Stage for TriggerStage {
    fn name(&self) -> &'static str {
        "trigger"
    }

    fn reset(&mut self) {
        self.trigger.reset();
    }
}

/// Detection stage: classifies the mono mixdown into an [`EventClass`] with a
/// confidence score.
///
/// The detector itself (templates, filterbank, FFT plan) is immutable and shared
/// behind an [`Arc`] — every session opened against one engine reuses the same
/// weights — while the per-frame feature scratch is stage-owned, so the
/// classification path performs no heap allocation.
#[derive(Debug)]
pub struct DetectStage {
    detector: Arc<SpectralTemplateDetector>,
    scratch: DetectorScratch,
}

impl DetectStage {
    /// Stable stage name, shared by [`Stage::name`] and the latency accounting
    /// in [`DetectStage::classify`].
    const NAME: &'static str = "detection";

    /// Creates the stage for the given sample rate, building a private detector.
    ///
    /// # Errors
    ///
    /// Returns an error if the detector cannot be built.
    pub fn new(sample_rate: f64) -> Result<Self, PipelineError> {
        Ok(Self::shared(Arc::new(SpectralTemplateDetector::new(
            sample_rate,
        )?)))
    }

    /// Creates the stage around an existing shared detector, allocating only the
    /// per-stream scratch. This is the cheap per-session constructor used by the
    /// engine.
    pub fn shared(detector: Arc<SpectralTemplateDetector>) -> Self {
        let scratch = detector.make_scratch();
        DetectStage { detector, scratch }
    }

    /// The shared detector (clone the `Arc` to open another stage against it).
    pub fn detector(&self) -> &Arc<SpectralTemplateDetector> {
        &self.detector
    }

    /// Classifies a mono frame, timing the call. Reuses the stage-owned scratch:
    /// no per-frame allocation.
    pub fn classify(
        &mut self,
        mono: &[f64],
        latency: &mut LatencyReport,
    ) -> Result<(EventClass, f64), PipelineError> {
        let DetectStage { detector, scratch } = self;
        Ok(latency.time(Self::NAME, || {
            detector.predict_with_confidence_into(mono, scratch)
        })?)
    }

    /// Classifies an arbitrary-length mono clip outside the frame path (diagnostics).
    ///
    /// # Errors
    ///
    /// Returns an error if the clip is shorter than one detector frame.
    pub fn classify_clip(&self, audio: &[f64]) -> Result<EventClass, PipelineError> {
        Ok(self.detector.predict(audio)?)
    }
}

impl Stage for DetectStage {
    fn name(&self) -> &'static str {
        Self::NAME
    }

    fn reset(&mut self) {}
}

/// Localization stage: low-complexity SRP-PHAT over the multichannel frame,
/// followed by multi-peak extraction (non-maximum suppression on the wrapped
/// azimuth grid). Absent (None) when the array geometry is unknown or has fewer
/// than two mics.
///
/// The stage owns the localizer's [`SrpScratch`], output [`SrpMap`] and peak
/// scratch, so the per-frame localization path performs no heap allocation.
#[derive(Debug)]
pub struct LocalizeStage {
    localizer: Option<ActiveLocalizer>,
    /// Peak budget per frame (from the tracking configuration).
    max_peaks: usize,
    /// Non-maximum-suppression separation in degrees.
    min_separation_deg: f64,
    /// Fraction of the previous smoothed map retained each frame (0 disables).
    map_smoothing: f64,
}

/// A live localizer plus the scratch memory its frame path reuses. The
/// processor (steering operator, FFT plans) is immutable and shared behind an
/// [`Arc`]; only the scratch, the maps and the peak list are per-stream.
#[derive(Debug)]
struct ActiveLocalizer {
    srp: Arc<SrpPhatFast>,
    scratch: SrpScratch,
    map: SrpMap,
    /// EMA of `map` across frames; peaks are extracted from here, so transient
    /// clutter (inter-source cross-terms, tonal aliasing lobes) is averaged
    /// away before it can spawn tracks. Emptied on reset.
    smoothed: SrpMap,
    peaks: Vec<Peak>,
}

impl LocalizeStage {
    /// Creates a disabled stage (detection-only pipelines).
    pub fn disabled() -> Self {
        Self::shared(None, TrackingConfig::default())
    }

    /// Creates the stage for a microphone array (disabled for mono arrays),
    /// with the default peak-extraction settings.
    ///
    /// # Errors
    ///
    /// Returns an error if the SRP-PHAT localizer cannot be built.
    pub fn for_array(
        config: SrpConfig,
        array: &MicrophoneArray,
        sample_rate: f64,
    ) -> Result<Self, PipelineError> {
        if array.len() < 2 {
            return Ok(Self::disabled());
        }
        let srp = Arc::new(SrpPhatFast::new(config, array, sample_rate)?);
        Ok(Self::shared(Some(srp), TrackingConfig::default()))
    }

    /// Creates the stage around an existing shared localizer (or a disabled stage
    /// for `None`), allocating only the per-stream scratch, output map and peak
    /// list. This is the cheap per-session constructor used by the engine; the
    /// tracking configuration supplies the peak budget and NMS separation.
    pub fn shared(srp: Option<Arc<SrpPhatFast>>, tracking: TrackingConfig) -> Self {
        LocalizeStage {
            localizer: srp.map(|srp| {
                let scratch = srp.make_scratch();
                // Pre-size the output map too, so the very first frame allocates
                // nothing.
                let map = SrpMap::new(
                    srp.grid().azimuths_deg().to_vec(),
                    vec![0.0; srp.grid().num_directions()],
                );
                ActiveLocalizer {
                    srp,
                    scratch,
                    smoothed: map.clone(),
                    map,
                    peaks: Vec::with_capacity(tracking.max_peaks),
                }
            }),
            max_peaks: tracking.max_peaks,
            min_separation_deg: tracking.min_separation_deg,
            map_smoothing: tracking.map_smoothing,
        }
    }

    /// The shared localizer, if the stage is enabled (clone the `Arc` to open
    /// another stage against it).
    pub fn localizer(&self) -> Option<&Arc<SrpPhatFast>> {
        self.localizer.as_ref().map(|a| &a.srp)
    }

    /// Returns true when a localizer is available.
    pub fn is_available(&self) -> bool {
        self.localizer.is_some()
    }

    /// Localizes the frame, extracting the top-K SRP peaks (strongest first)
    /// into the stage-owned scratch, and returns them — `None` when the stage
    /// is disabled, an empty slice when the map has no finite peak. Reuses the
    /// stage-owned scratch, map and peak list: no per-frame allocation.
    ///
    /// # Errors
    ///
    /// Returns an error if the channel count or frame length is wrong.
    pub fn localize_peaks(
        &mut self,
        frame: &[&[f64]],
        latency: &mut LatencyReport,
    ) -> Result<Option<&[Peak]>, PipelineError> {
        match &mut self.localizer {
            None => Ok(None),
            Some(ActiveLocalizer {
                srp,
                scratch,
                map,
                smoothed,
                peaks,
            }) => {
                let (max_peaks, min_sep, retain) =
                    (self.max_peaks, self.min_separation_deg, self.map_smoothing);
                latency.time("localization", || -> Result<(), PipelineError> {
                    srp.compute_map_into(frame, scratch, map)?;
                    if retain > 0.0 {
                        smoothed.smooth_from(map, retain);
                        smoothed.peaks_into(max_peaks, min_sep, peaks);
                    } else {
                        map.peaks_into(max_peaks, min_sep, peaks);
                    }
                    Ok(())
                })?;
                Ok(Some(peaks))
            }
        }
    }

    /// Localizes the frame, returning the azimuth of the **strongest** peak in
    /// degrees (None when disabled). Convenience wrapper around
    /// [`LocalizeStage::localize_peaks`] for single-source consumers.
    ///
    /// # Errors
    ///
    /// Same conditions as [`LocalizeStage::localize_peaks`].
    pub fn localize(
        &mut self,
        frame: &[&[f64]],
        latency: &mut LatencyReport,
    ) -> Result<Option<f64>, PipelineError> {
        Ok(self
            .localize_peaks(frame, latency)?
            .and_then(|peaks| peaks.first())
            .map(|p| p.azimuth_deg))
    }

    /// The SRP map produced by the most recent localize call (empty before the
    /// first frame; None when the stage is disabled).
    pub fn last_map(&self) -> Option<&SrpMap> {
        self.localizer.as_ref().map(|a| &a.map)
    }

    /// The peaks extracted by the most recent localize call (empty before the
    /// first frame; None when the stage is disabled).
    pub fn last_peaks(&self) -> Option<&[Peak]> {
        self.localizer.as_ref().map(|a| a.peaks.as_slice())
    }
}

impl Stage for LocalizeStage {
    fn name(&self) -> &'static str {
        "localization"
    }

    fn reset(&mut self) {
        // Restart the temporal map EMA: smoothing history must never leak
        // across streams or mode switches.
        if let Some(active) = &mut self.localizer {
            active.smoothed.zero();
        }
    }
}

/// Tracking stage: the multi-target tracker — gated nearest-neighbour
/// association of SRP peaks onto a bank of azimuth Kalman tracks with a
/// tentative → confirmed → coasting lifecycle (see
/// [`ispot_ssl::multitrack`]).
///
/// The stage owns all tracker storage (track slots, snapshot buffer,
/// association scratch), so steady-state tracking performs no heap allocation.
#[derive(Debug)]
pub struct TrackStage {
    tracker: MultiTargetTracker,
}

impl TrackStage {
    /// Creates the stage with the default tracking configuration at the given
    /// per-track process / measurement noise (degrees²).
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::InvalidConfig`] if either noise value is not a
    /// positive finite number.
    pub fn new(process_noise: f64, measurement_noise: f64) -> Result<Self, PipelineError> {
        Self::with_config(TrackingConfig {
            process_noise,
            measurement_noise,
            ..TrackingConfig::default()
        })
    }

    /// Creates the stage from a full tracking configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::InvalidConfig`] if the configuration is out of
    /// range.
    pub fn with_config(config: TrackingConfig) -> Result<Self, PipelineError> {
        Ok(TrackStage {
            tracker: MultiTargetTracker::new(config)?,
        })
    }

    /// Feeds one frame's peak list (strongest first, as produced by
    /// [`LocalizeStage::localize_peaks`]) into the tracker and returns the best
    /// track's azimuth — `None` while no track is alive.
    pub fn track_peaks(&mut self, peaks: &[Peak], latency: &mut LatencyReport) -> Option<f64> {
        let tracker = &mut self.tracker;
        latency.time("tracking", || tracker.update(peaks));
        self.best().map(|t| t.azimuth_deg)
    }

    /// Feeds one bare azimuth measurement (a single full-salience peak),
    /// returning the smoothed azimuth of the best track. Kept for
    /// single-source consumers of the classic API.
    pub fn track(&mut self, azimuth_deg: f64, latency: &mut LatencyReport) -> f64 {
        let peak = Peak {
            index: 0,
            azimuth_deg,
            power: 1.0,
            salience: 1.0,
        };
        self.track_peaks(&[peak], latency).unwrap_or(azimuth_deg)
    }

    /// Snapshots of every live track after the most recent update, best first.
    pub fn tracks(&self) -> &[TrackSnapshot] {
        self.tracker.tracks()
    }

    /// The best track (strongest confirmed, falling back to the strongest
    /// tentative hypothesis), if any track is alive.
    pub fn best(&self) -> Option<&TrackSnapshot> {
        self.tracker.best()
    }

    /// Read access to the underlying multi-target tracker.
    pub fn tracker(&self) -> &MultiTargetTracker {
        &self.tracker
    }
}

impl Stage for TrackStage {
    fn name(&self) -> &'static str {
        "tracking"
    }

    fn reset(&mut self) {
        self.tracker.reset();
    }
}

/// What the stage graph concluded about one frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FrameOutcome {
    /// Park mode: the wake trigger kept the expensive stages asleep.
    Gated,
    /// The full analysis ran but no event cleared the confidence threshold.
    Analyzed,
    /// The full analysis ran and produced a detection.
    Detection {
        /// Detected event class.
        class: EventClass,
        /// Detector confidence in [0, 1].
        confidence: f64,
        /// Raw SRP-PHAT azimuth estimate (None when localization is off).
        azimuth_deg: Option<f64>,
        /// Kalman-smoothed azimuth (None when localization is off).
        tracked_azimuth_deg: Option<f64>,
    },
}

/// The composed trigger → detect → localize → track graph with its scratch memory.
///
/// Owns every buffer the frame path needs, so running a frame allocates nothing.
#[derive(Debug)]
pub struct StageGraph {
    /// Park-mode wake stage.
    pub trigger: TriggerStage,
    /// Detection stage.
    pub detect: DetectStage,
    /// Localization stage.
    pub localize: LocalizeStage,
    /// Tracking stage.
    pub track: TrackStage,
    /// Preallocated mono mixdown scratch (`frame_len` samples).
    mono: Vec<f64>,
}

/// Observation context for one frame: where stage spans go, the monotonic
/// clock they are timed against, and the frame index stamped into each span.
///
/// Borrowed, not owned: the observer and tick source live on the
/// [`Session`](crate::api::Session) (or whatever is driving the graph), so
/// building a context per frame is free.
pub struct ObsCtx<'a> {
    /// Destination for the frame's stage spans.
    pub observer: &'a mut dyn StageObserver,
    /// Monotonic clock shared by every span of this stream.
    pub ticks: &'a TickSource,
    /// Frame index stamped into each span.
    pub frame_index: u64,
}

impl std::fmt::Debug for ObsCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsCtx")
            .field("frame_index", &self.frame_index)
            .finish_non_exhaustive()
    }
}

/// Runs one stage body, emitting a timing span when an observation context is
/// attached. With `obs == None` this is a bare call plus one branch — the
/// zero-overhead-when-disabled guarantee of the instrumentation. Hot path: no
/// allocation on either arm.
fn observe<T>(obs: &mut Option<ObsCtx<'_>>, stage: StageId, body: impl FnOnce() -> T) -> T {
    match obs {
        None => body(),
        Some(ctx) => {
            let start_ticks = ctx.ticks.ticks();
            let out = body();
            let duration_ticks = ctx.ticks.ticks().saturating_sub(start_ticks);
            ctx.observer.on_span(Span {
                stage,
                frame_index: ctx.frame_index,
                start_ticks,
                duration_ticks,
            });
            out
        }
    }
}

/// Inputs controlling one [`StageGraph::run_frame`] call.
#[derive(Debug, Clone, Copy)]
pub struct FrameParams {
    /// Gate the expensive stages behind the wake trigger (park mode).
    pub gate_on_trigger: bool,
    /// Run localization/tracking on detections (drive mode with a known array).
    pub localization_enabled: bool,
    /// Minimum detector confidence for a detection to be reported.
    pub confidence_threshold: f64,
}

impl StageGraph {
    /// Composes a graph from its stages, preallocating scratch for `frame_len`.
    pub fn new(
        trigger: TriggerStage,
        detect: DetectStage,
        localize: LocalizeStage,
        track: TrackStage,
        frame_len: usize,
    ) -> Self {
        StageGraph {
            trigger,
            detect,
            localize,
            track,
            mono: vec![0.0; frame_len],
        }
    }

    /// Resets every stateful stage (streams restart, mode switches).
    pub fn reset(&mut self) {
        self.trigger.reset();
        self.detect.reset();
        self.localize.reset();
        self.track.reset();
    }

    /// Runs the graph on one multichannel frame.
    ///
    /// The steady-state path performs no heap allocation: the mixdown reuses the
    /// preallocated scratch and all stages borrow it.
    ///
    /// # Errors
    ///
    /// Returns an error if `frame` is empty or any channel does not hold exactly
    /// `frame_len` samples, or if the detection or localization stage fails.
    pub fn run_frame(
        &mut self,
        frame: &[&[f64]],
        params: FrameParams,
        latency: &mut LatencyReport,
    ) -> Result<FrameOutcome, PipelineError> {
        self.run_frame_observed(frame, params, latency, None)
    }

    /// Runs the graph on one multichannel frame, emitting a timing [`Span`]
    /// per executed stage into `obs` when an observation context is attached.
    ///
    /// This is [`StageGraph::run_frame`] with instrumentation: `obs == None`
    /// takes the identical code path plus one branch per stage, and an
    /// attached observer adds only two tick reads and an `on_span` call per
    /// stage — the instrumented path stays allocation-free (pinned by the
    /// serve-layer counting-allocator test) and stage results are bit-for-bit
    /// unaffected.
    ///
    /// # Errors
    ///
    /// Same conditions as [`StageGraph::run_frame`].
    pub fn run_frame_observed(
        &mut self,
        frame: &[&[f64]],
        params: FrameParams,
        latency: &mut LatencyReport,
        mut obs: Option<ObsCtx<'_>>,
    ) -> Result<FrameOutcome, PipelineError> {
        // Stage 0 (mixdown): average the channels into the preallocated scratch.
        // Destructure so the scratch borrow and the stage borrows stay disjoint.
        let StageGraph {
            trigger,
            detect,
            localize,
            track,
            mono,
        } = self;
        // An empty frame would turn the 1/N scale into infinity (NaN mixdown) and a
        // short channel would panic on indexing below; reject both up front.
        if frame.is_empty() {
            return Err(PipelineError::invalid_config(
                "frame",
                "must contain at least one channel",
            ));
        }
        for ch in frame {
            if ch.len() != mono.len() {
                return Err(PipelineError::invalid_config(
                    "frame",
                    // analyze: allow(alloc) — rejection path: the frame is refused
                    // before any stage runs, so steady-state stays allocation-free
                    format!(
                        "every channel must have {} samples, got {}",
                        mono.len(),
                        ch.len()
                    ),
                ));
            }
        }
        let scale = 1.0 / frame.len() as f64;
        for (i, slot) in mono.iter_mut().enumerate() {
            *slot = frame.iter().map(|c| c[i]).sum::<f64>() * scale;
        }
        // Stage 1 (trigger): in park mode the graph sleeps until the trigger fires.
        if params.gate_on_trigger
            && !observe(&mut obs, StageId::Trigger, || trigger.gate(mono, latency))
        {
            return Ok(FrameOutcome::Gated);
        }
        // Stage 2 (detection).
        let (class, confidence) = observe(&mut obs, StageId::Detection, || {
            detect.classify(mono, latency)
        })?;
        if !class.is_event() || confidence < params.confidence_threshold {
            return Ok(FrameOutcome::Analyzed);
        }
        // Stage 3 + 4 (localization, tracking): only on confident detections.
        // The localizer extracts the top-K SRP peaks and the multi-target
        // tracker associates them onto its track bank; the outcome keeps the
        // classic single-source view (strongest peak, best track) while the
        // full track set is exposed via the track stage.
        let mut azimuth_deg = None;
        let mut tracked = None;
        if params.localization_enabled {
            if let Some(peaks) = observe(&mut obs, StageId::Localization, || {
                localize.localize_peaks(frame, latency)
            })? {
                azimuth_deg = peaks.first().map(|p| p.azimuth_deg);
                tracked = observe(&mut obs, StageId::Tracking, || {
                    track.track_peaks(peaks, latency)
                });
            }
        }
        Ok(FrameOutcome::Detection {
            class,
            confidence,
            azimuth_deg,
            tracked_azimuth_deg: tracked,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispot_sed::sirens::{SirenKind, SirenSynthesizer};

    fn graph(frame_len: usize) -> StageGraph {
        StageGraph::new(
            TriggerStage::new(TriggerConfig::default()),
            DetectStage::new(16_000.0).unwrap(),
            LocalizeStage::disabled(),
            TrackStage::new(1.0, 36.0).unwrap(),
            frame_len,
        )
    }

    #[test]
    fn stage_names_are_stable() {
        let g = graph(512);
        assert_eq!(g.trigger.name(), "trigger");
        assert_eq!(g.detect.name(), "detection");
        assert_eq!(g.localize.name(), "localization");
        assert_eq!(g.track.name(), "tracking");
    }

    #[test]
    fn siren_frame_produces_a_detection_outcome() {
        let fs = 16_000.0;
        let siren = SirenSynthesizer::new(SirenKind::Wail, fs).synthesize(0.5);
        let mut g = graph(2048);
        let mut latency = LatencyReport::new();
        let params = FrameParams {
            gate_on_trigger: false,
            localization_enabled: false,
            confidence_threshold: 0.2,
        };
        let frame = [&siren[0..2048]];
        let outcome = g.run_frame(&frame, params, &mut latency).unwrap();
        match outcome {
            FrameOutcome::Detection {
                class,
                confidence,
                azimuth_deg,
                tracked_azimuth_deg,
            } => {
                assert!(class.is_event());
                assert!(confidence >= 0.2);
                assert!(azimuth_deg.is_none());
                assert!(tracked_azimuth_deg.is_none());
            }
            other => panic!("expected a detection, got {other:?}"),
        }
        assert!(latency.stage("detection").is_some());
    }

    #[test]
    fn silence_is_gated_in_park_mode() {
        let mut g = graph(512);
        let mut latency = LatencyReport::new();
        let params = FrameParams {
            gate_on_trigger: true,
            localization_enabled: false,
            confidence_threshold: 0.2,
        };
        let quiet = vec![1e-6; 512];
        // After a couple of calibration frames the trigger settles on the noise
        // floor and keeps gating silence.
        let mut gated = 0;
        for _ in 0..20 {
            if g.run_frame(&[&quiet], params, &mut latency).unwrap() == FrameOutcome::Gated {
                gated += 1;
            }
        }
        assert!(gated > 10, "only {gated} frames gated");
    }

    #[test]
    fn empty_and_short_frames_are_rejected() {
        // Regression: an empty channel slice used to mix down to NaN (0.0 × ∞) and
        // a short channel used to panic on out-of-bounds indexing.
        let mut g = graph(512);
        let mut latency = LatencyReport::new();
        let params = FrameParams {
            gate_on_trigger: false,
            localization_enabled: false,
            confidence_threshold: 0.2,
        };
        let empty: [&[f64]; 0] = [];
        assert!(matches!(
            g.run_frame(&empty, params, &mut latency),
            Err(PipelineError::InvalidConfig { .. })
        ));
        let short = vec![0.0; 100];
        let ok = vec![0.0; 512];
        assert!(matches!(
            g.run_frame(&[&ok, &short], params, &mut latency),
            Err(PipelineError::InvalidConfig { .. })
        ));
        // A well-formed frame still runs after the rejected ones.
        assert!(g.run_frame(&[&ok], params, &mut latency).is_ok());
    }

    #[test]
    fn localize_stage_exposes_its_map_and_reuses_it() {
        use ispot_roadsim::geometry::Position;
        let fs = 16_000.0;
        let array = MicrophoneArray::circular(4, 0.2, Position::new(0.0, 0.0, 1.0));
        let mut stage = LocalizeStage::for_array(SrpConfig::default(), &array, fs).unwrap();
        assert!(stage.is_available());
        assert!(stage.last_map().is_some());
        let mut latency = LatencyReport::new();
        let ch: Vec<f64> = (0..2048).map(|i| (i as f64 * 0.11).sin()).collect();
        let frame: Vec<&[f64]> = vec![&ch; 4];
        let az = stage.localize(&frame, &mut latency).unwrap();
        assert!(az.is_some());
        assert_eq!(stage.last_map().unwrap().len(), 181);
        let mut disabled = LocalizeStage::disabled();
        assert!(disabled.localize(&frame, &mut latency).unwrap().is_none());
        assert!(disabled.last_map().is_none());
    }

    #[test]
    fn reset_clears_stage_state() {
        let mut g = graph(512);
        let mut latency = LatencyReport::new();
        let params = FrameParams {
            gate_on_trigger: true,
            localization_enabled: false,
            confidence_threshold: 0.2,
        };
        let quiet = vec![1e-6; 512];
        for _ in 0..5 {
            let _ = g.run_frame(&[&quiet], params, &mut latency).unwrap();
        }
        assert!(g.trigger.trigger().frames_seen() > 0);
        g.reset();
        assert_eq!(g.trigger.trigger().frames_seen(), 0);
    }
}
