//! Per-stage latency accounting.
//!
//! The headline hardware result of the paper is an end-to-end frame latency of
//! 8.59 ms on a RasPi-4B-class device after co-design optimization (7.26× faster than
//! the baseline). The pipeline keeps per-stage wall-clock statistics so that experiment
//! E6 can report the same breakdown on the host machine.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Instant;

/// Accumulated latency statistics for one pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct StageLatency {
    /// Number of timed invocations.
    pub invocations: usize,
    /// Total time in milliseconds.
    pub total_ms: f64,
    /// Maximum single-invocation time in milliseconds.
    pub max_ms: f64,
}

impl StageLatency {
    /// Mean time per invocation in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        if self.invocations == 0 {
            0.0
        } else {
            self.total_ms / self.invocations as f64
        }
    }
}

/// A per-stage latency report for a processing run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencyReport {
    stages: BTreeMap<String, StageLatency>,
    frames: usize,
}

impl LatencyReport {
    /// Creates an empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `elapsed_ms` for `stage`.
    ///
    /// Only the first record of a given stage name allocates (the key); every
    /// later record looks the entry up by `&str` and is heap-allocation-free, so
    /// per-frame latency accounting stays off the allocator in steady state.
    pub fn record(&mut self, stage: &str, elapsed_ms: f64) {
        let entry = match self.stages.get_mut(stage) {
            Some(entry) => entry,
            None => self.stages.entry(stage.to_string()).or_default(),
        };
        entry.invocations += 1;
        entry.total_ms += elapsed_ms;
        entry.max_ms = entry.max_ms.max(elapsed_ms);
    }

    /// Times a closure and records it under `stage`, returning the closure result.
    pub fn time<T>(&mut self, stage: &str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.record(stage, start.elapsed().as_secs_f64() * 1e3);
        out
    }

    /// Increments the processed-frame counter.
    pub fn count_frame(&mut self) {
        self.frames += 1;
    }

    /// Number of processed frames.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// Statistics for one stage, if it was ever recorded.
    pub fn stage(&self, stage: &str) -> Option<StageLatency> {
        self.stages.get(stage).copied()
    }

    /// All stages in name order.
    pub fn stages(&self) -> impl Iterator<Item = (&str, &StageLatency)> {
        self.stages.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Total accumulated time across all stages, in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.stages.values().map(|s| s.total_ms).sum()
    }

    /// Mean end-to-end time per processed frame, in milliseconds.
    pub fn mean_frame_ms(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.total_ms() / self.frames as f64
        }
    }

    /// Merges another report into this one (summing stage statistics and frames).
    pub fn merge(&mut self, other: &LatencyReport) {
        for (name, stage) in &other.stages {
            let entry = self.stages.entry(name.clone()).or_default();
            entry.invocations += stage.invocations;
            entry.total_ms += stage.total_ms;
            entry.max_ms = entry.max_ms.max(stage.max_ms);
        }
        self.frames += other.frames;
    }
}

impl std::fmt::Display for LatencyReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "frames: {}  mean end-to-end: {:.3} ms/frame",
            self.frames,
            self.mean_frame_ms()
        )?;
        for (name, stage) in &self.stages {
            writeln!(
                f,
                "  {name:<14} mean {:.3} ms  max {:.3} ms  ({} calls)",
                stage.mean_ms(),
                stage.max_ms,
                stage.invocations
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_and_aggregation() {
        let mut report = LatencyReport::new();
        report.record("features", 1.0);
        report.record("features", 3.0);
        report.record("detector", 2.0);
        report.count_frame();
        report.count_frame();
        let features = report.stage("features").unwrap();
        assert_eq!(features.invocations, 2);
        assert_eq!(features.mean_ms(), 2.0);
        assert_eq!(features.max_ms, 3.0);
        assert_eq!(report.total_ms(), 6.0);
        assert_eq!(report.mean_frame_ms(), 3.0);
        assert_eq!(report.frames(), 2);
    }

    #[test]
    fn time_closure_records_positive_duration() {
        let mut report = LatencyReport::new();
        let value = report.time("work", || {
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                acc = acc.wrapping_add(i);
            }
            acc
        });
        assert!(value > 0);
        assert!(report.stage("work").unwrap().total_ms >= 0.0);
    }

    #[test]
    fn merge_combines_reports() {
        let mut a = LatencyReport::new();
        a.record("x", 1.0);
        a.count_frame();
        let mut b = LatencyReport::new();
        b.record("x", 3.0);
        b.record("y", 2.0);
        b.count_frame();
        a.merge(&b);
        assert_eq!(a.stage("x").unwrap().invocations, 2);
        assert!(a.stage("y").is_some());
        assert_eq!(a.frames(), 2);
    }

    #[test]
    fn display_lists_stages() {
        let mut report = LatencyReport::new();
        report.record("detector", 1.5);
        report.count_frame();
        let text = report.to_string();
        assert!(text.contains("detector"));
        assert!(text.contains("ms/frame"));
    }

    #[test]
    fn empty_report_has_zero_means() {
        let report = LatencyReport::new();
        assert_eq!(report.mean_frame_ms(), 0.0);
        assert_eq!(StageLatency::default().mean_ms(), 0.0);
    }
}
