//! Perception events emitted by the pipeline.

use ispot_sed::EventClass;
use serde::{Deserialize, Serialize};

/// One detection (optionally with localization) produced for an analysis frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerceptionEvent {
    /// Index of the analysis frame that produced the event.
    pub frame_index: usize,
    /// Time of the frame start in seconds from the beginning of the stream.
    pub time_s: f64,
    /// Detected sound class.
    pub class: EventClass,
    /// Detector confidence in `[0, 1]` (softmax probability or template similarity).
    pub confidence: f64,
    /// Instantaneous azimuth estimate in degrees, if localization ran.
    pub azimuth_deg: Option<f64>,
    /// Kalman-smoothed azimuth in degrees, if tracking ran.
    pub tracked_azimuth_deg: Option<f64>,
}

impl PerceptionEvent {
    /// Returns true if this event reports an emergency sound (not background).
    pub fn is_alert(&self) -> bool {
        self.class.is_event()
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        match (self.tracked_azimuth_deg, self.azimuth_deg) {
            (Some(tracked), _) => format!(
                "t={:.2}s {} (conf {:.2}) at {:+.1} deg (tracked)",
                self.time_s, self.class, self.confidence, tracked
            ),
            (None, Some(az)) => format!(
                "t={:.2}s {} (conf {:.2}) at {:+.1} deg",
                self.time_s, self.class, self.confidence, az
            ),
            (None, None) => format!(
                "t={:.2}s {} (conf {:.2})",
                self.time_s, self.class, self.confidence
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alert_flag_and_summary() {
        let event = PerceptionEvent {
            frame_index: 3,
            time_s: 0.38,
            class: EventClass::WailSiren,
            confidence: 0.91,
            azimuth_deg: Some(-34.0),
            tracked_azimuth_deg: Some(-32.5),
        };
        assert!(event.is_alert());
        let s = event.summary();
        assert!(s.contains("wail") && s.contains("tracked"));
        let background = PerceptionEvent {
            class: EventClass::Background,
            azimuth_deg: None,
            tracked_azimuth_deg: None,
            ..event
        };
        assert!(!background.is_alert());
        assert!(!background.summary().contains("deg"));
    }
}
