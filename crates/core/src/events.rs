//! Perception events emitted by the pipeline.

use ispot_sed::EventClass;
use ispot_ssl::multitrack::{TrackSnapshot, MAX_TRACKS};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One detection (optionally with localization and multi-target tracking)
/// produced for an analysis frame.
///
/// Multi-source scenes surface as the [`tracks`](PerceptionEvent::tracks) view
/// — one [`TrackSnapshot`] per live track, best first. The legacy single-source
/// fields are kept and always agree with that view:
/// [`azimuth_deg`](PerceptionEvent::azimuth_deg) is the strongest raw SRP peak
/// and [`tracked_azimuth_deg`](PerceptionEvent::tracked_azimuth_deg) is the best
/// (confirmed, strongest) track, so every pre-multi-track consumer keeps
/// working unchanged.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerceptionEvent {
    /// Index of the analysis frame that produced the event.
    pub frame_index: usize,
    /// Time of the frame start in seconds from the beginning of the stream.
    pub time_s: f64,
    /// Detected sound class.
    pub class: EventClass,
    /// Detector confidence in `[0, 1]` (softmax probability or template similarity).
    pub confidence: f64,
    /// Instantaneous azimuth estimate of the **strongest** SRP peak in degrees,
    /// if localization ran.
    pub azimuth_deg: Option<f64>,
    /// Azimuth of the best track (Kalman-smoothed) in degrees, if tracking ran.
    pub tracked_azimuth_deg: Option<f64>,
    /// Snapshots of every live track at this frame, best first (inline,
    /// heap-free storage — events stay zero-copy through [`EventSink`]s).
    /// Defaults to empty when absent, so events serialized before the
    /// multi-track era still deserialize.
    ///
    /// [`EventSink`]: crate::sink::EventSink
    #[serde(default)]
    pub tracks: TrackList,
}

/// A fixed-capacity, heap-free list of [`TrackSnapshot`]s embedded in every
/// [`PerceptionEvent`].
///
/// Capacity is [`MAX_TRACKS`] (the validated upper bound of
/// `TrackingConfig::max_tracks`), so the event — and therefore the whole
/// sink-based streaming path — never touches the allocator however many sources
/// the scene holds. Dereferences to `&[TrackSnapshot]`.
///
/// # Example
///
/// ```
/// use ispot_core::events::TrackList;
///
/// let list = TrackList::default();
/// assert!(list.is_empty());
/// for track in list.iter() {
///     println!("track {} at {:+.1} deg", track.id, track.azimuth_deg);
/// }
/// ```
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct TrackList {
    len: u8,
    items: [TrackSnapshot; MAX_TRACKS],
}

impl TrackList {
    /// Builds a list from a snapshot slice, keeping the first [`MAX_TRACKS`]
    /// entries (the tracker's own capacity bound guarantees no truncation in
    /// the pipeline).
    pub fn from_slice(tracks: &[TrackSnapshot]) -> Self {
        let mut list = TrackList::default();
        let n = tracks.len().min(MAX_TRACKS);
        list.items[..n].copy_from_slice(&tracks[..n]);
        list.len = n as u8;
        list
    }

    /// The stored snapshots, best track first.
    pub fn as_slice(&self) -> &[TrackSnapshot] {
        // Clamp rather than index blindly: `len` could exceed the inline
        // capacity only through a corrupted deserialization, and that must not
        // turn into a panic on every later access.
        &self.items[..(self.len as usize).min(MAX_TRACKS)]
    }

    /// Snapshots of confirmed (or coasting) tracks only.
    pub fn confirmed(&self) -> impl Iterator<Item = &TrackSnapshot> {
        self.as_slice().iter().filter(|t| t.is_confirmed())
    }
}

impl std::ops::Deref for TrackList {
    type Target = [TrackSnapshot];

    fn deref(&self) -> &[TrackSnapshot] {
        self.as_slice()
    }
}

impl PartialEq for TrackList {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<'a> IntoIterator for &'a TrackList {
    type Item = &'a TrackSnapshot;
    type IntoIter = std::slice::Iter<'a, TrackSnapshot>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl PerceptionEvent {
    /// Returns true if this event reports an emergency sound (not background).
    pub fn is_alert(&self) -> bool {
        self.class.is_event()
    }

    /// One-line human-readable summary. Events carrying several **confirmed**
    /// tracks list every confirmed bearing ("2 tracks: +34.1°, -120.5°")
    /// instead of silently printing only the best one; tentative association
    /// hypotheses are never shown.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "t={:.2}s {} (conf {:.2})",
            self.time_s, self.class, self.confidence
        );
        let confirmed = self.tracks.confirmed().count();
        if confirmed >= 2 {
            let _ = write!(s, " {confirmed} tracks:");
            for (i, track) in self.tracks.confirmed().enumerate() {
                let sep = if i == 0 { " " } else { ", " };
                let _ = write!(s, "{sep}{:+.1}°", track.azimuth_deg);
            }
            return s;
        }
        match (self.tracked_azimuth_deg, self.azimuth_deg) {
            (Some(tracked), _) => {
                let _ = write!(s, " at {tracked:+.1} deg (tracked)");
            }
            (None, Some(az)) => {
                let _ = write!(s, " at {az:+.1} deg");
            }
            (None, None) => {}
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispot_ssl::multitrack::{TrackId, TrackStatus};

    fn snapshot(azimuth_deg: f64, status: TrackStatus) -> TrackSnapshot {
        TrackSnapshot {
            azimuth_deg,
            status,
            ..TrackSnapshot::default()
        }
    }

    #[test]
    fn alert_flag_and_summary() {
        let event = PerceptionEvent {
            frame_index: 3,
            time_s: 0.38,
            class: EventClass::WailSiren,
            confidence: 0.91,
            azimuth_deg: Some(-34.0),
            tracked_azimuth_deg: Some(-32.5),
            tracks: TrackList::default(),
        };
        assert!(event.is_alert());
        let s = event.summary();
        assert!(s.contains("wail") && s.contains("tracked"));
        let background = PerceptionEvent {
            class: EventClass::Background,
            azimuth_deg: None,
            tracked_azimuth_deg: None,
            ..event
        };
        assert!(!background.is_alert());
        assert!(!background.summary().contains("deg"));
    }

    #[test]
    fn summary_renders_every_track_of_a_multi_track_event() {
        // Regression for the satellite fix: two concurrent tracks used to be
        // summarized as just the best bearing, hiding the second vehicle.
        let event = PerceptionEvent {
            frame_index: 10,
            time_s: 1.25,
            class: EventClass::WailSiren,
            confidence: 0.9,
            azimuth_deg: Some(34.3),
            tracked_azimuth_deg: Some(34.1),
            tracks: TrackList::from_slice(&[
                snapshot(34.1, TrackStatus::Confirmed),
                snapshot(-120.5, TrackStatus::Confirmed),
            ]),
        };
        let s = event.summary();
        assert!(s.contains("2 tracks:"), "summary was {s}");
        assert!(
            s.contains("+34.1°") && s.contains("-120.5°"),
            "summary was {s}"
        );
        // A single-track event keeps the classic format.
        let single = PerceptionEvent {
            tracks: TrackList::from_slice(&[snapshot(34.1, TrackStatus::Confirmed)]),
            ..event
        };
        assert!(single.summary().contains("at +34.1 deg (tracked)"));
        assert!(!single.summary().contains("tracks"));
    }

    #[test]
    fn track_list_is_bounded_sliceable_and_comparable() {
        let snaps: Vec<TrackSnapshot> = (0..MAX_TRACKS + 3)
            .map(|i| TrackSnapshot {
                id: TrackId::default(),
                azimuth_deg: i as f64,
                status: if i % 2 == 0 {
                    TrackStatus::Confirmed
                } else {
                    TrackStatus::Tentative
                },
                ..TrackSnapshot::default()
            })
            .collect();
        let list = TrackList::from_slice(&snaps);
        assert_eq!(list.len(), MAX_TRACKS, "capacity bound applies");
        assert_eq!(list[0].azimuth_deg, 0.0);
        assert_eq!(list.confirmed().count(), MAX_TRACKS / 2);
        // Equality ignores the unused tail slots.
        let same = TrackList::from_slice(&snaps[..MAX_TRACKS]);
        assert_eq!(list, same);
        let different = TrackList::from_slice(&snaps[..2]);
        assert_ne!(list, different);
        assert_eq!((&different).into_iter().count(), 2);
        assert!(TrackList::default().is_empty());
    }
}
