//! Park-mode wake-up trigger.
//!
//! In park mode the expensive detection/localization stages are gated by a tiny
//! always-on energy detector: a one-pole smoothed frame energy compared against a
//! slowly adapting noise-floor estimate. This is the kind of trigger the paper's
//! requirement of a "trigger-based low-power parking mode" implies.

use ispot_dsp::level::signal_power;
use serde::{Deserialize, Serialize};

/// Configuration of the [`EnergyTrigger`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TriggerConfig {
    /// How many dB above the tracked noise floor a frame must be to fire.
    pub threshold_db: f64,
    /// Smoothing coefficient for the noise-floor tracker in `(0, 1)`; larger adapts
    /// more slowly.
    pub floor_smoothing: f64,
    /// Number of initial frames used to seed the noise floor before triggering is
    /// allowed.
    pub warmup_frames: usize,
}

impl Default for TriggerConfig {
    fn default() -> Self {
        TriggerConfig {
            threshold_db: 9.0,
            floor_smoothing: 0.98,
            warmup_frames: 5,
        }
    }
}

/// An adaptive frame-energy wake-up trigger.
///
/// # Example
///
/// ```
/// use ispot_core::trigger::EnergyTrigger;
///
/// let mut trigger = EnergyTrigger::default();
/// // Quiet frames establish the noise floor and do not fire.
/// for _ in 0..10 {
///     assert!(!trigger.process_frame(&vec![0.01; 512]));
/// }
/// // A loud frame fires the trigger.
/// assert!(trigger.process_frame(&vec![0.5; 512]));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyTrigger {
    config: TriggerConfig,
    noise_floor: Option<f64>,
    frames_seen: usize,
    wakeups: usize,
}

impl Default for EnergyTrigger {
    fn default() -> Self {
        Self::new(TriggerConfig::default())
    }
}

impl EnergyTrigger {
    /// Creates a trigger with the given configuration.
    pub fn new(config: TriggerConfig) -> Self {
        EnergyTrigger {
            config,
            noise_floor: None,
            frames_seen: 0,
            wakeups: 0,
        }
    }

    /// Returns the configuration.
    pub fn config(&self) -> TriggerConfig {
        self.config
    }

    /// Number of frames processed so far.
    pub fn frames_seen(&self) -> usize {
        self.frames_seen
    }

    /// Number of times the trigger has fired.
    pub fn wakeups(&self) -> usize {
        self.wakeups
    }

    /// Fraction of frames that fired the trigger (the park-mode duty cycle).
    pub fn duty_cycle(&self) -> f64 {
        if self.frames_seen == 0 {
            0.0
        } else {
            self.wakeups as f64 / self.frames_seen as f64
        }
    }

    /// Current noise-floor estimate (mean frame power), if initialized.
    pub fn noise_floor(&self) -> Option<f64> {
        self.noise_floor
    }

    /// Resets the trigger state.
    pub fn reset(&mut self) {
        self.noise_floor = None;
        self.frames_seen = 0;
        self.wakeups = 0;
    }

    /// Processes one frame and returns true if the expensive pipeline should wake up.
    pub fn process_frame(&mut self, frame: &[f64]) -> bool {
        let power = signal_power(frame).max(1e-12);
        self.frames_seen += 1;
        let floor = match self.noise_floor {
            None => {
                self.noise_floor = Some(power);
                return false;
            }
            Some(f) => f,
        };
        let fired = if self.frames_seen <= self.config.warmup_frames {
            false
        } else {
            10.0 * (power / floor).log10() > self.config.threshold_db
        };
        // Only adapt the floor on non-event frames so sustained sirens do not get
        // absorbed into the noise estimate.
        if !fired {
            let a = self.config.floor_smoothing.clamp(0.0, 0.9999);
            self.noise_floor = Some(a * floor + (1.0 - a) * power);
        }
        if fired {
            self.wakeups += 1;
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispot_dsp::generator::{NoiseKind, NoiseSource};

    #[test]
    fn quiet_background_does_not_fire() {
        let mut trigger = EnergyTrigger::default();
        let noise: Vec<f64> = NoiseSource::new(NoiseKind::White, 1)
            .take(512 * 50)
            .map(|x| x * 0.01)
            .collect();
        let mut fired = 0;
        for frame in noise.chunks(512) {
            if trigger.process_frame(frame) {
                fired += 1;
            }
        }
        assert_eq!(fired, 0);
        assert_eq!(trigger.duty_cycle(), 0.0);
    }

    #[test]
    fn loud_event_fires_and_duty_cycle_reflects_it() {
        let mut trigger = EnergyTrigger::default();
        // 40 quiet frames then 10 loud frames.
        for _ in 0..40 {
            trigger.process_frame(&vec![0.01; 512]);
        }
        let mut fired = 0;
        for _ in 0..10 {
            if trigger.process_frame(&vec![0.6; 512]) {
                fired += 1;
            }
        }
        assert!(fired >= 9, "only {fired} loud frames fired");
        assert!(trigger.duty_cycle() > 0.15 && trigger.duty_cycle() < 0.25);
        assert_eq!(trigger.frames_seen(), 50);
        assert!(trigger.noise_floor().unwrap() < 0.01);
    }

    #[test]
    fn floor_adapts_to_gradually_louder_background() {
        let mut trigger = EnergyTrigger::new(TriggerConfig {
            floor_smoothing: 0.9,
            ..TriggerConfig::default()
        });
        // Slowly increasing background (2 dB steps) should mostly not fire.
        let mut fired = 0;
        for i in 0..60 {
            let level = 0.01 * 10f64.powf(i as f64 * 0.01);
            if trigger.process_frame(&vec![level; 256]) {
                fired += 1;
            }
        }
        assert!(fired <= 2, "{fired} false wake-ups on a slow ramp");
    }

    #[test]
    fn reset_clears_state() {
        let mut trigger = EnergyTrigger::default();
        trigger.process_frame(&vec![0.5; 128]);
        trigger.reset();
        assert_eq!(trigger.frames_seen(), 0);
        assert_eq!(trigger.wakeups(), 0);
        assert!(trigger.noise_floor().is_none());
    }
}
