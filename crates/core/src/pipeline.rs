//! The end-to-end acoustic-perception pipeline.

use crate::error::PipelineError;
use crate::events::PerceptionEvent;
use crate::latency::LatencyReport;
use crate::mode::OperatingMode;
use crate::trigger::{EnergyTrigger, TriggerConfig};
use ispot_roadsim::engine::MultichannelAudio;
use ispot_roadsim::microphone::MicrophoneArray;
use ispot_sed::baseline::SpectralTemplateDetector;
use ispot_sed::EventClass;
use ispot_ssl::srp_fast::SrpPhatFast;
use ispot_ssl::srp_phat::SrpConfig;
use ispot_ssl::tracking::AzimuthKalmanTracker;
use serde::{Deserialize, Serialize};

/// Configuration of the [`AcousticPerceptionPipeline`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Analysis frame length in samples.
    pub frame_len: usize,
    /// Hop between analysis frames in samples.
    pub hop: usize,
    /// Operating mode (drive or park).
    pub mode: OperatingMode,
    /// Number of azimuth grid directions for localization.
    pub num_directions: usize,
    /// Minimum detector confidence for an event to be reported.
    pub confidence_threshold: f64,
    /// Park-mode trigger configuration.
    pub trigger: TriggerConfig,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            frame_len: 2048,
            hop: 1024,
            mode: OperatingMode::Drive,
            num_directions: 181,
            confidence_threshold: 0.2,
            trigger: TriggerConfig::default(),
        }
    }
}

impl PipelineConfig {
    fn validate(&self) -> Result<(), PipelineError> {
        if self.frame_len == 0 || self.hop == 0 {
            return Err(PipelineError::invalid_config(
                "frame_len/hop",
                "must be positive",
            ));
        }
        if self.num_directions == 0 {
            return Err(PipelineError::invalid_config(
                "num_directions",
                "must be positive",
            ));
        }
        if !(0.0..=1.0).contains(&self.confidence_threshold) {
            return Err(PipelineError::invalid_config(
                "confidence_threshold",
                "must be within [0, 1]",
            ));
        }
        Ok(())
    }
}

/// The complete detection + localization + tracking pipeline.
///
/// Built either for detection only ([`AcousticPerceptionPipeline::new`], when the array
/// geometry is unknown) or with localization ([`AcousticPerceptionPipeline::with_array`]).
#[derive(Debug)]
pub struct AcousticPerceptionPipeline {
    config: PipelineConfig,
    sample_rate: f64,
    num_channels: usize,
    detector: SpectralTemplateDetector,
    localizer: Option<SrpPhatFast>,
    tracker: AzimuthKalmanTracker,
    trigger: EnergyTrigger,
    latency: LatencyReport,
    frames_processed: usize,
    frames_analyzed: usize,
}

impl AcousticPerceptionPipeline {
    /// Creates a detection-only pipeline for `num_channels` input channels (channels
    /// are averaged before detection; localization is disabled).
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid or the detector cannot be
    /// built.
    pub fn new(
        config: PipelineConfig,
        sample_rate: f64,
        num_channels: usize,
    ) -> Result<Self, PipelineError> {
        config.validate()?;
        if num_channels == 0 {
            return Err(PipelineError::invalid_config(
                "num_channels",
                "must be positive",
            ));
        }
        Ok(AcousticPerceptionPipeline {
            config,
            sample_rate,
            num_channels,
            detector: SpectralTemplateDetector::new(sample_rate)?,
            localizer: None,
            tracker: AzimuthKalmanTracker::new(1.0, 36.0),
            trigger: EnergyTrigger::new(config.trigger),
            latency: LatencyReport::new(),
            frames_processed: 0,
            frames_analyzed: 0,
        })
    }

    /// Creates a full pipeline (detection + localization + tracking) for the given
    /// microphone array.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration, detector or localizer is invalid.
    pub fn with_array(
        config: PipelineConfig,
        sample_rate: f64,
        array: &MicrophoneArray,
    ) -> Result<Self, PipelineError> {
        let mut pipeline = Self::new(config, sample_rate, array.len())?;
        if array.len() >= 2 {
            let srp_config = SrpConfig {
                frame_len: config.frame_len,
                num_directions: config.num_directions,
                freq_max_hz: (sample_rate / 2.0 - 200.0).max(1000.0),
                ..SrpConfig::default()
            };
            pipeline.localizer = Some(SrpPhatFast::new(srp_config, array, sample_rate)?);
        }
        Ok(pipeline)
    }

    /// Returns the configuration.
    pub fn config(&self) -> PipelineConfig {
        self.config
    }

    /// Returns the operating mode.
    pub fn mode(&self) -> OperatingMode {
        self.config.mode
    }

    /// Switches the operating mode (e.g. drive ↔ park), resetting the trigger and the
    /// tracker.
    pub fn set_mode(&mut self, mode: OperatingMode) {
        self.config.mode = mode;
        self.trigger.reset();
        self.tracker.reset();
    }

    /// Returns true if localization is available (array geometry known, ≥ 2 mics).
    pub fn localization_available(&self) -> bool {
        self.localizer.is_some()
    }

    /// Per-stage latency statistics accumulated so far.
    pub fn latency_report(&self) -> &LatencyReport {
        &self.latency
    }

    /// Number of frames received.
    pub fn frames_processed(&self) -> usize {
        self.frames_processed
    }

    /// Number of frames on which the full analysis ran (in park mode this is the
    /// number of trigger wake-ups).
    pub fn frames_analyzed(&self) -> usize {
        self.frames_analyzed
    }

    /// Fraction of frames on which the full analysis ran — 1.0 in drive mode, the
    /// trigger duty cycle in park mode.
    pub fn analysis_duty_cycle(&self) -> f64 {
        if self.frames_processed == 0 {
            0.0
        } else {
            self.frames_analyzed as f64 / self.frames_processed as f64
        }
    }

    /// Processes one multichannel frame (`frame[channel][sample]`, every channel
    /// exactly `frame_len` samples) and returns an event if an emergency sound was
    /// detected.
    ///
    /// # Errors
    ///
    /// Returns an error if the channel count or frame length is wrong, or an analysis
    /// stage fails.
    pub fn process_frame(
        &mut self,
        frame: &[&[f64]],
        frame_index: usize,
    ) -> Result<Option<PerceptionEvent>, PipelineError> {
        if frame.len() != self.num_channels {
            return Err(PipelineError::ChannelMismatch {
                expected: self.num_channels,
                actual: frame.len(),
            });
        }
        for ch in frame {
            if ch.len() != self.config.frame_len {
                return Err(PipelineError::invalid_config(
                    "frame",
                    format!(
                        "every channel must have {} samples, got {}",
                        self.config.frame_len,
                        ch.len()
                    ),
                ));
            }
        }
        self.frames_processed += 1;
        // Mono mixdown feeds the trigger and the detector.
        let mono: Vec<f64> = (0..self.config.frame_len)
            .map(|i| frame.iter().map(|c| c[i]).sum::<f64>() / frame.len() as f64)
            .collect();
        // Park mode: gate the expensive stages behind the always-on trigger.
        if self.config.mode == OperatingMode::Park {
            let fired = self
                .latency
                .time("trigger", || self.trigger.process_frame(&mono));
            if !fired {
                self.latency.count_frame();
                return Ok(None);
            }
        }
        self.frames_analyzed += 1;
        let detector = &self.detector;
        let (class, confidence) = self
            .latency
            .time("detection", || detector.predict_with_confidence(&mono))?;
        let time_s = frame_index as f64 * self.config.hop as f64 / self.sample_rate;
        if !class.is_event() || confidence < self.config.confidence_threshold {
            self.latency.count_frame();
            return Ok(None);
        }
        let mut azimuth_deg = None;
        let mut tracked = None;
        if self.config.mode.localization_enabled() {
            if let Some(localizer) = &self.localizer {
                let estimate = self
                    .latency
                    .time("localization", || localizer.localize(frame))?;
                azimuth_deg = Some(estimate.azimuth_deg());
                let state = self
                    .latency
                    .time("tracking", || self.tracker.update(estimate.azimuth_deg()));
                tracked = Some(state.azimuth_deg);
            }
        }
        self.latency.count_frame();
        Ok(Some(PerceptionEvent {
            frame_index,
            time_s,
            class,
            confidence,
            azimuth_deg,
            tracked_azimuth_deg: tracked,
        }))
    }

    /// Processes a whole multichannel recording with the configured frame/hop,
    /// returning every emitted event.
    ///
    /// # Errors
    ///
    /// Returns an error if the recording's channel count does not match or any frame
    /// fails to process.
    pub fn process_recording(
        &mut self,
        audio: &MultichannelAudio,
    ) -> Result<Vec<PerceptionEvent>, PipelineError> {
        if audio.num_channels() != self.num_channels {
            return Err(PipelineError::ChannelMismatch {
                expected: self.num_channels,
                actual: audio.num_channels(),
            });
        }
        let len = audio.len();
        let frame_len = self.config.frame_len;
        let hop = self.config.hop;
        let mut events = Vec::new();
        if len < frame_len {
            return Ok(events);
        }
        let num_frames = (len - frame_len) / hop + 1;
        for f in 0..num_frames {
            let start = f * hop;
            let frame: Vec<&[f64]> = audio
                .channels()
                .iter()
                .map(|c| &c[start..start + frame_len])
                .collect();
            if let Some(event) = self.process_frame(&frame, f)? {
                events.push(event);
            }
        }
        Ok(events)
    }

    /// Detector class events not gated by the pipeline: classifies a mono clip
    /// directly (useful for diagnostics).
    ///
    /// # Errors
    ///
    /// Returns an error if the clip is shorter than one detector frame.
    pub fn classify_clip(&self, audio: &[f64]) -> Result<EventClass, PipelineError> {
        Ok(self.detector.predict(audio)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispot_dsp::generator::{NoiseKind, NoiseSource};
    use ispot_roadsim::geometry::Position;
    use ispot_roadsim::scene::SceneBuilder;
    use ispot_roadsim::source::SoundSource;
    use ispot_roadsim::trajectory::Trajectory;
    use ispot_roadsim::engine::Simulator;
    use ispot_sed::sirens::{SirenKind, SirenSynthesizer};

    fn simulate_siren(azimuth_deg: f64, num_mics: usize, duration_s: f64) -> (MultichannelAudio, MicrophoneArray) {
        let fs = 16_000.0;
        let siren = SirenSynthesizer::new(SirenKind::Wail, fs).synthesize(duration_s);
        let az = azimuth_deg.to_radians();
        let array = MicrophoneArray::circular(num_mics, 0.2, Position::new(0.0, 0.0, 1.0));
        let scene = SceneBuilder::new(fs)
            .source(SoundSource::new(
                siren,
                Trajectory::fixed(Position::new(20.0 * az.cos(), 20.0 * az.sin(), 1.0)),
            ))
            .array(array.clone())
            .reflection(false)
            .air_absorption(false)
            .build()
            .unwrap();
        (Simulator::new(scene).unwrap().run().unwrap(), array)
    }

    #[test]
    fn detects_and_localizes_a_static_siren() {
        let (audio, array) = simulate_siren(45.0, 6, 1.0);
        let mut pipeline = AcousticPerceptionPipeline::with_array(
            PipelineConfig::default(),
            audio.sample_rate(),
            &array,
        )
        .unwrap();
        assert!(pipeline.localization_available());
        let events = pipeline.process_recording(&audio).unwrap();
        assert!(!events.is_empty(), "no events detected");
        let alert = events.iter().find(|e| e.is_alert()).expect("an alert event");
        assert!(alert.class.is_event());
        let az = alert.azimuth_deg.expect("localization ran");
        assert!(
            ispot_ssl::metrics::angular_error_deg(az, 45.0) < 20.0,
            "azimuth {az}"
        );
        assert!(pipeline.latency_report().frames() > 0);
        assert!(pipeline.analysis_duty_cycle() > 0.99);
    }

    #[test]
    fn background_noise_produces_no_alerts() {
        let fs = 16_000.0;
        let noise: Vec<f64> = NoiseSource::new(NoiseKind::Brown, 5)
            .take(16_000)
            .map(|x| x * 0.05)
            .collect();
        let channels = MultichannelAudio::new(vec![noise.clone(), noise], fs);
        let mut pipeline =
            AcousticPerceptionPipeline::new(PipelineConfig::default(), fs, 2).unwrap();
        let events = pipeline.process_recording(&channels).unwrap();
        assert!(
            events.iter().all(|e| !e.is_alert()),
            "false alerts on background noise"
        );
    }

    #[test]
    fn park_mode_gates_analysis_behind_the_trigger() {
        let fs = 16_000.0;
        // 1 s of near silence followed by 1 s of loud siren.
        let mut signal: Vec<f64> = NoiseSource::new(NoiseKind::White, 3)
            .take(16_000)
            .map(|x| x * 0.001)
            .collect();
        signal.extend(SirenSynthesizer::new(SirenKind::Yelp, fs).synthesize(1.0));
        let audio = MultichannelAudio::new(vec![signal], fs);
        let config = PipelineConfig {
            mode: OperatingMode::Park,
            ..PipelineConfig::default()
        };
        let mut pipeline = AcousticPerceptionPipeline::new(config, fs, 1).unwrap();
        let events = pipeline.process_recording(&audio).unwrap();
        // The expensive analysis only ran on a fraction of the frames...
        assert!(pipeline.analysis_duty_cycle() < 0.8);
        assert!(pipeline.frames_analyzed() < pipeline.frames_processed());
        // ...but the siren was still reported, without localization in park mode.
        assert!(events.iter().any(|e| e.is_alert()));
        assert!(events.iter().all(|e| e.azimuth_deg.is_none()));
    }

    #[test]
    fn channel_and_length_validation() {
        let fs = 16_000.0;
        let mut pipeline =
            AcousticPerceptionPipeline::new(PipelineConfig::default(), fs, 2).unwrap();
        let ch = vec![0.0; 2048];
        let one: Vec<&[f64]> = vec![&ch];
        assert!(matches!(
            pipeline.process_frame(&one, 0),
            Err(PipelineError::ChannelMismatch { .. })
        ));
        let short = vec![0.0; 100];
        let bad: Vec<&[f64]> = vec![&ch, &short];
        assert!(pipeline.process_frame(&bad, 0).is_err());
        let audio = MultichannelAudio::new(vec![vec![0.0; 4096]; 3], fs);
        assert!(pipeline.process_recording(&audio).is_err());
    }

    #[test]
    fn invalid_configurations_rejected() {
        let fs = 16_000.0;
        for bad in [
            PipelineConfig {
                frame_len: 0,
                ..PipelineConfig::default()
            },
            PipelineConfig {
                hop: 0,
                ..PipelineConfig::default()
            },
            PipelineConfig {
                confidence_threshold: 2.0,
                ..PipelineConfig::default()
            },
        ] {
            assert!(AcousticPerceptionPipeline::new(bad, fs, 2).is_err());
        }
        assert!(AcousticPerceptionPipeline::new(PipelineConfig::default(), fs, 0).is_err());
    }

    #[test]
    fn mode_switch_resets_duty_cycle_tracking() {
        let fs = 16_000.0;
        let mut pipeline =
            AcousticPerceptionPipeline::new(PipelineConfig::default(), fs, 1).unwrap();
        assert_eq!(pipeline.mode(), OperatingMode::Drive);
        pipeline.set_mode(OperatingMode::Park);
        assert_eq!(pipeline.mode(), OperatingMode::Park);
        assert!(!pipeline.localization_available());
    }

    #[test]
    fn classify_clip_exposes_the_detector() {
        let fs = 16_000.0;
        let pipeline =
            AcousticPerceptionPipeline::new(PipelineConfig::default(), fs, 1).unwrap();
        let horn = ispot_sed::sirens::synthesize_event(ispot_sed::EventClass::CarHorn, fs, 1.0);
        let class = pipeline.classify_clip(&horn).unwrap();
        assert_eq!(class, ispot_sed::EventClass::CarHorn);
    }
}
