//! Pipeline configuration and the classic single-stream entry point.
//!
//! The construction API lives in [`crate::api`]: a
//! [`PipelineBuilder`](crate::api::PipelineBuilder) validates a
//! [`PipelineConfig`], builds an [`Engine`](crate::api::Engine) holding the
//! shared immutable state, and opens [`Session`](crate::api::Session)s against
//! it. This module keeps
//! the configuration type itself plus [`AcousticPerceptionPipeline`], the
//! historical name for a single session on a private engine:
//!
//! ```
//! use ispot_core::prelude::*;
//!
//! # fn main() -> Result<(), PipelineError> {
//! let mut pipeline: AcousticPerceptionPipeline =
//!     PipelineBuilder::new(16_000.0).channels(1).build()?;
//! let mut events = Vec::new();
//! let frames = pipeline.push_chunk_into(&[&vec![0.0; 4096][..]], &mut events)?;
//! assert_eq!(frames, 3); // 2048-sample frames every 1024 samples
//! # Ok(())
//! # }
//! ```

use crate::error::PipelineError;
use crate::mode::OperatingMode;
use crate::trigger::TriggerConfig;
use ispot_ssl::multitrack::TrackingConfig;
use ispot_ssl::srp_fast::SrpSearchConfig;
use ispot_ssl::SslError;
use serde::{Deserialize, Serialize};

/// The end-to-end perception worker for one audio stream.
///
/// Since the session/engine redesign this is simply a
/// [`Session`](crate::api::Session) opened on a
/// private engine; the name is kept because "the pipeline" is how the rest of
/// the workspace (experiments, benches, docs) refers to the single-stream case.
/// Construct it with [`PipelineBuilder::build`](crate::api::PipelineBuilder).
pub type AcousticPerceptionPipeline = crate::api::Session;

/// Configuration of a perception [`Session`](crate::api::Session).
///
/// Constructed by hand (all fields public) and validated by the
/// [`PipelineBuilder`](crate::api::PipelineBuilder) — invalid values are
/// rejected at build time with [`PipelineError::InvalidConfig`], never deferred
/// to the per-frame hot path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Analysis frame length in samples.
    pub frame_len: usize,
    /// Hop between analysis frames in samples (`0 < hop <= frame_len`).
    pub hop: usize,
    /// Operating mode (drive or park).
    pub mode: OperatingMode,
    /// Number of azimuth grid directions for localization.
    pub num_directions: usize,
    /// Minimum detector confidence for an event to be reported, in `[0, 1]`.
    pub confidence_threshold: f64,
    /// Park-mode trigger configuration.
    pub trigger: TriggerConfig,
    /// Multi-target tracking configuration (peak budget, association gate,
    /// confirmation and coasting counts).
    pub tracking: TrackingConfig,
    /// SRP search strategy: exhaustive (default) or coarse-to-fine hierarchical
    /// (see [`SrpSearchConfig`]).
    pub search: SrpSearchConfig,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            frame_len: 2048,
            hop: 1024,
            mode: OperatingMode::Drive,
            num_directions: 181,
            confidence_threshold: 0.2,
            trigger: TriggerConfig::default(),
            tracking: TrackingConfig::default(),
            search: SrpSearchConfig::exhaustive(),
        }
    }
}

impl PipelineConfig {
    /// Checks every parameter against its documented range.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::InvalidConfig`] naming the first offending
    /// parameter:
    ///
    /// * `frame_len` must be positive;
    /// * `hop` must satisfy `0 < hop <= frame_len` (a zero hop stalls the frame
    ///   assembler, and a hop beyond the frame length silently drops samples —
    ///   the emergency-alert pipeline must see every sample; direct users of
    ///   `ispot_dsp::framing::FrameAssembler` can still configure
    ///   `hop > frame_len` decimated analysis, deliberately);
    /// * `num_directions` must be positive (a zero-direction grid produces an
    ///   empty, peak-less SRP map on every frame);
    /// * `confidence_threshold` must lie in `[0, 1]`;
    /// * the trigger's `threshold_db` must be positive and finite, and its
    ///   `floor_smoothing` must lie strictly inside `(0, 1)`;
    /// * every tracking parameter must pass
    ///   [`TrackingConfig::validate`] (positive counts within their caps, gate
    ///   and salience thresholds in range);
    /// * the SRP search parameters must pass [`SrpSearchConfig::validate`]
    ///   against `num_directions` (a decimated grid must keep at least eight
    ///   coarse cells, and the refinement radius must cover one coarse step).
    pub fn validate(&self) -> Result<(), PipelineError> {
        if self.frame_len == 0 {
            return Err(PipelineError::invalid_config(
                "frame_len",
                "must be positive",
            ));
        }
        if self.hop == 0 || self.hop > self.frame_len {
            return Err(PipelineError::invalid_config(
                "hop",
                format!(
                    "must satisfy 0 < hop <= frame_len ({}), got {}",
                    self.frame_len, self.hop
                ),
            ));
        }
        if self.num_directions == 0 {
            return Err(PipelineError::invalid_config(
                "num_directions",
                "must be positive",
            ));
        }
        if !(0.0..=1.0).contains(&self.confidence_threshold) {
            return Err(PipelineError::invalid_config(
                "confidence_threshold",
                "must be within [0, 1]",
            ));
        }
        if !(self.trigger.threshold_db.is_finite() && self.trigger.threshold_db > 0.0) {
            return Err(PipelineError::invalid_config(
                "trigger.threshold_db",
                "must be positive and finite",
            ));
        }
        if !(self.trigger.floor_smoothing > 0.0 && self.trigger.floor_smoothing < 1.0) {
            return Err(PipelineError::invalid_config(
                "trigger.floor_smoothing",
                "must lie strictly inside (0, 1)",
            ));
        }
        // Surface tracking violations as the pipeline's own typed InvalidConfig
        // (same field-naming contract as every other parameter).
        self.tracking.validate().map_err(|e| match e {
            SslError::InvalidConfig { name, reason } => {
                PipelineError::InvalidConfig { name, reason }
            }
            other => PipelineError::Localization(other),
        })?;
        self.search
            .validate(self.num_directions)
            .map_err(|e| match e {
                SslError::InvalidConfig { name, reason } => {
                    PipelineError::InvalidConfig { name, reason }
                }
                other => PipelineError::Localization(other),
            })?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::PipelineBuilder;
    use ispot_dsp::generator::{NoiseKind, NoiseSource};
    use ispot_roadsim::engine::{MultichannelAudio, Simulator};
    use ispot_roadsim::geometry::Position;
    use ispot_roadsim::microphone::MicrophoneArray;
    use ispot_roadsim::scene::SceneBuilder;
    use ispot_roadsim::source::SoundSource;
    use ispot_roadsim::trajectory::Trajectory;
    use ispot_sed::sirens::{SirenKind, SirenSynthesizer};

    fn simulate_siren(
        azimuth_deg: f64,
        num_mics: usize,
        duration_s: f64,
    ) -> (MultichannelAudio, MicrophoneArray) {
        let fs = 16_000.0;
        let siren = SirenSynthesizer::new(SirenKind::Wail, fs).synthesize(duration_s);
        let az = azimuth_deg.to_radians();
        let array = MicrophoneArray::circular(num_mics, 0.2, Position::new(0.0, 0.0, 1.0));
        let scene = SceneBuilder::new(fs)
            .source(SoundSource::new(
                siren,
                Trajectory::fixed(Position::new(20.0 * az.cos(), 20.0 * az.sin(), 1.0)),
            ))
            .array(array.clone())
            .reflection(false)
            .air_absorption(false)
            .build()
            .unwrap();
        (Simulator::new(scene).unwrap().run().unwrap(), array)
    }

    #[test]
    fn detects_and_localizes_a_static_siren() {
        let (audio, array) = simulate_siren(45.0, 6, 1.0);
        let mut pipeline = PipelineBuilder::new(audio.sample_rate())
            .array(&array)
            .build()
            .unwrap();
        assert!(pipeline.localization_available());
        let events = pipeline.process_recording(&audio).unwrap();
        assert!(!events.is_empty(), "no events detected");
        let alert = events
            .iter()
            .find(|e| e.is_alert())
            .expect("an alert event");
        assert!(alert.class.is_event());
        let az = alert.azimuth_deg.expect("localization ran");
        assert!(
            ispot_ssl::metrics::angular_error_deg(az, 45.0) < 20.0,
            "azimuth {az}"
        );
        assert!(pipeline.latency_report().frames() > 0);
        assert!(pipeline.analysis_duty_cycle() > 0.99);
    }

    #[test]
    fn background_noise_produces_no_alerts() {
        let fs = 16_000.0;
        let noise: Vec<f64> = NoiseSource::new(NoiseKind::Brown, 5)
            .take(16_000)
            .map(|x| x * 0.05)
            .collect();
        let channels = MultichannelAudio::new(vec![noise.clone(), noise], fs);
        let mut pipeline = PipelineBuilder::new(fs).channels(2).build().unwrap();
        let events = pipeline.process_recording(&channels).unwrap();
        assert!(
            events.iter().all(|e| !e.is_alert()),
            "false alerts on background noise"
        );
    }

    #[test]
    fn park_mode_gates_analysis_behind_the_trigger() {
        let fs = 16_000.0;
        // 1 s of near silence followed by 1 s of loud siren.
        let mut signal: Vec<f64> = NoiseSource::new(NoiseKind::White, 3)
            .take(16_000)
            .map(|x| x * 0.001)
            .collect();
        signal.extend(SirenSynthesizer::new(SirenKind::Yelp, fs).synthesize(1.0));
        let audio = MultichannelAudio::new(vec![signal], fs);
        let mut pipeline = PipelineBuilder::new(fs)
            .mode(OperatingMode::Park)
            .build()
            .unwrap();
        let events = pipeline.process_recording(&audio).unwrap();
        // The expensive analysis only ran on a fraction of the frames...
        assert!(pipeline.analysis_duty_cycle() < 0.8);
        assert!(pipeline.frames_analyzed() < pipeline.frames_processed());
        // ...but the siren was still reported, without localization in park mode.
        assert!(events.iter().any(|e| e.is_alert()));
        assert!(events.iter().all(|e| e.azimuth_deg.is_none()));
    }

    #[test]
    fn channel_and_length_validation() {
        let fs = 16_000.0;
        let mut pipeline = PipelineBuilder::new(fs).channels(2).build().unwrap();
        let ch = vec![0.0; 2048];
        let one: Vec<&[f64]> = vec![&ch];
        assert!(matches!(
            pipeline.process_frame(&one, 0),
            Err(PipelineError::ChannelMismatch { .. })
        ));
        let short = vec![0.0; 100];
        let bad: Vec<&[f64]> = vec![&ch, &short];
        assert!(pipeline.process_frame(&bad, 0).is_err());
        let audio = MultichannelAudio::new(vec![vec![0.0; 4096]; 3], fs);
        assert!(pipeline.process_recording(&audio).is_err());
    }

    #[test]
    fn config_validation_rejects_out_of_range_values() {
        for bad in [
            PipelineConfig {
                frame_len: 0,
                ..PipelineConfig::default()
            },
            PipelineConfig {
                hop: 0,
                ..PipelineConfig::default()
            },
            PipelineConfig {
                hop: 4096,
                ..PipelineConfig::default()
            },
            PipelineConfig {
                num_directions: 0,
                ..PipelineConfig::default()
            },
            PipelineConfig {
                confidence_threshold: 2.0,
                ..PipelineConfig::default()
            },
            PipelineConfig {
                trigger: TriggerConfig {
                    floor_smoothing: 0.0,
                    ..TriggerConfig::default()
                },
                ..PipelineConfig::default()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} accepted");
            assert!(PipelineBuilder::new(16_000.0).config(bad).build().is_err());
        }
        assert!(PipelineConfig::default().validate().is_ok());
    }

    #[test]
    fn mode_switch_keeps_reporting_the_new_mode() {
        let fs = 16_000.0;
        let mut pipeline = PipelineBuilder::new(fs).build().unwrap();
        assert_eq!(pipeline.mode(), OperatingMode::Drive);
        pipeline.set_mode(OperatingMode::Park);
        assert_eq!(pipeline.mode(), OperatingMode::Park);
        assert!(!pipeline.localization_available());
    }

    #[test]
    fn classify_clip_exposes_the_detector() {
        let fs = 16_000.0;
        let pipeline = PipelineBuilder::new(fs).build().unwrap();
        let horn = ispot_sed::sirens::synthesize_event(ispot_sed::EventClass::CarHorn, fs, 1.0);
        let class = pipeline.classify_clip(&horn).unwrap();
        assert_eq!(class, ispot_sed::EventClass::CarHorn);
    }

    #[test]
    fn push_chunk_matches_batch_processing_for_odd_chunk_sizes() {
        let fs = 16_000.0;
        let siren = SirenSynthesizer::new(SirenKind::Wail, fs).synthesize(1.0);
        let audio = MultichannelAudio::new(vec![siren], fs);
        let engine = PipelineBuilder::new(fs).build_engine().unwrap();
        let mut batch = engine.open_session();
        let batch_events = batch.process_recording(&audio).unwrap();
        assert!(!batch_events.is_empty());

        // Stream the same recording in deliberately awkward chunk sizes.
        for chunk_size in [1usize, 7, 160, 1024, 2048, 5000] {
            let mut streaming = engine.open_session();
            let mut events = Vec::new();
            let mut frames = 0;
            for chunk in audio.channel(0).chunks(chunk_size) {
                frames += streaming.push_chunk_into(&[chunk], &mut events).unwrap();
            }
            assert_eq!(
                frames,
                (audio.len() - 2048) / 1024 + 1,
                "chunk {chunk_size}"
            );
            assert_eq!(events.len(), batch_events.len(), "chunk {chunk_size}");
            for (a, b) in batch_events.iter().zip(&events) {
                assert_eq!(a.frame_index, b.frame_index);
                assert_eq!(a.class, b.class);
                assert!((a.confidence - b.confidence).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn push_chunk_buffers_partial_frames_across_calls() {
        let fs = 16_000.0;
        let mut pipeline = PipelineBuilder::new(fs).build().unwrap();
        let silence = vec![0.0; 1000];
        assert_eq!(pipeline.push_chunk(&[&silence]).unwrap().len(), 0);
        assert_eq!(pipeline.pending_samples(), 1000);
        assert_eq!(pipeline.frames_processed(), 0);
        // 1048 more samples complete the first 2048-sample frame.
        let more = vec![0.0; 1048];
        pipeline.push_chunk(&[&more]).unwrap();
        assert_eq!(pipeline.frames_processed(), 1);
        assert_eq!(pipeline.pending_samples(), 2048 - 1024);
        pipeline.reset_streaming();
        assert_eq!(pipeline.pending_samples(), 0);
    }

    #[test]
    fn push_chunk_validates_channel_count() {
        let fs = 16_000.0;
        let mut pipeline = PipelineBuilder::new(fs).channels(2).build().unwrap();
        let mono = vec![0.0; 64];
        assert!(matches!(
            pipeline.push_chunk(&[&mono]),
            Err(PipelineError::ChannelMismatch { .. })
        ));
        let unequal = vec![0.0; 32];
        assert!(pipeline.push_chunk(&[&mono[..], &unequal[..]]).is_err());
    }

    #[test]
    fn process_recording_resets_streaming_state() {
        let fs = 16_000.0;
        let mut pipeline = PipelineBuilder::new(fs).build().unwrap();
        // Leave a partial frame buffered from streaming...
        pipeline.push_chunk(&[&vec![0.0; 500][..]]).unwrap();
        assert_eq!(pipeline.pending_samples(), 500);
        // ...then batch-process: the partial frame must not leak into the batch.
        let audio = MultichannelAudio::new(vec![vec![0.0; 4096]], fs);
        pipeline.process_recording(&audio).unwrap();
        assert_eq!(pipeline.frames_processed(), 3);
        assert_eq!(pipeline.pending_samples(), 0);
    }

    #[test]
    fn ingestion_formats_produce_identical_events() {
        use crate::input::AudioInput;
        let fs = 16_000.0;
        // Quantize a siren to i16 so the same physical signal is exactly
        // representable in every supported format.
        let pcm: Vec<i16> = SirenSynthesizer::new(SirenKind::Wail, fs)
            .synthesize(1.0)
            .iter()
            .map(|x| (x * 24_000.0).round().clamp(-32768.0, 32767.0) as i16)
            .collect();
        let as_f32: Vec<f32> = pcm.iter().map(|&s| (s as f64 / 32768.0) as f32).collect();
        let as_f64: Vec<f64> = pcm.iter().map(|&s| s as f64 / 32768.0).collect();

        let engine = PipelineBuilder::new(fs).build_engine().unwrap();
        let run = |input: AudioInput<'_>| {
            let mut session = engine.open_session();
            let mut events = Vec::new();
            session.push_input_with(input, &mut events).unwrap();
            events
        };
        let reference = run(AudioInput::planar(&[&as_f64[..]]));
        assert!(!reference.is_empty());
        assert_eq!(run(AudioInput::planar(&[&pcm[..]])), reference);
        assert_eq!(run(AudioInput::planar(&[&as_f32[..]])), reference);
        assert_eq!(run(AudioInput::interleaved(&pcm[..], 1)), reference);
        assert_eq!(run(AudioInput::interleaved(&as_f32[..], 1)), reference);
        assert_eq!(run(AudioInput::interleaved(&as_f64[..], 1)), reference);
    }
}
