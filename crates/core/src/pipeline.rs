//! The end-to-end acoustic-perception pipeline.
//!
//! Internally the pipeline is a [`StageGraph`] (trigger → detect → localize →
//! track) plus a chunk-to-frame [`FrameAssembler`]; see [`crate::stages`] for the
//! graph and `ispot_dsp::framing` for the assembler. Three entry points cover the
//! deployment modes:
//!
//! * [`AcousticPerceptionPipeline::process_frame`] — one exactly-`frame_len` frame,
//!   the real-time hot path. Steady state allocates nothing on the heap.
//! * [`AcousticPerceptionPipeline::push_chunk`] — streaming input in arbitrary chunk
//!   sizes (what a capture driver delivers); frames are assembled internally and
//!   events returned as they fire. Chunk-size invariant: any chunking produces the
//!   same events as batch processing.
//! * [`AcousticPerceptionPipeline::process_recording`] — a whole recording at once
//!   (experiments, datasets); implemented on top of the same assembler.

use crate::error::PipelineError;
use crate::events::PerceptionEvent;
use crate::latency::LatencyReport;
use crate::mode::OperatingMode;
use crate::stages::{
    DetectStage, FrameOutcome, FrameParams, LocalizeStage, StageGraph, TrackStage, TriggerStage,
};
use crate::trigger::TriggerConfig;
use ispot_dsp::framing::FrameAssembler;
use ispot_roadsim::engine::MultichannelAudio;
use ispot_roadsim::microphone::MicrophoneArray;
use ispot_sed::EventClass;
use ispot_ssl::srp_phat::SrpConfig;
use serde::{Deserialize, Serialize};

/// Channel counts up to this bound build their frame views on the stack; beyond it
/// the streaming path falls back to one small heap allocation per frame.
const MAX_STACK_CHANNELS: usize = 32;

/// Runs `f` over per-channel `&[f64]` views of `channels` — the channel-view arena
/// of the streaming paths. Up to [`MAX_STACK_CHANNELS`] channels the view table
/// lives on the stack (no allocation); beyond that one small `Vec` is built.
pub(crate) fn with_channel_views<R>(channels: &[Vec<f64>], f: impl FnOnce(&[&[f64]]) -> R) -> R {
    if channels.len() <= MAX_STACK_CHANNELS {
        let mut views: [&[f64]; MAX_STACK_CHANNELS] = [&[]; MAX_STACK_CHANNELS];
        for (view, ch) in views.iter_mut().zip(channels) {
            *view = ch.as_slice();
        }
        f(&views[..channels.len()])
    } else {
        let views: Vec<&[f64]> = channels.iter().map(|c| c.as_slice()).collect();
        f(&views)
    }
}

/// Configuration of the [`AcousticPerceptionPipeline`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Analysis frame length in samples.
    pub frame_len: usize,
    /// Hop between analysis frames in samples.
    pub hop: usize,
    /// Operating mode (drive or park).
    pub mode: OperatingMode,
    /// Number of azimuth grid directions for localization.
    pub num_directions: usize,
    /// Minimum detector confidence for an event to be reported.
    pub confidence_threshold: f64,
    /// Park-mode trigger configuration.
    pub trigger: TriggerConfig,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            frame_len: 2048,
            hop: 1024,
            mode: OperatingMode::Drive,
            num_directions: 181,
            confidence_threshold: 0.2,
            trigger: TriggerConfig::default(),
        }
    }
}

impl PipelineConfig {
    fn validate(&self) -> Result<(), PipelineError> {
        if self.frame_len == 0 || self.hop == 0 {
            return Err(PipelineError::invalid_config(
                "frame_len/hop",
                "must be positive",
            ));
        }
        if self.num_directions == 0 {
            return Err(PipelineError::invalid_config(
                "num_directions",
                "must be positive",
            ));
        }
        if !(0.0..=1.0).contains(&self.confidence_threshold) {
            return Err(PipelineError::invalid_config(
                "confidence_threshold",
                "must be within [0, 1]",
            ));
        }
        Ok(())
    }
}

/// Streaming state: the chunk-to-frame assembler plus recycled frame buffers.
/// Created lazily on the first `push_chunk`/`process_recording`; all buffers are
/// reused across frames, so steady-state streaming allocates nothing.
#[derive(Debug)]
struct Framing {
    assembler: FrameAssembler,
    frame_bufs: Vec<Vec<f64>>,
}

impl Framing {
    fn new(num_channels: usize, frame_len: usize, hop: usize) -> Result<Self, PipelineError> {
        Ok(Framing {
            assembler: FrameAssembler::new(num_channels, frame_len, hop)?,
            frame_bufs: vec![Vec::with_capacity(frame_len); num_channels],
        })
    }
}

/// The complete detection + localization + tracking pipeline.
///
/// Built either for detection only ([`AcousticPerceptionPipeline::new`], when the array
/// geometry is unknown) or with localization ([`AcousticPerceptionPipeline::with_array`]).
#[derive(Debug)]
pub struct AcousticPerceptionPipeline {
    config: PipelineConfig,
    sample_rate: f64,
    num_channels: usize,
    stages: StageGraph,
    framing: Option<Framing>,
    latency: LatencyReport,
    frames_processed: usize,
    frames_analyzed: usize,
}

impl AcousticPerceptionPipeline {
    /// Creates a detection-only pipeline for `num_channels` input channels (channels
    /// are averaged before detection; localization is disabled).
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid or the detector cannot be
    /// built.
    pub fn new(
        config: PipelineConfig,
        sample_rate: f64,
        num_channels: usize,
    ) -> Result<Self, PipelineError> {
        config.validate()?;
        if num_channels == 0 {
            return Err(PipelineError::invalid_config(
                "num_channels",
                "must be positive",
            ));
        }
        let stages = StageGraph::new(
            TriggerStage::new(config.trigger),
            DetectStage::new(sample_rate)?,
            LocalizeStage::disabled(),
            TrackStage::new(1.0, 36.0),
            config.frame_len,
        );
        Ok(AcousticPerceptionPipeline {
            config,
            sample_rate,
            num_channels,
            stages,
            framing: None,
            latency: LatencyReport::new(),
            frames_processed: 0,
            frames_analyzed: 0,
        })
    }

    /// Creates a full pipeline (detection + localization + tracking) for the given
    /// microphone array.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration, detector or localizer is invalid.
    pub fn with_array(
        config: PipelineConfig,
        sample_rate: f64,
        array: &MicrophoneArray,
    ) -> Result<Self, PipelineError> {
        let mut pipeline = Self::new(config, sample_rate, array.len())?;
        if array.len() >= 2 {
            let srp_config = SrpConfig {
                frame_len: config.frame_len,
                num_directions: config.num_directions,
                freq_max_hz: (sample_rate / 2.0 - 200.0).max(1000.0),
                ..SrpConfig::default()
            };
            pipeline.stages.localize = LocalizeStage::for_array(srp_config, array, sample_rate)?;
        }
        Ok(pipeline)
    }

    /// Returns the configuration.
    pub fn config(&self) -> PipelineConfig {
        self.config
    }

    /// Returns the operating mode.
    pub fn mode(&self) -> OperatingMode {
        self.config.mode
    }

    /// Switches the operating mode (e.g. drive ↔ park), resetting the trigger and the
    /// tracker.
    pub fn set_mode(&mut self, mode: OperatingMode) {
        self.config.mode = mode;
        self.stages.reset();
    }

    /// Returns true if localization is available (array geometry known, ≥ 2 mics).
    pub fn localization_available(&self) -> bool {
        self.stages.localize.is_available()
    }

    /// Per-stage latency statistics accumulated so far.
    pub fn latency_report(&self) -> &LatencyReport {
        &self.latency
    }

    /// Number of frames received.
    pub fn frames_processed(&self) -> usize {
        self.frames_processed
    }

    /// Number of frames on which the full analysis ran (in park mode this is the
    /// number of trigger wake-ups).
    pub fn frames_analyzed(&self) -> usize {
        self.frames_analyzed
    }

    /// Fraction of frames on which the full analysis ran — 1.0 in drive mode, the
    /// trigger duty cycle in park mode.
    pub fn analysis_duty_cycle(&self) -> f64 {
        if self.frames_processed == 0 {
            0.0
        } else {
            self.frames_analyzed as f64 / self.frames_processed as f64
        }
    }

    /// Samples currently buffered by the streaming assembler, waiting for enough
    /// input to complete the next frame. Zero before any `push_chunk`.
    pub fn pending_samples(&self) -> usize {
        self.framing
            .as_ref()
            .map_or(0, |f| f.assembler.samples_buffered())
    }

    /// Discards any partially assembled streaming input and restarts streaming frame
    /// numbering at 0. Latency statistics and frame counters are retained. Buffers
    /// are kept, so resetting does not reintroduce allocations.
    pub fn reset_streaming(&mut self) {
        if let Some(framing) = &mut self.framing {
            framing.assembler.reset();
        }
    }

    /// Processes one multichannel frame (`frame[channel][sample]`, every channel
    /// exactly `frame_len` samples) and returns an event if an emergency sound was
    /// detected.
    ///
    /// This is the real-time hot path: in steady state it performs **no heap
    /// allocation** — the mono mixdown reuses scratch preallocated in the stage
    /// graph and all stages operate on borrowed slices.
    ///
    /// # Errors
    ///
    /// Returns an error if the channel count or frame length is wrong, or an analysis
    /// stage fails.
    pub fn process_frame(
        &mut self,
        frame: &[&[f64]],
        frame_index: usize,
    ) -> Result<Option<PerceptionEvent>, PipelineError> {
        if frame.len() != self.num_channels {
            return Err(PipelineError::ChannelMismatch {
                expected: self.num_channels,
                actual: frame.len(),
            });
        }
        for ch in frame {
            if ch.len() != self.config.frame_len {
                return Err(PipelineError::invalid_config(
                    "frame",
                    format!(
                        "every channel must have {} samples, got {}",
                        self.config.frame_len,
                        ch.len()
                    ),
                ));
            }
        }
        self.frames_processed += 1;
        let params = FrameParams {
            gate_on_trigger: self.config.mode == OperatingMode::Park,
            localization_enabled: self.config.mode.localization_enabled(),
            confidence_threshold: self.config.confidence_threshold,
        };
        let outcome = self.stages.run_frame(frame, params, &mut self.latency)?;
        self.latency.count_frame();
        match outcome {
            FrameOutcome::Gated => Ok(None),
            FrameOutcome::Analyzed => {
                self.frames_analyzed += 1;
                Ok(None)
            }
            FrameOutcome::Detection {
                class,
                confidence,
                azimuth_deg,
                tracked_azimuth_deg,
            } => {
                self.frames_analyzed += 1;
                Ok(Some(PerceptionEvent {
                    frame_index,
                    time_s: frame_index as f64 * self.config.hop as f64 / self.sample_rate,
                    class,
                    confidence,
                    azimuth_deg,
                    tracked_azimuth_deg,
                }))
            }
        }
    }

    /// Streams one multichannel chunk of **arbitrary** length (`chunk[channel]
    /// [sample]`, every channel the same length) into the pipeline, appending any
    /// events fired by completed frames to `events`. Returns the number of frames
    /// processed during this call (in park mode this includes trigger-gated frames;
    /// see [`frames_analyzed`](Self::frames_analyzed) for the analyzed count).
    ///
    /// Chunk sizes need not relate to `frame_len` or `hop` in any way: the internal
    /// [`FrameAssembler`] buffers the stream and emits exactly-`frame_len` frames
    /// every `hop` samples, so any chunking yields the same events as
    /// [`process_recording`](Self::process_recording) on the concatenated stream.
    /// Frame indices (and event timestamps) count from the start of the stream (the
    /// last [`reset_streaming`](Self::reset_streaming)).
    ///
    /// Steady state performs no heap allocation for channel counts up to 32: frame
    /// buffers are recycled, the mixdown scratch is preallocated, and channel views
    /// live on the stack (`events` only allocates when events actually fire).
    ///
    /// # Errors
    ///
    /// Returns an error if the channel count is wrong, the channels have unequal
    /// lengths, or an analysis stage fails. If an analysis stage fails, the frame
    /// being analyzed has already been consumed from the stream (its `hop` advance
    /// applied) and its result is lost; the remaining buffered samples are
    /// preserved, so a caller may continue streaming from the next frame after
    /// handling the error.
    pub fn push_chunk_into(
        &mut self,
        chunk: &[&[f64]],
        events: &mut Vec<PerceptionEvent>,
    ) -> Result<usize, PipelineError> {
        if chunk.len() != self.num_channels {
            return Err(PipelineError::ChannelMismatch {
                expected: self.num_channels,
                actual: chunk.len(),
            });
        }
        // Move the framing state out of `self` so the frame buffers can be borrowed
        // while `process_frame` takes `&mut self`.
        let mut framing = match self.framing.take() {
            Some(f) => f,
            None => Framing::new(self.num_channels, self.config.frame_len, self.config.hop)?,
        };
        let result = self.drain_assembler(&mut framing, chunk, events);
        self.framing = Some(framing);
        result
    }

    /// Convenience wrapper around [`push_chunk_into`](Self::push_chunk_into)
    /// returning the events as a fresh `Vec`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`push_chunk_into`](Self::push_chunk_into).
    pub fn push_chunk(&mut self, chunk: &[&[f64]]) -> Result<Vec<PerceptionEvent>, PipelineError> {
        let mut events = Vec::new();
        self.push_chunk_into(chunk, &mut events)?;
        Ok(events)
    }

    fn drain_assembler(
        &mut self,
        framing: &mut Framing,
        chunk: &[&[f64]],
        events: &mut Vec<PerceptionEvent>,
    ) -> Result<usize, PipelineError> {
        framing.assembler.push(chunk)?;
        let mut emitted = 0;
        while framing.assembler.frame_ready() {
            let index = framing.assembler.emit_into(&mut framing.frame_bufs)?;
            let event = with_channel_views(&framing.frame_bufs, |views| {
                self.process_frame(views, index)
            })?;
            if let Some(event) = event {
                events.push(event);
            }
            emitted += 1;
        }
        Ok(emitted)
    }

    /// Processes a whole multichannel recording with the configured frame/hop,
    /// returning every emitted event.
    ///
    /// Implemented on the same streaming assembler as
    /// [`push_chunk`](Self::push_chunk) (the recording is one big chunk); any
    /// in-progress streaming state is reset before and after, and the trailing
    /// samples that do not fill a final frame are dropped, as a batch framer would.
    ///
    /// # Errors
    ///
    /// Returns an error if the recording's channel count does not match or any frame
    /// fails to process.
    pub fn process_recording(
        &mut self,
        audio: &MultichannelAudio,
    ) -> Result<Vec<PerceptionEvent>, PipelineError> {
        if audio.num_channels() != self.num_channels {
            return Err(PipelineError::ChannelMismatch {
                expected: self.num_channels,
                actual: audio.num_channels(),
            });
        }
        self.reset_streaming();
        let mut events = Vec::new();
        with_channel_views(audio.channels(), |chunk| {
            self.push_chunk_into(chunk, &mut events)
        })?;
        self.reset_streaming();
        Ok(events)
    }

    /// Detector class events not gated by the pipeline: classifies a mono clip
    /// directly (useful for diagnostics).
    ///
    /// # Errors
    ///
    /// Returns an error if the clip is shorter than one detector frame.
    pub fn classify_clip(&self, audio: &[f64]) -> Result<EventClass, PipelineError> {
        self.stages.detect.classify_clip(audio)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispot_dsp::generator::{NoiseKind, NoiseSource};
    use ispot_roadsim::engine::Simulator;
    use ispot_roadsim::geometry::Position;
    use ispot_roadsim::scene::SceneBuilder;
    use ispot_roadsim::source::SoundSource;
    use ispot_roadsim::trajectory::Trajectory;
    use ispot_sed::sirens::{SirenKind, SirenSynthesizer};

    fn simulate_siren(
        azimuth_deg: f64,
        num_mics: usize,
        duration_s: f64,
    ) -> (MultichannelAudio, MicrophoneArray) {
        let fs = 16_000.0;
        let siren = SirenSynthesizer::new(SirenKind::Wail, fs).synthesize(duration_s);
        let az = azimuth_deg.to_radians();
        let array = MicrophoneArray::circular(num_mics, 0.2, Position::new(0.0, 0.0, 1.0));
        let scene = SceneBuilder::new(fs)
            .source(SoundSource::new(
                siren,
                Trajectory::fixed(Position::new(20.0 * az.cos(), 20.0 * az.sin(), 1.0)),
            ))
            .array(array.clone())
            .reflection(false)
            .air_absorption(false)
            .build()
            .unwrap();
        (Simulator::new(scene).unwrap().run().unwrap(), array)
    }

    #[test]
    fn detects_and_localizes_a_static_siren() {
        let (audio, array) = simulate_siren(45.0, 6, 1.0);
        let mut pipeline = AcousticPerceptionPipeline::with_array(
            PipelineConfig::default(),
            audio.sample_rate(),
            &array,
        )
        .unwrap();
        assert!(pipeline.localization_available());
        let events = pipeline.process_recording(&audio).unwrap();
        assert!(!events.is_empty(), "no events detected");
        let alert = events
            .iter()
            .find(|e| e.is_alert())
            .expect("an alert event");
        assert!(alert.class.is_event());
        let az = alert.azimuth_deg.expect("localization ran");
        assert!(
            ispot_ssl::metrics::angular_error_deg(az, 45.0) < 20.0,
            "azimuth {az}"
        );
        assert!(pipeline.latency_report().frames() > 0);
        assert!(pipeline.analysis_duty_cycle() > 0.99);
    }

    #[test]
    fn background_noise_produces_no_alerts() {
        let fs = 16_000.0;
        let noise: Vec<f64> = NoiseSource::new(NoiseKind::Brown, 5)
            .take(16_000)
            .map(|x| x * 0.05)
            .collect();
        let channels = MultichannelAudio::new(vec![noise.clone(), noise], fs);
        let mut pipeline =
            AcousticPerceptionPipeline::new(PipelineConfig::default(), fs, 2).unwrap();
        let events = pipeline.process_recording(&channels).unwrap();
        assert!(
            events.iter().all(|e| !e.is_alert()),
            "false alerts on background noise"
        );
    }

    #[test]
    fn park_mode_gates_analysis_behind_the_trigger() {
        let fs = 16_000.0;
        // 1 s of near silence followed by 1 s of loud siren.
        let mut signal: Vec<f64> = NoiseSource::new(NoiseKind::White, 3)
            .take(16_000)
            .map(|x| x * 0.001)
            .collect();
        signal.extend(SirenSynthesizer::new(SirenKind::Yelp, fs).synthesize(1.0));
        let audio = MultichannelAudio::new(vec![signal], fs);
        let config = PipelineConfig {
            mode: OperatingMode::Park,
            ..PipelineConfig::default()
        };
        let mut pipeline = AcousticPerceptionPipeline::new(config, fs, 1).unwrap();
        let events = pipeline.process_recording(&audio).unwrap();
        // The expensive analysis only ran on a fraction of the frames...
        assert!(pipeline.analysis_duty_cycle() < 0.8);
        assert!(pipeline.frames_analyzed() < pipeline.frames_processed());
        // ...but the siren was still reported, without localization in park mode.
        assert!(events.iter().any(|e| e.is_alert()));
        assert!(events.iter().all(|e| e.azimuth_deg.is_none()));
    }

    #[test]
    fn channel_and_length_validation() {
        let fs = 16_000.0;
        let mut pipeline =
            AcousticPerceptionPipeline::new(PipelineConfig::default(), fs, 2).unwrap();
        let ch = vec![0.0; 2048];
        let one: Vec<&[f64]> = vec![&ch];
        assert!(matches!(
            pipeline.process_frame(&one, 0),
            Err(PipelineError::ChannelMismatch { .. })
        ));
        let short = vec![0.0; 100];
        let bad: Vec<&[f64]> = vec![&ch, &short];
        assert!(pipeline.process_frame(&bad, 0).is_err());
        let audio = MultichannelAudio::new(vec![vec![0.0; 4096]; 3], fs);
        assert!(pipeline.process_recording(&audio).is_err());
    }

    #[test]
    fn invalid_configurations_rejected() {
        let fs = 16_000.0;
        for bad in [
            PipelineConfig {
                frame_len: 0,
                ..PipelineConfig::default()
            },
            PipelineConfig {
                hop: 0,
                ..PipelineConfig::default()
            },
            PipelineConfig {
                confidence_threshold: 2.0,
                ..PipelineConfig::default()
            },
        ] {
            assert!(AcousticPerceptionPipeline::new(bad, fs, 2).is_err());
        }
        assert!(AcousticPerceptionPipeline::new(PipelineConfig::default(), fs, 0).is_err());
    }

    #[test]
    fn mode_switch_resets_duty_cycle_tracking() {
        let fs = 16_000.0;
        let mut pipeline =
            AcousticPerceptionPipeline::new(PipelineConfig::default(), fs, 1).unwrap();
        assert_eq!(pipeline.mode(), OperatingMode::Drive);
        pipeline.set_mode(OperatingMode::Park);
        assert_eq!(pipeline.mode(), OperatingMode::Park);
        assert!(!pipeline.localization_available());
    }

    #[test]
    fn classify_clip_exposes_the_detector() {
        let fs = 16_000.0;
        let pipeline = AcousticPerceptionPipeline::new(PipelineConfig::default(), fs, 1).unwrap();
        let horn = ispot_sed::sirens::synthesize_event(ispot_sed::EventClass::CarHorn, fs, 1.0);
        let class = pipeline.classify_clip(&horn).unwrap();
        assert_eq!(class, ispot_sed::EventClass::CarHorn);
    }

    #[test]
    fn push_chunk_matches_batch_processing_for_odd_chunk_sizes() {
        let fs = 16_000.0;
        let siren = SirenSynthesizer::new(SirenKind::Wail, fs).synthesize(1.0);
        let audio = MultichannelAudio::new(vec![siren], fs);
        let config = PipelineConfig::default();
        let mut batch = AcousticPerceptionPipeline::new(config, fs, 1).unwrap();
        let batch_events = batch.process_recording(&audio).unwrap();
        assert!(!batch_events.is_empty());

        // Stream the same recording in deliberately awkward chunk sizes.
        for chunk_size in [1usize, 7, 160, 1024, 2048, 5000] {
            let mut streaming = AcousticPerceptionPipeline::new(config, fs, 1).unwrap();
            let mut events = Vec::new();
            let mut frames = 0;
            for chunk in audio.channel(0).chunks(chunk_size) {
                frames += streaming.push_chunk_into(&[chunk], &mut events).unwrap();
            }
            assert_eq!(
                frames,
                (audio.len() - 2048) / 1024 + 1,
                "chunk {chunk_size}"
            );
            assert_eq!(events.len(), batch_events.len(), "chunk {chunk_size}");
            for (a, b) in batch_events.iter().zip(&events) {
                assert_eq!(a.frame_index, b.frame_index);
                assert_eq!(a.class, b.class);
                assert!((a.confidence - b.confidence).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn push_chunk_buffers_partial_frames_across_calls() {
        let fs = 16_000.0;
        let mut pipeline =
            AcousticPerceptionPipeline::new(PipelineConfig::default(), fs, 1).unwrap();
        let silence = vec![0.0; 1000];
        assert_eq!(pipeline.push_chunk(&[&silence]).unwrap().len(), 0);
        assert_eq!(pipeline.pending_samples(), 1000);
        assert_eq!(pipeline.frames_processed(), 0);
        // 1048 more samples complete the first 2048-sample frame.
        let more = vec![0.0; 1048];
        pipeline.push_chunk(&[&more]).unwrap();
        assert_eq!(pipeline.frames_processed(), 1);
        assert_eq!(pipeline.pending_samples(), 2048 - 1024);
        pipeline.reset_streaming();
        assert_eq!(pipeline.pending_samples(), 0);
    }

    #[test]
    fn push_chunk_validates_channel_count() {
        let fs = 16_000.0;
        let mut pipeline =
            AcousticPerceptionPipeline::new(PipelineConfig::default(), fs, 2).unwrap();
        let mono = vec![0.0; 64];
        assert!(matches!(
            pipeline.push_chunk(&[&mono]),
            Err(PipelineError::ChannelMismatch { .. })
        ));
        let unequal = vec![0.0; 32];
        assert!(pipeline.push_chunk(&[&mono[..], &unequal[..]]).is_err());
    }

    #[test]
    fn process_recording_resets_streaming_state() {
        let fs = 16_000.0;
        let mut pipeline =
            AcousticPerceptionPipeline::new(PipelineConfig::default(), fs, 1).unwrap();
        // Leave a partial frame buffered from streaming...
        pipeline.push_chunk(&[&vec![0.0; 500][..]]).unwrap();
        assert_eq!(pipeline.pending_samples(), 500);
        // ...then batch-process: the partial frame must not leak into the batch.
        let audio = MultichannelAudio::new(vec![vec![0.0; 4096]], fs);
        pipeline.process_recording(&audio).unwrap();
        assert_eq!(pipeline.frames_processed(), 3);
        assert_eq!(pipeline.pending_samples(), 0);
    }
}
