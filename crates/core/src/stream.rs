//! Threaded streaming runner.
//!
//! A real deployment receives microphone chunks from a capture device while the
//! analysis runs on its own core. [`StreamRunner`] reproduces that structure on the
//! host: a producer thread cuts a recording into capture-sized chunks and pushes
//! them through a bounded channel (providing back-pressure, as a real-time capture
//! buffer would), while the consumer side owns the [`Session`] and feeds the
//! chunks to [`Session::push_chunk_with`] — the same chunk-to-frame assembler
//! and the same [`EventSink`] emission as every other entry point, so neither
//! framing nor event plumbing is duplicated here.
//!
//! The producer borrows the recording through a scoped thread (no copy of the
//! recording is made) and the chunk buffers travel in a cycle: producer → analysis
//! → back to the producer through a recycling channel. Steady state therefore
//! allocates nothing per chunk or per frame.

use crate::api::{with_channel_views, Session};
use crate::error::PipelineError;
use crate::events::PerceptionEvent;
use crate::sink::EventSink;
use crossbeam::channel;
use ispot_roadsim::engine::MultichannelAudio;
use std::thread;

/// One multichannel chunk travelling from the capture thread to the analysis
/// thread. The buffers inside are recycled back to the producer after analysis.
#[derive(Debug)]
struct StreamChunk {
    channels: Vec<Vec<f64>>,
}

/// Runs a pipeline against a recording using a producer thread and a bounded channel.
#[derive(Debug)]
pub struct StreamRunner {
    /// Capacity of the chunk channel (number of chunks buffered between capture and
    /// analysis).
    pub channel_capacity: usize,
    /// Samples per produced chunk; `None` mimics a capture driver delivering one
    /// pipeline hop per chunk.
    pub chunk_len: Option<usize>,
}

impl Default for StreamRunner {
    fn default() -> Self {
        StreamRunner {
            channel_capacity: 4,
            chunk_len: None,
        }
    }
}

impl StreamRunner {
    /// Creates a runner with the given channel capacity (clamped to at least 1).
    pub fn new(channel_capacity: usize) -> Self {
        StreamRunner {
            channel_capacity: channel_capacity.max(1),
            chunk_len: None,
        }
    }

    /// Sets the chunk size in samples (clamped to at least 1).
    pub fn with_chunk_len(mut self, chunk_len: usize) -> Self {
        self.chunk_len = Some(chunk_len.max(1));
        self
    }

    /// Streams `audio` through `pipeline` chunk by chunk, returning the emitted
    /// events and the number of frames processed (`streamed`).
    ///
    /// Any partially buffered streaming state in the pipeline is reset first, so the
    /// recording is processed from a clean stream start; `streamed` then always
    /// equals the recording's frame count `(len - frame_len) / hop + 1` (zero if the
    /// recording is shorter than one frame), matching
    /// [`Session::process_recording`].
    ///
    /// # Errors
    ///
    /// Returns an error if the recording does not match the pipeline configuration
    /// or any frame fails to process. Error handling is deterministic: the producer
    /// side keeps running and every remaining chunk is drained (without analysis)
    /// before the first error is returned, so no thread is left blocked and the
    /// producer always delivers the full recording regardless of where the failure
    /// occurred.
    pub fn run(
        &self,
        pipeline: &mut Session,
        audio: &MultichannelAudio,
    ) -> Result<(Vec<PerceptionEvent>, usize), PipelineError> {
        let mut events = Vec::new();
        let streamed = self.run_with(pipeline, audio, &mut events)?;
        Ok((events, streamed))
    }

    /// Streams `audio` through `pipeline` chunk by chunk, reporting emitted
    /// events and frame outcomes through `sink`, and returns the number of
    /// frames processed. This is the zero-copy twin of [`StreamRunner::run`]:
    /// events reach the sink by reference from the analysis thread, so a
    /// non-retaining sink keeps the consumer side allocation-free per event.
    ///
    /// # Errors
    ///
    /// Same conditions and drain protocol as [`StreamRunner::run`].
    pub fn run_with<S: EventSink>(
        &self,
        pipeline: &mut Session,
        audio: &MultichannelAudio,
        sink: &mut S,
    ) -> Result<usize, PipelineError> {
        let chunk_len = self
            .chunk_len
            .unwrap_or_else(|| pipeline.config().hop)
            .max(1);
        let num_channels = audio.num_channels();
        let len = audio.len();
        pipeline.reset_streaming();
        let (tx, rx) = channel::bounded::<StreamChunk>(self.channel_capacity.max(1));
        // Buffers return to the producer on this channel. Capacity covers every
        // buffer that can be alive at once (in flight + one at each end), so
        // recycling sends never block.
        let (recycle_tx, recycle_rx) =
            channel::bounded::<StreamChunk>(self.channel_capacity.max(1) + 2);
        let mut streamed = 0usize;
        let mut first_error: Option<PipelineError> = None;
        thread::scope(|scope| {
            // Producer: slice the borrowed recording into chunks, reusing recycled
            // buffers. Allocates only until the buffer pool is primed.
            scope.spawn(move || {
                let mut start = 0;
                while start < len {
                    let end = (start + chunk_len).min(len);
                    let mut chunk = recycle_rx.try_recv().unwrap_or_else(|_| StreamChunk {
                        channels: vec![Vec::with_capacity(chunk_len); num_channels],
                    });
                    for (buf, ch) in chunk.channels.iter_mut().zip(audio.channels()) {
                        buf.clear();
                        buf.extend_from_slice(&ch[start..end]);
                    }
                    if tx.send(chunk).is_err() {
                        // Consumer vanished (it never does in the drain protocol,
                        // but do not hang if it ever happens).
                        break;
                    }
                    start = end;
                }
                // `tx` drops here, closing the channel and ending the consumer loop.
            });
            // Consumer: feed chunks to the pipeline; after an error, keep draining
            // so the producer deterministically delivers the whole recording.
            for chunk in rx.iter() {
                if first_error.is_none() {
                    let outcome = with_channel_views(&chunk.channels, |views| {
                        pipeline.push_chunk_with(views, &mut *sink)
                    });
                    match outcome {
                        Ok(frames) => streamed += frames,
                        Err(e) => first_error = Some(e),
                    }
                }
                // Hand the buffers back; if the producer is done the buffers are
                // simply dropped.
                let _ = recycle_tx.send(chunk);
            }
        });
        if let Some(e) = first_error {
            return Err(e);
        }
        Ok(streamed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::PipelineBuilder;
    use crate::sink::AlertCounter;
    use ispot_sed::sirens::{SirenKind, SirenSynthesizer};

    #[test]
    fn streaming_matches_batch_processing() {
        let fs = 16_000.0;
        let siren = SirenSynthesizer::new(SirenKind::Wail, fs).synthesize(1.0);
        let audio = MultichannelAudio::new(vec![siren], fs);
        let engine = PipelineBuilder::new(fs).build_engine().unwrap();
        let mut batch_pipeline = engine.open_session();
        let batch_events = batch_pipeline.process_recording(&audio).unwrap();
        let mut stream_pipeline = engine.open_session();
        let (stream_events, streamed) = StreamRunner::new(2)
            .run(&mut stream_pipeline, &audio)
            .unwrap();
        assert_eq!(streamed, (audio.len() - 2048) / 1024 + 1);
        assert_eq!(batch_events.len(), stream_events.len());
        for (a, b) in batch_events.iter().zip(&stream_events) {
            assert_eq!(a.class, b.class);
            assert_eq!(a.frame_index, b.frame_index);
        }
        // The sink-based twin delivers the same stream without collecting it.
        let mut counting_pipeline = engine.open_session();
        let mut counter = AlertCounter::new();
        let counted = StreamRunner::new(2)
            .run_with(&mut counting_pipeline, &audio, &mut counter)
            .unwrap();
        assert_eq!(counted, streamed);
        assert_eq!(counter.frames, streamed);
        assert_eq!(counter.events, stream_events.len());
    }

    #[test]
    fn capture_style_chunk_sizes_do_not_change_the_events() {
        let fs = 16_000.0;
        let siren = SirenSynthesizer::new(SirenKind::Yelp, fs).synthesize(1.0);
        let audio = MultichannelAudio::new(vec![siren], fs);
        let engine = PipelineBuilder::new(fs).build_engine().unwrap();
        let mut reference = engine.open_session();
        let reference_events = reference.process_recording(&audio).unwrap();
        // 160 samples = a 10 ms capture block at 16 kHz; 4096 = several frames.
        for chunk_len in [1usize, 160, 333, 4096] {
            let mut pipeline = engine.open_session();
            let (events, streamed) = StreamRunner::new(3)
                .with_chunk_len(chunk_len)
                .run(&mut pipeline, &audio)
                .unwrap();
            assert_eq!(streamed, (audio.len() - 2048) / 1024 + 1);
            assert_eq!(events.len(), reference_events.len(), "chunk {chunk_len}");
            for (a, b) in reference_events.iter().zip(&events) {
                assert_eq!(a.frame_index, b.frame_index);
                assert_eq!(a.class, b.class);
            }
        }
    }

    #[test]
    fn short_recordings_stream_zero_frames() {
        let fs = 16_000.0;
        let audio = MultichannelAudio::new(vec![vec![0.0; 100]], fs);
        let mut pipeline = PipelineBuilder::new(fs).build().unwrap();
        let (events, streamed) = StreamRunner::default().run(&mut pipeline, &audio).unwrap();
        assert!(events.is_empty());
        assert_eq!(streamed, 0);
    }

    #[test]
    fn channel_mismatch_is_propagated_and_drained() {
        let fs = 16_000.0;
        let audio = MultichannelAudio::new(vec![vec![0.0; 100_000]; 3], fs);
        let mut pipeline = PipelineBuilder::new(fs).build().unwrap();
        // Errors on the very first chunk; the runner must drain the remaining
        // ~97 chunks without deadlocking on the bounded channel.
        let result = StreamRunner::new(2).run(&mut pipeline, &audio);
        assert!(matches!(result, Err(PipelineError::ChannelMismatch { .. })));
    }
}
