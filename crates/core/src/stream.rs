//! Threaded streaming runner.
//!
//! A real deployment receives microphone frames from a capture device while the
//! analysis runs on its own core. [`StreamRunner`] reproduces that structure on the
//! host: a producer thread slices a recording into frames and pushes them through a
//! bounded channel (providing back-pressure, as a real-time capture buffer would),
//! while the consumer side owns the [`AcousticPerceptionPipeline`] and emits events.

use crate::error::PipelineError;
use crate::events::PerceptionEvent;
use crate::pipeline::AcousticPerceptionPipeline;
use crossbeam::channel;
use ispot_roadsim::engine::MultichannelAudio;
use std::thread;

/// One frame travelling from the capture thread to the analysis thread.
#[derive(Debug, Clone)]
struct StreamFrame {
    index: usize,
    channels: Vec<Vec<f64>>,
}

/// Runs a pipeline against a recording using a producer thread and a bounded channel.
#[derive(Debug)]
pub struct StreamRunner {
    /// Capacity of the frame channel (number of frames buffered between capture and
    /// analysis).
    pub channel_capacity: usize,
}

impl Default for StreamRunner {
    fn default() -> Self {
        StreamRunner {
            channel_capacity: 4,
        }
    }
}

impl StreamRunner {
    /// Creates a runner with the given channel capacity (clamped to at least 1).
    pub fn new(channel_capacity: usize) -> Self {
        StreamRunner {
            channel_capacity: channel_capacity.max(1),
        }
    }

    /// Streams `audio` through `pipeline` frame by frame, returning the emitted events
    /// and the number of frames streamed.
    ///
    /// # Errors
    ///
    /// Returns an error if the recording does not match the pipeline configuration or
    /// any frame fails to process.
    pub fn run(
        &self,
        pipeline: &mut AcousticPerceptionPipeline,
        audio: &MultichannelAudio,
    ) -> Result<(Vec<PerceptionEvent>, usize), PipelineError> {
        let frame_len = pipeline.config().frame_len;
        let hop = pipeline.config().hop;
        let len = audio.len();
        if len < frame_len {
            return Ok((Vec::new(), 0));
        }
        let num_frames = (len - frame_len) / hop + 1;
        let (tx, rx) = channel::bounded::<StreamFrame>(self.channel_capacity);
        // The producer owns a copy of the channel data; for the recording sizes used in
        // the experiments this mirrors a capture driver filling DMA buffers.
        let channels: Vec<Vec<f64>> = audio.channels().to_vec();
        let producer = thread::spawn(move || {
            for f in 0..num_frames {
                let start = f * hop;
                let frame = StreamFrame {
                    index: f,
                    channels: channels
                        .iter()
                        .map(|c| c[start..start + frame_len].to_vec())
                        .collect(),
                };
                if tx.send(frame).is_err() {
                    break;
                }
            }
        });
        let mut events = Vec::new();
        let mut streamed = 0usize;
        let mut first_error: Option<PipelineError> = None;
        for frame in rx.iter() {
            streamed += 1;
            let views: Vec<&[f64]> = frame.channels.iter().map(|c| c.as_slice()).collect();
            match pipeline.process_frame(&views, frame.index) {
                Ok(Some(event)) => events.push(event),
                Ok(None) => {}
                Err(e) => {
                    first_error = Some(e);
                    break;
                }
            }
        }
        // Dropping the receiver unblocks the producer if we bailed out early.
        drop(rx);
        producer.join().expect("producer thread panicked");
        if let Some(e) = first_error {
            return Err(e);
        }
        Ok((events, streamed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineConfig;
    use ispot_sed::sirens::{SirenKind, SirenSynthesizer};

    #[test]
    fn streaming_matches_batch_processing() {
        let fs = 16_000.0;
        let siren = SirenSynthesizer::new(SirenKind::Wail, fs).synthesize(1.0);
        let audio = MultichannelAudio::new(vec![siren], fs);
        let config = PipelineConfig::default();
        let mut batch_pipeline = AcousticPerceptionPipeline::new(config, fs, 1).unwrap();
        let batch_events = batch_pipeline.process_recording(&audio).unwrap();
        let mut stream_pipeline = AcousticPerceptionPipeline::new(config, fs, 1).unwrap();
        let (stream_events, streamed) = StreamRunner::new(2)
            .run(&mut stream_pipeline, &audio)
            .unwrap();
        assert_eq!(streamed, (audio.len() - 2048) / 1024 + 1);
        assert_eq!(batch_events.len(), stream_events.len());
        for (a, b) in batch_events.iter().zip(&stream_events) {
            assert_eq!(a.class, b.class);
            assert_eq!(a.frame_index, b.frame_index);
        }
    }

    #[test]
    fn short_recordings_stream_zero_frames() {
        let fs = 16_000.0;
        let audio = MultichannelAudio::new(vec![vec![0.0; 100]], fs);
        let mut pipeline =
            AcousticPerceptionPipeline::new(PipelineConfig::default(), fs, 1).unwrap();
        let (events, streamed) = StreamRunner::default().run(&mut pipeline, &audio).unwrap();
        assert!(events.is_empty());
        assert_eq!(streamed, 0);
    }

    #[test]
    fn channel_mismatch_is_propagated() {
        let fs = 16_000.0;
        let audio = MultichannelAudio::new(vec![vec![0.0; 4096]; 3], fs);
        let mut pipeline =
            AcousticPerceptionPipeline::new(PipelineConfig::default(), fs, 1).unwrap();
        assert!(StreamRunner::default().run(&mut pipeline, &audio).is_err());
    }
}
