//! Error type for the end-to-end pipeline.

use ispot_dsp::DspError;
use ispot_sed::SedError;
use ispot_ssl::SslError;
use std::error::Error;
use std::fmt;

/// Errors produced by the end-to-end acoustic-perception pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// A configuration parameter is invalid.
    InvalidConfig {
        /// Name of the offending parameter.
        name: &'static str,
        /// Description of the violated constraint.
        reason: String,
    },
    /// The multichannel input does not match the configured channel count.
    ChannelMismatch {
        /// Expected number of channels.
        expected: usize,
        /// Supplied number of channels.
        actual: usize,
    },
    /// An interleaved chunk does not contain a whole number of channel frames.
    InterleavedLayout {
        /// Total samples in the chunk.
        samples: usize,
        /// Declared number of interleaved channels.
        channels: usize,
    },
    /// A DSP stage failed.
    Dsp(DspError),
    /// The detection stage failed.
    Detection(SedError),
    /// The localization stage failed.
    Localization(SslError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::InvalidConfig { name, reason } => {
                write!(f, "invalid pipeline configuration `{name}`: {reason}")
            }
            PipelineError::ChannelMismatch { expected, actual } => {
                write!(f, "channel mismatch: expected {expected}, got {actual}")
            }
            PipelineError::InterleavedLayout { samples, channels } => {
                write!(
                    f,
                    "interleaved chunk of {samples} samples is not a whole number of \
                     {channels}-channel frames"
                )
            }
            PipelineError::Dsp(e) => write!(f, "dsp error: {e}"),
            PipelineError::Detection(e) => write!(f, "detection error: {e}"),
            PipelineError::Localization(e) => write!(f, "localization error: {e}"),
        }
    }
}

impl Error for PipelineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PipelineError::Dsp(e) => Some(e),
            PipelineError::Detection(e) => Some(e),
            PipelineError::Localization(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DspError> for PipelineError {
    fn from(e: DspError) -> Self {
        PipelineError::Dsp(e)
    }
}

impl From<SedError> for PipelineError {
    fn from(e: SedError) -> Self {
        PipelineError::Detection(e)
    }
}

impl From<SslError> for PipelineError {
    fn from(e: SslError) -> Self {
        PipelineError::Localization(e)
    }
}

impl PipelineError {
    /// Convenience constructor for [`PipelineError::InvalidConfig`].
    pub fn invalid_config(name: &'static str, reason: impl Into<String>) -> Self {
        PipelineError::InvalidConfig {
            name,
            reason: reason.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        assert!(PipelineError::invalid_config("frame_len", "zero")
            .to_string()
            .contains("frame_len"));
        let e: PipelineError = SedError::EmptyDataset.into();
        assert!(Error::source(&e).is_some());
        let e: PipelineError = SslError::invalid_config("x", "y").into();
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PipelineError>();
    }
}
