//! # ispot-core
//!
//! The end-to-end real-time acoustic-perception pipeline of the I-SPOT project: the
//! system sketched in Fig. 1 of the paper, assembled from the substrate crates.
//!
//! A [`pipeline::AcousticPerceptionPipeline`] consumes multichannel microphone frames
//! and produces [`events::PerceptionEvent`]s — "a wail siren at −35°, approaching" —
//! by chaining:
//!
//! 1. a park-mode wake [`trigger`] (always-on, ultra-low-power energy detector),
//! 2. an emergency-sound detector (`ispot-sed`),
//! 3. the low-complexity SRP-PHAT localizer (`ispot-ssl`),
//! 4. an azimuth Kalman tracker,
//!
//! with per-stage latency accounting ([`latency`]) and two operating [`mode`]s: the
//! fully functional low-latency **drive** mode and the trigger-based low-power **park**
//! mode (Sec. II, requirement 3 of the paper).
//!
//! The four analysis steps are composed as a reusable [`stages::StageGraph`] owning
//! all per-frame scratch memory, so the steady-state frame path performs zero heap
//! allocations. Input can arrive as exact frames
//! ([`pipeline::AcousticPerceptionPipeline::process_frame`]), as arbitrary-sized
//! capture chunks ([`pipeline::AcousticPerceptionPipeline::push_chunk`], backed by
//! `ispot_dsp::framing::FrameAssembler`), or as whole recordings; all three paths
//! share one framing implementation and produce identical events.
//!
//! # Example
//!
//! ```
//! use ispot_core::prelude::*;
//! use ispot_roadsim::prelude::*;
//! use ispot_sed::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let fs = 16_000.0;
//! // One second of a wail siren passing the array.
//! let siren = SirenSynthesizer::new(SirenKind::Wail, fs).synthesize(1.0);
//! let scene = SceneBuilder::new(fs)
//!     .source(SoundSource::new(siren, Trajectory::fixed(Position::new(15.0, 10.0, 1.0))))
//!     .array(MicrophoneArray::circular(4, 0.15, Position::new(0.0, 0.0, 1.0)))
//!     .reflection(false)
//!     .air_absorption(false)
//!     .build()?;
//! let audio = Simulator::new(scene)?.run()?;
//! let config = PipelineConfig { frame_len: 2048, hop: 1024, ..PipelineConfig::default() };
//! let mut pipeline = AcousticPerceptionPipeline::new(config, audio.sample_rate(), 4)?;
//! let events = pipeline.process_recording(&audio)?;
//! assert!(events.iter().any(|e| e.class.is_event()));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod error;
pub mod events;
pub mod latency;
pub mod mode;
pub mod pipeline;
pub mod stages;
pub mod stream;
pub mod trigger;

pub use error::PipelineError;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::error::PipelineError;
    pub use crate::events::PerceptionEvent;
    pub use crate::latency::{LatencyReport, StageLatency};
    pub use crate::mode::OperatingMode;
    pub use crate::pipeline::{AcousticPerceptionPipeline, PipelineConfig};
    pub use crate::stages::{FrameOutcome, Stage, StageGraph};
    pub use crate::stream::StreamRunner;
    pub use crate::trigger::EnergyTrigger;
}
