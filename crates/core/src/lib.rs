//! # ispot-core
//!
//! The end-to-end real-time acoustic-perception pipeline of the I-SPOT project: the
//! system sketched in Fig. 1 of the paper, assembled from the substrate crates.
//!
//! The deployment-facing surface is the session/engine [`api`]: a
//! [`api::PipelineBuilder`] validates every parameter up front, builds an
//! [`api::Engine`] owning the shared immutable state (detector templates, the
//! precomputed SRP-PHAT steering operator, FFT plans — all behind `Arc`s), and
//! opens any number of independent [`api::Session`]s against it, one per
//! concurrent microphone stream. Each session chains:
//!
//! 1. a park-mode wake [`trigger`] (always-on, ultra-low-power energy detector),
//! 2. an emergency-sound detector (`ispot-sed`),
//! 3. the low-complexity SRP-PHAT localizer (`ispot-ssl`),
//! 4. an azimuth Kalman tracker,
//!
//! with per-stage latency accounting ([`latency`]) and two operating [`mode`]s: the
//! fully functional low-latency **drive** mode and the trigger-based low-power **park**
//! mode (Sec. II, requirement 3 of the paper).
//!
//! Input enters in any capture-driver format ([`input::AudioInput`]: interleaved
//! or planar, `i16`/`f32`/`f64`), is de-interleaved and converted directly into
//! the frame assembler's rings, and results leave **by reference** through an
//! [`sink::EventSink`] — in steady state the whole path from chunk ingestion to
//! event emission performs zero heap allocations. `Vec`-returning convenience
//! wrappers remain for experiments and quick scripts, and
//! [`pipeline::AcousticPerceptionPipeline`] names the classic single-stream case
//! (a session on a private engine).
//!
//! # Example
//!
//! ```
//! use ispot_core::prelude::*;
//! use ispot_roadsim::prelude::*;
//! use ispot_sed::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let fs = 16_000.0;
//! // One second of a wail siren, with a quieter broadband masker on the other lane
//! // — scenes can hold any number of sources, each on its own trajectory.
//! let siren = SirenSynthesizer::new(SirenKind::Wail, fs).synthesize(1.0);
//! let masker: Vec<f64> =
//!     ispot_dsp::generator::NoiseSource::new(ispot_dsp::generator::NoiseKind::Pink, 3)
//!         .take(16_000)
//!         .collect();
//! let scene = SceneBuilder::new(fs)
//!     .source(SoundSource::new(siren, Trajectory::fixed(Position::new(15.0, 10.0, 1.0))))
//!     .source(
//!         SoundSource::new(masker, Trajectory::fixed(Position::new(-8.0, -6.0, 0.8)))
//!             .with_gain(0.2),
//!     )
//!     .array(MicrophoneArray::circular(4, 0.15, Position::new(0.0, 0.0, 1.0)))
//!     .reflection(false)
//!     .air_absorption(false)
//!     .build()?;
//! let audio = Simulator::new(scene)?.run()?;
//! // Build the engine once, open a session per stream, sink events by reference.
//! let engine = PipelineBuilder::new(audio.sample_rate()).channels(4).build_engine()?;
//! let mut session = engine.open_session();
//! let mut alerts = AlertCounter::new();
//! session.process_recording_with(&audio, &mut alerts)?;
//! assert!(alerts.alerts > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod api;
pub mod error;
pub mod events;
pub mod input;
pub mod latency;
pub mod mode;
pub mod pipeline;
pub mod sink;
pub mod stages;
pub mod stream;
pub mod trigger;

pub use error::PipelineError;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::api::{Engine, ObserverFactory, PipelineBuilder, Session};
    pub use crate::error::PipelineError;
    pub use crate::events::{PerceptionEvent, TrackList};
    pub use crate::input::AudioInput;
    pub use crate::latency::{LatencyReport, StageLatency};
    pub use crate::mode::OperatingMode;
    pub use crate::pipeline::{AcousticPerceptionPipeline, PipelineConfig};
    pub use crate::sink::{AlertCounter, EventSink, FnSink, LatestEvent, VecSink};
    pub use crate::stages::{FrameOutcome, ObsCtx, Stage, StageGraph};
    pub use crate::stream::StreamRunner;
    pub use crate::trigger::{EnergyTrigger, TriggerConfig};
    pub use ispot_obs::{Span, SpanRing, StageId, StageObserver, TickSource};
    pub use ispot_ssl::multitrack::{TrackId, TrackSnapshot, TrackStatus, TrackingConfig};
    pub use ispot_ssl::srp_fast::SrpSearchConfig;
}
