//! Compile-time thread-safety pins for the serving layer's load-bearing types.
//!
//! The fleet-scale session host multiplexes thousands of [`Session`]s over a
//! worker pool against one shared [`Engine`]; that design is only sound if the
//! engine is freely shareable across threads (`Send + Sync`) and a session can
//! migrate between workers (`Send`). These bounds held implicitly since PR 3
//! (the threaded determinism test in `engine_sessions.rs` relies on them), but
//! a refactor introducing an `Rc`, a `RefCell`, or a raw pointer into any stage
//! would only surface as a distant borrow-check error in whatever test spawned
//! a thread first. The `const` assertions below turn that into an immediate,
//! named compile failure at the type that regressed.
//!
//! Everything here is evaluated at compile time; the lone `#[test]` exists so
//! the harness reports the file instead of silently linking it.

use ispot_core::prelude::*;
use ispot_core::sink::{AlertCounter, VecSink};
use ispot_core::stages::FrameOutcome;

const fn assert_send<T: Send>() {}
const fn assert_send_sync<T: Send + Sync>() {}

const _: () = {
    // The engine is the shared half of a deployment: one per process, handed by
    // cheap clone to every connection/worker thread.
    assert_send_sync::<Engine>();
    // Sessions hold only per-stream mutable state and hop between pool workers.
    assert_send::<Session>();
    // Events and outcomes cross thread boundaries through sinks and channels.
    assert_send_sync::<PerceptionEvent>();
    assert_send_sync::<FrameOutcome>();
    // The bundled sink adapters must compose into `Box<dyn EventSink + Send>`.
    assert_send::<VecSink>();
    assert_send::<LatestEvent>();
    assert_send::<AlertCounter>();
    // Builder and config travel to whatever thread constructs the engine.
    assert_send_sync::<PipelineBuilder>();
    assert_send_sync::<PipelineError>();
};

#[test]
fn thread_safety_bounds_are_pinned_at_compile_time() {
    // The `const` block above is the test; reaching this line means it compiled.
}
