//! Multi-session engine behaviour: shared-state cost model and stream isolation.
//!
//! The north-star scaling property of the session/engine redesign is that the
//! marginal cost of another concurrent stream is scratch-only: all heavyweight
//! immutable state (detector templates, SRP-PHAT steering operator, FFT plans)
//! is built once per engine and shared. The Criterion bench
//! `crates/bench/benches/engine.rs` measures the same property with
//! statistical rigour; this test enforces the acceptance threshold (a session
//! opens in < 20 % of the engine build time) with a margin wide enough to be
//! robust on noisy CI machines — in practice the ratio is well under 1 %.

use ispot_core::prelude::*;
use ispot_roadsim::geometry::Position;
use ispot_roadsim::microphone::MicrophoneArray;
use ispot_sed::sirens::{SirenKind, SirenSynthesizer};
use std::time::Instant;

#[test]
fn opening_sessions_costs_a_fraction_of_building_the_engine() {
    let fs = 16_000.0;
    let array = MicrophoneArray::circular(6, 0.2, Position::new(0.0, 0.0, 1.0));

    let start = Instant::now();
    let engine = PipelineBuilder::new(fs)
        .array(&array)
        .build_engine()
        .unwrap();
    let engine_build = start.elapsed();

    // Sessions 2..=8: each must be cheap — no template synthesis, no steering
    // precompute, just scratch allocation.
    let first = engine.open_session();
    let start = Instant::now();
    let sessions: Vec<Session> = (0..7).map(|_| engine.open_session()).collect();
    let per_session = start.elapsed() / 7;

    assert!(
        per_session < engine_build.mul_f64(0.2),
        "opening a session took {per_session:?}, engine build took {engine_build:?} \
         (ratio {:.3})",
        per_session.as_secs_f64() / engine_build.as_secs_f64()
    );
    drop((first, sessions));
}

#[test]
fn eight_concurrent_sessions_process_independent_streams() {
    let fs = 16_000.0;
    let array = MicrophoneArray::circular(2, 0.2, Position::new(0.0, 0.0, 1.0));
    let engine = PipelineBuilder::new(fs)
        .array(&array)
        .build_engine()
        .unwrap();

    // Eight streams with different content, processed interleaved on different
    // threads against one engine; each must behave exactly like a private
    // pipeline fed the same stream.
    let kinds = [SirenKind::Wail, SirenKind::Yelp];
    let streams: Vec<Vec<f64>> = (0..8)
        .map(|i| {
            SirenSynthesizer::new(kinds[i % 2], fs)
                .synthesize(0.5)
                .iter()
                .map(|x| x * (0.4 + 0.08 * i as f64))
                .collect()
        })
        .collect();

    let expected: Vec<Vec<PerceptionEvent>> = streams
        .iter()
        .map(|s| {
            let mut session = engine.open_session();
            let mut events = Vec::new();
            session.push_chunk_with(&[s, s], &mut events).unwrap();
            events
        })
        .collect();

    let results: Vec<Vec<PerceptionEvent>> = std::thread::scope(|scope| {
        let handles: Vec<_> = streams
            .iter()
            .map(|s| {
                let mut session = engine.open_session();
                scope.spawn(move || {
                    let mut events = Vec::new();
                    // Feed in driver-sized blocks to exercise per-session framing.
                    for chunk in s.chunks(160) {
                        session
                            .push_chunk_with(&[chunk, chunk], &mut events)
                            .unwrap();
                    }
                    events
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (i, (got, want)) in results.iter().zip(&expected).enumerate() {
        assert_eq!(got, want, "stream {i} diverged from its private reference");
    }
}
