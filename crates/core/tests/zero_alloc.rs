//! Asserts that the sink-based streaming path of the full perception pipeline —
//! chunk ingestion through the frame assembler, mixdown, trigger, detection,
//! localization, tracking, and event emission through an [`EventSink`] — is
//! allocation-free in steady state, using a counting global allocator. This
//! extends the SRP-PHAT-only coverage in `crates/ssl/tests/zero_alloc.rs` to the
//! whole system.
//!
//! The whole test binary runs under the counting allocator; the assertions only
//! look at the *delta* across the measured region, so unrelated allocations made
//! while setting up (or by the test harness before/after) do not matter. The test
//! harness runs tests on secondary threads, but this file holds a single test, so
//! no other test can allocate concurrently inside the measured window.

use ispot_core::prelude::*;
use ispot_roadsim::geometry::Position;
use ispot_roadsim::microphone::MicrophoneArray;
use ispot_sed::sirens::{SirenKind, SirenSynthesizer};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Wraps the system allocator, counting every allocation and reallocation.
struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocation_count() -> usize {
    ALLOCATIONS.load(Ordering::SeqCst)
}

/// Streams `rounds` chunks of `chunk[..]` into the session through a
/// non-retaining sink and returns (allocation delta, counter).
fn measure(
    session: &mut Session,
    channels: &[Vec<f64>],
    chunk_len: usize,
    rounds: usize,
) -> (usize, AlertCounter) {
    let mut counter = AlertCounter::new();
    let len = channels[0].len();
    let before = allocation_count();
    let mut start = 0;
    for _ in 0..rounds {
        let end = (start + chunk_len).min(len);
        // Build the chunk views on the stack (2 channels).
        let chunk = [&channels[0][start..end], &channels[1][start..end]];
        session.push_chunk_with(&chunk, &mut counter).unwrap();
        start = if end == len { 0 } else { end };
    }
    (allocation_count() - before, counter)
}

#[test]
fn steady_state_streaming_with_sinks_allocates_nothing() {
    let fs = 16_000.0;
    // A loud siren so frames clear the confidence threshold and events actually
    // fire — the measured window must cover event *emission*, not just analysis.
    let siren = SirenSynthesizer::new(SirenKind::Wail, fs).synthesize(2.0);
    let array = MicrophoneArray::circular(2, 0.2, Position::new(0.0, 0.0, 1.0));
    let channels: Vec<Vec<f64>> = vec![siren.clone(), siren];

    let engine = PipelineBuilder::new(fs)
        .array(&array)
        .build_engine()
        .unwrap();
    let mut session = engine.open_session();

    // Warm-up: size the assembler rings, recycled frame buffers, detector and
    // SRP scratch, the latency-report entries and the output map.
    let (_, warm) = measure(&mut session, &channels, 1600, 64);
    assert!(warm.frames > 0, "warm-up processed no frames");
    assert!(warm.alerts > 0, "warm-up fired no events");

    // Measured region: capture-sized chunks (10 ms blocks at 16 kHz), events
    // firing, localization and tracking running — zero allocations allowed.
    let (delta, counter) = measure(&mut session, &channels, 160, 256);
    assert!(counter.frames > 0, "measured window processed no frames");
    assert_eq!(
        delta, 0,
        "sink-based streaming path allocated {delta} times in steady state \
         ({} frames, {} events)",
        counter.frames, counter.events
    );

    // The same holds in park mode (trigger-gated path) after its own warm-up.
    session.set_mode(OperatingMode::Park);
    let (_, _) = measure(&mut session, &channels, 1600, 32);
    let (delta, counter) = measure(&mut session, &channels, 160, 128);
    assert_eq!(
        delta, 0,
        "park-mode streaming path allocated {delta} times in steady state \
         ({} frames, {} gated)",
        counter.frames, counter.gated
    );

    // Sanity check that the counter is actually live.
    let before = allocation_count();
    let v: Vec<u8> = Vec::with_capacity(64);
    assert!(allocation_count() > before, "counting allocator inactive");
    drop(v);
}
