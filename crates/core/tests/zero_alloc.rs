//! Asserts that the sink-based streaming path of the full perception pipeline —
//! chunk ingestion through the frame assembler, mixdown, trigger, detection,
//! localization, multi-target tracking, and event emission through an
//! [`EventSink`] — is allocation-free in steady state, using a counting global
//! allocator. This extends the SRP-PHAT-only coverage in
//! `crates/ssl/tests/zero_alloc.rs` to the whole system, including the
//! multi-track path: peak extraction, gated association, track births and
//! deaths all run inside preallocated storage.
//!
//! The whole test binary runs under the counting allocator; the assertions only
//! look at the *delta* across the measured region, so unrelated allocations made
//! while setting up (or by the test harness before/after) do not matter. The test
//! harness runs tests on secondary threads, but this file holds a single test, so
//! no other test can allocate concurrently inside the measured window.

use ispot_core::prelude::*;
use ispot_roadsim::engine::Simulator;
use ispot_roadsim::geometry::Position;
use ispot_roadsim::microphone::MicrophoneArray;
use ispot_roadsim::scene::SceneBuilder;
use ispot_roadsim::source::SoundSource;
use ispot_roadsim::trajectory::Trajectory;
use ispot_sed::sirens::{SirenKind, SirenSynthesizer};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Wraps the system allocator, counting every allocation and reallocation.
struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: a pure pass-through to the system allocator — every layout/pointer
// contract is forwarded unchanged, the wrapper only bumps an atomic counter.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: delegates directly to `System.alloc` under the caller's layout.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        // SAFETY: `layout` is forwarded unchanged under the caller's contract.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: delegates directly to `System.dealloc`; `ptr` was produced by
    // the matching `alloc`/`realloc` on the same `System` allocator.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` are forwarded unchanged under the caller's contract.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: delegates directly to `System.realloc` under the caller's
    // layout contract.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        // SAFETY: all three arguments are forwarded unchanged under the caller's contract.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocation_count() -> usize {
    ALLOCATIONS.load(Ordering::SeqCst)
}

/// A sink that counts frames/events and remembers the deepest track list seen —
/// fixed-size state, so feeding it never allocates.
#[derive(Default)]
struct TrackStats {
    counter: AlertCounter,
    max_tracks: usize,
    max_confirmed: usize,
}

impl EventSink for TrackStats {
    fn on_event(&mut self, event: &PerceptionEvent) {
        self.counter.on_event(event);
        self.max_tracks = self.max_tracks.max(event.tracks.len());
        self.max_confirmed = self.max_confirmed.max(event.tracks.confirmed().count());
    }

    fn on_frame(&mut self, outcome: &ispot_core::stages::FrameOutcome) {
        self.counter.on_frame(outcome);
    }
}

/// Streams `rounds` chunks of `chunk_len` samples into the session through a
/// non-retaining sink and returns (allocation delta, stats). The per-chunk
/// channel views are built on the stack, so the measured region contains only
/// pipeline work.
fn measure(
    session: &mut Session,
    channels: &[Vec<f64>],
    chunk_len: usize,
    rounds: usize,
) -> (usize, TrackStats) {
    const MAX_CHANNELS: usize = 8;
    assert!(channels.len() <= MAX_CHANNELS);
    let mut stats = TrackStats::default();
    let len = channels[0].len();
    let before = allocation_count();
    let mut start = 0;
    for _ in 0..rounds {
        let end = (start + chunk_len).min(len);
        let mut views: [&[f64]; MAX_CHANNELS] = [&[]; MAX_CHANNELS];
        for (view, ch) in views.iter_mut().zip(channels) {
            *view = &ch[start..end];
        }
        session
            .push_chunk_with(&views[..channels.len()], &mut stats)
            .unwrap();
        start = if end == len { 0 } else { end };
    }
    (allocation_count() - before, stats)
}

#[test]
fn steady_state_streaming_with_sinks_allocates_nothing() {
    let fs = 16_000.0;
    // A loud siren so frames clear the confidence threshold and events actually
    // fire — the measured window must cover event *emission*, not just analysis.
    let siren = SirenSynthesizer::new(SirenKind::Wail, fs).synthesize(2.0);
    let array = MicrophoneArray::circular(2, 0.2, Position::new(0.0, 0.0, 1.0));
    let channels: Vec<Vec<f64>> = vec![siren.clone(), siren];

    let engine = PipelineBuilder::new(fs)
        .array(&array)
        .build_engine()
        .unwrap();
    let mut session = engine.open_session();

    // Warm-up: size the assembler rings, recycled frame buffers, detector and
    // SRP scratch, the latency-report entries and the output map.
    let (_, warm) = measure(&mut session, &channels, 1600, 64);
    assert!(warm.counter.frames > 0, "warm-up processed no frames");
    assert!(warm.counter.alerts > 0, "warm-up fired no events");

    // Measured region: capture-sized chunks (10 ms blocks at 16 kHz), events
    // firing, localization and tracking running — zero allocations allowed.
    let (delta, stats) = measure(&mut session, &channels, 160, 256);
    assert!(
        stats.counter.frames > 0,
        "measured window processed no frames"
    );
    assert_eq!(
        delta, 0,
        "sink-based streaming path allocated {delta} times in steady state \
         ({} frames, {} events)",
        stats.counter.frames, stats.counter.events
    );

    // The same holds in park mode (trigger-gated path) after its own warm-up.
    session.set_mode(OperatingMode::Park);
    let (_, _) = measure(&mut session, &channels, 1600, 32);
    let (delta, stats) = measure(&mut session, &channels, 160, 128);
    assert_eq!(
        delta, 0,
        "park-mode streaming path allocated {delta} times in steady state \
         ({} frames, {} gated)",
        stats.counter.frames, stats.counter.gated
    );

    // Multi-track steady state: a rendered two-siren road scene on a 4-mic
    // array, so the session runs genuine multi-target tracking — several SRP
    // peaks per frame, concurrent confirmed tracks, births and deaths — while
    // events carry their full track lists through the sink.
    let multi = {
        let wail = SirenSynthesizer::new(SirenKind::Wail, fs).synthesize(2.0);
        let yelp = SirenSynthesizer::new(SirenKind::Yelp, fs).synthesize(2.0);
        let quad = MicrophoneArray::circular(4, 0.2, Position::new(0.0, 0.0, 1.0));
        let scene = SceneBuilder::new(fs)
            .source(SoundSource::new(
                wail,
                Trajectory::fixed(Position::new(10.0, 12.0, 1.0)),
            ))
            .source(SoundSource::new(
                yelp,
                Trajectory::fixed(Position::new(-4.0, -14.0, 1.0)),
            ))
            .array(quad.clone())
            .reflection(false)
            .air_absorption(false)
            .build()
            .unwrap();
        let audio = Simulator::new(scene).unwrap().run().unwrap();
        let engine = PipelineBuilder::new(fs)
            .array(&quad)
            .build_engine()
            .unwrap();
        (audio.into_channels(), engine)
    };
    let mut session = multi.1.open_session();
    let (_, warm) = measure(&mut session, &multi.0, 1600, 64);
    assert!(
        warm.counter.alerts > 0,
        "multi-source warm-up fired no events"
    );
    let (delta, stats) = measure(&mut session, &multi.0, 160, 256);
    assert!(
        stats.max_tracks >= 2,
        "multi-source window tracked only {} source(s)",
        stats.max_tracks
    );
    assert_eq!(
        delta, 0,
        "multi-track streaming path allocated {delta} times in steady state \
         ({} frames, {} events, up to {} tracks)",
        stats.counter.frames, stats.counter.events, stats.max_tracks
    );

    // Sanity check that the counter is actually live.
    let before = allocation_count();
    let v: Vec<u8> = Vec::with_capacity(64);
    assert!(allocation_count() > before, "counting allocator inactive");
    drop(v);
}
