//! Optimization passes on the operator IR.
//!
//! The algorithmic finetuning levers identified in Fig. 4 of the paper — DSP
//! coefficient/LUT selection, signal/feature resolution, DNN structure hyper-parameters
//! and weight compression — are modelled as IR-to-IR passes. The analytic passes here
//! transform the cost model's view of a pipeline; their "real" counterparts on trained
//! networks live in `ispot-nn` ([`ispot_nn::prune`], [`ispot_nn::quantize`]).

use crate::error::CodesignError;
use crate::ir::{OpGraph, OpKind, OpNode};
use serde::{Deserialize, Serialize};

/// An IR-level optimization pass.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Pass {
    /// Quantize all parameterized operators to the given bit width.
    Quantize {
        /// Target weight bit width (2–16).
        bits: u8,
    },
    /// Remove the fraction `ratio` of weights (and proportionally the MAC work) from
    /// neural-network operators (convolutions and dense layers).
    PruneWeights {
        /// Fraction of weights removed, in `[0, 1)`.
        ratio: f64,
    },
    /// Scale the resolution of the DSP front-end (steering directions, filterbank
    /// bands, FFT size) by `factor` (< 1 reduces work).
    FeatureResolutionScale {
        /// Multiplicative factor in `(0, 1]`.
        factor: f64,
    },
    /// Scale the channel widths of the neural back-end by `factor` (< 1 shrinks the
    /// network; MACs scale roughly with the square of the factor).
    ChannelWidthScale {
        /// Multiplicative factor in `(0, 1]`.
        factor: f64,
    },
}

/// The result of applying a pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PassOutcome {
    /// The transformed graph.
    pub graph: OpGraph,
    /// A human-readable description of what the pass did.
    pub description: String,
}

impl Pass {
    /// Validates the pass parameters.
    pub fn validate(&self) -> Result<(), CodesignError> {
        match self {
            Pass::Quantize { bits } => {
                if !(2..=16).contains(bits) {
                    return Err(CodesignError::invalid_config(
                        "bits",
                        format!("must be within [2, 16], got {bits}"),
                    ));
                }
            }
            Pass::PruneWeights { ratio } => {
                if !(0.0..1.0).contains(ratio) {
                    return Err(CodesignError::invalid_config(
                        "ratio",
                        format!("must be within [0, 1), got {ratio}"),
                    ));
                }
            }
            Pass::FeatureResolutionScale { factor } | Pass::ChannelWidthScale { factor } => {
                if !(*factor > 0.0 && *factor <= 1.0) {
                    return Err(CodesignError::invalid_config(
                        "factor",
                        format!("must be within (0, 1], got {factor}"),
                    ));
                }
            }
        }
        Ok(())
    }

    /// Applies the pass to a graph, returning the transformed copy.
    ///
    /// # Errors
    ///
    /// Returns an error if the pass parameters are invalid.
    pub fn apply(&self, graph: &OpGraph) -> Result<PassOutcome, CodesignError> {
        self.validate()?;
        let mut out = graph.clone();
        match self {
            Pass::Quantize { bits } => {
                for op in out.ops_mut() {
                    if op.parameters > 0 {
                        op.weight_bits = (*bits).min(op.weight_bits);
                    }
                }
            }
            Pass::PruneWeights { ratio } => {
                let keep = 1.0 - ratio;
                for op in out.ops_mut() {
                    if is_network_op(op) {
                        op.parameters = ((op.parameters as f64) * keep).round() as usize;
                        scale_macs(op, keep);
                    }
                }
            }
            Pass::FeatureResolutionScale { factor } => {
                for op in out.ops_mut() {
                    match &mut op.kind {
                        OpKind::SrpSteering {
                            directions,
                            coefficients,
                            ..
                        } => {
                            *directions = scaled(*directions, *factor);
                            *coefficients = scaled(*coefficients, *factor);
                            op.parameters = ((op.parameters as f64) * factor).round() as usize;
                        }
                        OpKind::Fft { size } => {
                            *size = scaled(*size, *factor).next_power_of_two();
                        }
                        OpKind::Filterbank { bands, .. } => {
                            *bands = scaled(*bands, *factor);
                            op.parameters = ((op.parameters as f64) * factor).round() as usize;
                        }
                        OpKind::GccPhat { bins } => {
                            *bins = scaled(*bins, *factor);
                        }
                        _ => {}
                    }
                }
            }
            Pass::ChannelWidthScale { factor } => {
                for op in out.ops_mut() {
                    match &mut op.kind {
                        OpKind::Conv2d {
                            in_channels,
                            out_channels,
                            ..
                        } => {
                            // Keep single-channel inputs (the spectrogram image) intact.
                            if *in_channels > 1 {
                                *in_channels = scaled(*in_channels, *factor);
                            }
                            *out_channels = scaled(*out_channels, *factor);
                            op.parameters =
                                ((op.parameters as f64) * factor * factor).round() as usize;
                        }
                        OpKind::Dense {
                            in_features,
                            out_features,
                        } => {
                            *in_features = scaled(*in_features, *factor);
                            // The classifier output width is preserved.
                            let _ = out_features;
                            op.parameters = ((op.parameters as f64) * factor).round() as usize;
                        }
                        OpKind::Activation { elements }
                        | OpKind::Pool {
                            output_elements: elements,
                        } => {
                            *elements = scaled(*elements, *factor);
                        }
                        _ => {}
                    }
                }
            }
        }
        Ok(PassOutcome {
            graph: out,
            description: format!("{self:?}"),
        })
    }
}

fn is_network_op(op: &OpNode) -> bool {
    matches!(op.kind, OpKind::Conv2d { .. } | OpKind::Dense { .. })
}

fn scaled(value: usize, factor: f64) -> usize {
    ((value as f64 * factor).round() as usize).max(1)
}

fn scale_macs(op: &mut OpNode, keep: f64) {
    // Pruned weights skip their multiply-accumulates; model this by shrinking the
    // output spatial extent / feature count proportionally.
    match &mut op.kind {
        OpKind::Conv2d { output, .. } => {
            output.0 = scaled(output.0, keep.sqrt());
            output.1 = scaled(output.1, keep.sqrt());
        }
        OpKind::Dense { in_features, .. } => {
            *in_features = scaled(*in_features, keep);
        }
        _ => {}
    }
}

/// Applies a sequence of passes, threading the graph through each.
///
/// # Errors
///
/// Returns an error if any pass is invalid.
pub fn apply_passes(graph: &OpGraph, passes: &[Pass]) -> Result<OpGraph, CodesignError> {
    let mut current = graph.clone();
    for pass in passes {
        current = pass.apply(&current)?.graph;
    }
    Ok(current)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::OpNode;

    fn pipeline() -> OpGraph {
        let mut g = OpGraph::new("cross3d");
        g.push(OpNode::fft("fft", 2048));
        g.push(OpNode::gcc_phat("gcc", 1024));
        g.push(OpNode::srp_steering("srp", 15, 181, 850));
        g.push(OpNode::conv2d("conv1", 1, 16, (3, 3), (32, 32), 1));
        g.push(OpNode::conv2d("conv2", 16, 32, (3, 3), (16, 16), 1));
        g.push(OpNode::dense("head", 2048, 36));
        g
    }

    #[test]
    fn quantization_shrinks_weight_storage_only() {
        let g = pipeline();
        let q = Pass::Quantize { bits: 8 }.apply(&g).unwrap().graph;
        assert!(q.total_weight_bytes() < g.total_weight_bytes());
        assert_eq!(q.total_macs(), g.total_macs());
        assert_eq!(q.total_parameters(), g.total_parameters());
    }

    #[test]
    fn pruning_reduces_parameters_and_macs_of_network_ops() {
        let g = pipeline();
        let p = Pass::PruneWeights { ratio: 0.5 }.apply(&g).unwrap().graph;
        assert!(p.total_parameters() < g.total_parameters());
        assert!(p.total_macs() < g.total_macs());
        // DSP front-end untouched.
        assert_eq!(p.ops()[0], g.ops()[0]);
        assert_eq!(p.ops()[2], g.ops()[2]);
    }

    #[test]
    fn feature_resolution_scaling_targets_the_dsp_front_end() {
        let g = pipeline();
        let s = Pass::FeatureResolutionScale { factor: 0.5 }
            .apply(&g)
            .unwrap()
            .graph;
        // SRP steering work drops roughly quadratically (directions × coefficients).
        let srp_before = g.ops()[2].macs();
        let srp_after = s.ops()[2].macs();
        assert!(srp_after < srp_before / 3);
        // The CNN is untouched by this pass.
        assert_eq!(s.ops()[3], g.ops()[3]);
    }

    #[test]
    fn channel_scaling_shrinks_the_network_quadratically() {
        let g = pipeline();
        let s = Pass::ChannelWidthScale { factor: 0.5 }
            .apply(&g)
            .unwrap()
            .graph;
        let conv2_before = g.ops()[4].macs();
        let conv2_after = s.ops()[4].macs();
        assert!(conv2_after <= conv2_before / 3);
        assert!(s.total_parameters() < g.total_parameters());
    }

    #[test]
    fn passes_compose() {
        let g = pipeline();
        let optimized = apply_passes(
            &g,
            &[
                Pass::FeatureResolutionScale { factor: 0.5 },
                Pass::ChannelWidthScale { factor: 0.5 },
                Pass::PruneWeights { ratio: 0.5 },
                Pass::Quantize { bits: 8 },
            ],
        )
        .unwrap();
        assert!(optimized.total_macs() < g.total_macs() / 2);
        assert!(optimized.total_weight_bytes() < g.total_weight_bytes() / 4);
    }

    #[test]
    fn invalid_passes_rejected() {
        let g = pipeline();
        assert!(Pass::Quantize { bits: 1 }.apply(&g).is_err());
        assert!(Pass::PruneWeights { ratio: 1.0 }.apply(&g).is_err());
        assert!(Pass::FeatureResolutionScale { factor: 0.0 }
            .apply(&g)
            .is_err());
        assert!(Pass::ChannelWidthScale { factor: 1.5 }.apply(&g).is_err());
    }
}
