//! Operator-level intermediate representation (IR) of hybrid DSP + NN pipelines.
//!
//! The paper's workflow lowers algorithm descriptions to "unified lower operator
//! expressions" (currently TVM IR, later a custom I-SPOT IR targeting CGRA back-ends).
//! This module provides that operator level: a flat graph of [`OpNode`]s, each with an
//! analytic compute cost (multiply-accumulate operations), parameter count and memory
//! traffic, which the platform models in [`crate::platform`] turn into latency and
//! energy estimates.

use ispot_nn::model::Sequential;
use serde::{Deserialize, Serialize};

/// The operator kinds that occur in the I-SPOT pipelines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OpKind {
    /// 2-D convolution: `in_channels`, `out_channels`, kernel, output spatial size.
    Conv2d {
        /// Input channels.
        in_channels: usize,
        /// Output channels.
        out_channels: usize,
        /// Kernel size (h, w).
        kernel: (usize, usize),
        /// Output spatial size (h, w).
        output: (usize, usize),
    },
    /// Fully connected layer.
    Dense {
        /// Input features.
        in_features: usize,
        /// Output features.
        out_features: usize,
    },
    /// Pooling over feature maps.
    Pool {
        /// Number of output elements.
        output_elements: usize,
    },
    /// Element-wise activation.
    Activation {
        /// Number of elements.
        elements: usize,
    },
    /// Fast Fourier transform of the given size.
    Fft {
        /// Transform size.
        size: usize,
    },
    /// GCC-PHAT cross-spectrum computation for one microphone pair.
    GccPhat {
        /// Number of frequency bins.
        bins: usize,
    },
    /// SRP steering: `pairs × directions × coefficients` accumulation.
    SrpSteering {
        /// Number of microphone pairs.
        pairs: usize,
        /// Number of steering directions.
        directions: usize,
        /// Coefficients (frequency bins or lag taps) per (pair, direction).
        coefficients: usize,
    },
    /// Mel / gammatone filterbank projection.
    Filterbank {
        /// Number of input bins.
        bins: usize,
        /// Number of output bands.
        bands: usize,
    },
    /// Anything else with an explicit MAC count.
    Custom {
        /// Multiply-accumulate operations.
        macs: u64,
    },
}

/// One operator in the pipeline graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpNode {
    /// Human-readable name (unique within a graph by convention).
    pub name: String,
    /// The operator kind and its shape parameters.
    pub kind: OpKind,
    /// Number of trainable parameters carried by the operator.
    pub parameters: usize,
    /// Bit width of the parameters (32 for float baseline, lower after quantization).
    pub weight_bits: u8,
}

impl OpNode {
    /// Creates a convolution node; `output` is the output spatial size.
    pub fn conv2d(
        name: &str,
        in_channels: usize,
        out_channels: usize,
        kernel: (usize, usize),
        output: (usize, usize),
        _stride: usize,
    ) -> Self {
        OpNode {
            name: name.to_string(),
            kind: OpKind::Conv2d {
                in_channels,
                out_channels,
                kernel,
                output,
            },
            parameters: out_channels * in_channels * kernel.0 * kernel.1 + out_channels,
            weight_bits: 32,
        }
    }

    /// Creates a dense (fully connected) node.
    pub fn dense(name: &str, in_features: usize, out_features: usize) -> Self {
        OpNode {
            name: name.to_string(),
            kind: OpKind::Dense {
                in_features,
                out_features,
            },
            parameters: in_features * out_features + out_features,
            weight_bits: 32,
        }
    }

    /// Creates a pooling node.
    pub fn pool(name: &str, output_elements: usize) -> Self {
        OpNode {
            name: name.to_string(),
            kind: OpKind::Pool { output_elements },
            parameters: 0,
            weight_bits: 32,
        }
    }

    /// Creates an activation node.
    pub fn activation(name: &str, elements: usize) -> Self {
        OpNode {
            name: name.to_string(),
            kind: OpKind::Activation { elements },
            parameters: 0,
            weight_bits: 32,
        }
    }

    /// Creates an FFT node.
    pub fn fft(name: &str, size: usize) -> Self {
        OpNode {
            name: name.to_string(),
            kind: OpKind::Fft { size },
            parameters: 0,
            weight_bits: 32,
        }
    }

    /// Creates a GCC-PHAT node for one microphone pair.
    pub fn gcc_phat(name: &str, bins: usize) -> Self {
        OpNode {
            name: name.to_string(),
            kind: OpKind::GccPhat { bins },
            parameters: 0,
            weight_bits: 32,
        }
    }

    /// Creates an SRP steering node.
    pub fn srp_steering(name: &str, pairs: usize, directions: usize, coefficients: usize) -> Self {
        OpNode {
            name: name.to_string(),
            kind: OpKind::SrpSteering {
                pairs,
                directions,
                coefficients,
            },
            // The steering stage stores the per-pair coefficients (lag tables or
            // cross-spectrum weights).
            parameters: pairs * coefficients,
            weight_bits: 32,
        }
    }

    /// Creates a filterbank node.
    pub fn filterbank(name: &str, bins: usize, bands: usize) -> Self {
        OpNode {
            name: name.to_string(),
            kind: OpKind::Filterbank { bins, bands },
            parameters: bins * bands,
            weight_bits: 32,
        }
    }

    /// Creates a custom node with an explicit MAC count.
    pub fn custom(name: &str, macs: u64, parameters: usize) -> Self {
        OpNode {
            name: name.to_string(),
            kind: OpKind::Custom { macs },
            parameters,
            weight_bits: 32,
        }
    }

    /// Multiply-accumulate operations needed to execute the operator once.
    pub fn macs(&self) -> u64 {
        match &self.kind {
            OpKind::Conv2d {
                in_channels,
                out_channels,
                kernel,
                output,
            } => (in_channels * out_channels * kernel.0 * kernel.1 * output.0 * output.1) as u64,
            OpKind::Dense {
                in_features,
                out_features,
            } => (in_features * out_features) as u64,
            OpKind::Pool { output_elements } => *output_elements as u64,
            OpKind::Activation { elements } => *elements as u64,
            // ~5 N log2 N real operations, counted as MAC-equivalents.
            OpKind::Fft { size } => {
                let n = *size as f64;
                (5.0 * n * n.log2()).ceil() as u64
            }
            OpKind::GccPhat { bins } => (*bins * 6) as u64,
            OpKind::SrpSteering {
                pairs,
                directions,
                coefficients,
            } => (*pairs * *directions * *coefficients) as u64,
            OpKind::Filterbank { bins, bands } => (*bins * *bands) as u64,
            OpKind::Custom { macs } => *macs,
        }
    }

    /// Approximate bytes moved to execute the operator once (weights + activations at
    /// the operator's weight bit width for parameters, 4 bytes per activation).
    pub fn bytes_accessed(&self) -> u64 {
        let weight_bytes = (self.parameters as u64 * self.weight_bits as u64).div_ceil(8);
        let activation_bytes = match &self.kind {
            OpKind::Conv2d {
                out_channels,
                output,
                ..
            } => (out_channels * output.0 * output.1 * 4) as u64,
            OpKind::Dense { out_features, .. } => (*out_features * 4) as u64,
            OpKind::Pool { output_elements } => (*output_elements * 4) as u64,
            OpKind::Activation { elements } => (*elements * 8) as u64,
            OpKind::Fft { size } => (*size * 16) as u64,
            OpKind::GccPhat { bins } => (*bins * 16) as u64,
            OpKind::SrpSteering {
                pairs, directions, ..
            } => ((*pairs + *directions) * 8) as u64,
            OpKind::Filterbank { bands, .. } => (*bands * 8) as u64,
            OpKind::Custom { macs } => macs / 4,
        };
        weight_bytes + activation_bytes
    }

    /// Size of the operator's weights in bytes at the current bit width.
    pub fn weight_bytes(&self) -> u64 {
        (self.parameters as u64 * self.weight_bits as u64).div_ceil(8)
    }

    /// Operational intensity in MAC per byte (the roofline x-axis).
    pub fn operational_intensity(&self) -> f64 {
        self.macs() as f64 / self.bytes_accessed().max(1) as f64
    }
}

/// A flat operator graph (the ops execute sequentially once per frame).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OpGraph {
    name: String,
    ops: Vec<OpNode>,
}

impl OpGraph {
    /// Creates an empty graph with a name.
    pub fn new(name: &str) -> Self {
        OpGraph {
            name: name.to_string(),
            ops: Vec::new(),
        }
    }

    /// The graph name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends an operator.
    pub fn push(&mut self, op: OpNode) {
        self.ops.push(op);
    }

    /// The operators in execution order.
    pub fn ops(&self) -> &[OpNode] {
        &self.ops
    }

    /// Mutable access to the operators (used by optimization passes).
    pub fn ops_mut(&mut self) -> &mut [OpNode] {
        &mut self.ops
    }

    /// Number of operators.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns true if the graph has no operators.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Total MACs per frame.
    pub fn total_macs(&self) -> u64 {
        self.ops.iter().map(OpNode::macs).sum()
    }

    /// Total parameters.
    pub fn total_parameters(&self) -> usize {
        self.ops.iter().map(|o| o.parameters).sum()
    }

    /// Total weight storage in bytes (honouring per-op bit widths).
    pub fn total_weight_bytes(&self) -> u64 {
        self.ops.iter().map(OpNode::weight_bytes).sum()
    }

    /// Total bytes moved per frame.
    pub fn total_bytes_accessed(&self) -> u64 {
        self.ops.iter().map(OpNode::bytes_accessed).sum()
    }

    /// The operator with the largest MAC count (the compute bottleneck of Fig. 4's
    /// "bottleneck analysis" step), if the graph is non-empty.
    pub fn bottleneck(&self) -> Option<&OpNode> {
        self.ops.iter().max_by_key(|o| o.macs())
    }

    /// Builds an IR graph from a trained/untrained `ispot-nn` [`Sequential`] model given
    /// the network input shape (excluding the batch dimension).
    pub fn from_sequential(name: &str, model: &Sequential, input_shape: &[usize]) -> Self {
        let mut graph = OpGraph::new(name);
        let mut shape = input_shape.to_vec();
        for (i, layer) in model.summary(input_shape).iter().enumerate() {
            let out_shape = layer.output_shape.clone();
            let elements: usize = out_shape.iter().product();
            let node = match layer.name.as_str() {
                "conv2d" | "conv1d" => {
                    // Reconstruct an approximate conv node from the parameter count and
                    // shapes: parameters = out_ch * in_ch * kh * kw + out_ch.
                    let out_channels = *out_shape.first().unwrap_or(&1);
                    let in_channels = *shape.first().unwrap_or(&1);
                    let spatial: usize = out_shape.iter().skip(1).product::<usize>().max(1);
                    let kernel_elems = if out_channels > 0 && in_channels > 0 {
                        (layer.parameters.saturating_sub(out_channels))
                            / (out_channels * in_channels).max(1)
                    } else {
                        1
                    };
                    let k = (kernel_elems as f64).sqrt().round().max(1.0) as usize;
                    OpNode {
                        name: format!("{}_{i}", layer.name),
                        kind: OpKind::Conv2d {
                            in_channels,
                            out_channels,
                            kernel: (k, kernel_elems.max(1) / k.max(1)),
                            output: (spatial, 1),
                        },
                        parameters: layer.parameters,
                        weight_bits: 32,
                    }
                }
                "dense" => {
                    let out_features = *out_shape.first().unwrap_or(&1);
                    let in_features: usize = shape.iter().product::<usize>().max(1);
                    OpNode {
                        name: format!("dense_{i}"),
                        kind: OpKind::Dense {
                            in_features,
                            out_features,
                        },
                        parameters: layer.parameters,
                        weight_bits: 32,
                    }
                }
                "maxpool2d" | "global_avg_pool" => OpNode::pool(&format!("pool_{i}"), elements),
                "flatten" => OpNode::custom(&format!("flatten_{i}"), 0, 0),
                _ => OpNode::activation(&format!("{}_{i}", layer.name), elements),
            };
            graph.push(node);
            shape = out_shape;
        }
        graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispot_nn::activation::Activation;
    use ispot_nn::conv::Conv2d;
    use ispot_nn::dense::Dense;
    use ispot_nn::layer::Flatten;
    use ispot_nn::pooling::MaxPool2d;

    #[test]
    fn conv_macs_match_textbook_formula() {
        let op = OpNode::conv2d("c", 3, 16, (3, 3), (32, 32), 1);
        assert_eq!(op.macs(), 3 * 16 * 9 * 32 * 32);
        assert_eq!(op.parameters, 3 * 16 * 9 + 16);
    }

    #[test]
    fn dense_and_steering_costs() {
        assert_eq!(OpNode::dense("d", 128, 10).macs(), 1280);
        let srp = OpNode::srp_steering("srp", 15, 181, 850);
        assert_eq!(srp.macs(), 15 * 181 * 850);
        assert_eq!(srp.parameters, 15 * 850);
    }

    #[test]
    fn fft_cost_scales_superlinearly() {
        let small = OpNode::fft("fft1k", 1024).macs();
        let large = OpNode::fft("fft4k", 4096).macs();
        assert!(large > 4 * small);
        assert!(large < 8 * small);
    }

    #[test]
    fn graph_aggregates_and_finds_bottleneck() {
        let mut g = OpGraph::new("pipeline");
        g.push(OpNode::fft("fft", 2048));
        g.push(OpNode::srp_steering("srp", 15, 181, 850));
        g.push(OpNode::dense("head", 256, 36));
        assert_eq!(g.len(), 3);
        assert_eq!(
            g.total_macs(),
            g.ops().iter().map(OpNode::macs).sum::<u64>()
        );
        assert_eq!(g.bottleneck().unwrap().name, "srp");
        assert!(g.total_weight_bytes() > 0);
        assert!(!g.is_empty());
    }

    #[test]
    fn weight_bytes_follow_bit_width() {
        let mut op = OpNode::dense("d", 100, 10);
        let full = op.weight_bytes();
        op.weight_bits = 8;
        assert_eq!(op.weight_bytes(), full / 4);
    }

    #[test]
    fn from_sequential_captures_all_layers_and_parameters() {
        let mut model = Sequential::new();
        model.push(Conv2d::new(1, 4, (3, 3), 1, 1, 0).unwrap());
        model.push(Activation::relu());
        model.push(MaxPool2d::new((2, 2)).unwrap());
        model.push(Flatten::new());
        model.push(Dense::new(4 * 8 * 8, 10, 1).unwrap());
        let graph = OpGraph::from_sequential("cnn", &model, &[1, 16, 16]);
        assert_eq!(graph.len(), 5);
        assert_eq!(graph.total_parameters(), model.num_parameters());
        assert!(graph.total_macs() > 0);
    }

    #[test]
    fn operational_intensity_is_positive() {
        for op in [
            OpNode::conv2d("c", 1, 8, (3, 3), (16, 16), 1),
            OpNode::fft("f", 1024),
            OpNode::filterbank("fb", 257, 32),
        ] {
            assert!(op.operational_intensity() > 0.0);
        }
    }
}
