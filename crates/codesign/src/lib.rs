//! # ispot-codesign
//!
//! The hardware–algorithm co-design workflow of the I-SPOT project (Sec. IV-B and
//! Fig. 4 of the paper).
//!
//! The workflow breaks the joint hardware/algorithm design space into manageable
//! pieces:
//!
//! 1. **Operator-level IR** ([`ir`]) — every candidate pipeline (DSP front-end + neural
//!    back-end) is lowered to a graph of operators with analytic compute and memory
//!    costs, substituting for the TVM/SDFG lowering used by the authors.
//! 2. **Hardware cost models** ([`platform`]) — roofline-style latency and energy
//!    estimates for edge platforms (a Raspberry-Pi-4B-class CPU, an MCU-class core and
//!    an accelerator-class device).
//! 3. **Host profiling** ([`profiler`]) — wall-clock measurement of real Rust kernels,
//!    the counterpart of the paper's PyTorch-profiler / TVM-runtime branch.
//! 4. **Optimization passes** ([`passes`]) — pruning, quantization, feature-resolution
//!    and channel-width scaling applied to a candidate design point.
//! 5. **Design-space exploration** ([`dse`]) — the iteration loop of Fig. 4: evaluate
//!    candidates, judge the algorithm/hardware trade-off against an accuracy floor, and
//!    update the configuration.
//!
//! # Example
//!
//! ```
//! use ispot_codesign::prelude::*;
//!
//! # fn main() -> Result<(), ispot_codesign::CodesignError> {
//! // Cost of a small CNN layer on a RasPi-4B-class platform.
//! let op = OpNode::conv2d("conv1", 1, 8, (3, 3), (32, 32), 1);
//! let platform = EdgePlatform::raspberry_pi4();
//! let latency = platform.op_latency_ms(&op);
//! assert!(latency > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod dse;
pub mod error;
pub mod ir;
pub mod passes;
pub mod platform;
pub mod profiler;

pub use error::CodesignError;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::dse::{
        CandidateEvaluator, CandidateMetrics, CoDesignLoop, CoDesignReport, DesignPoint,
        DesignSpace, EvaluatedPoint,
    };
    pub use crate::error::CodesignError;
    pub use crate::ir::{OpGraph, OpKind, OpNode};
    pub use crate::passes::{Pass, PassOutcome};
    pub use crate::platform::{EdgePlatform, RooflinePoint};
    pub use crate::profiler::{HostProfiler, ProfileRecord};
}
