//! Edge-platform performance models (roofline-based).
//!
//! The paper evaluates the optimized Cross3D pipeline on a Raspberry-Pi-4B-class
//! embedded CPU (8.59 ms/frame end-to-end). Absolute silicon measurements are not
//! reproducible here, so platforms are modelled analytically: each operator's latency
//! is the roofline maximum of its compute time (MACs over sustained throughput) and its
//! memory time (bytes over bandwidth) plus a fixed per-operator overhead. The model
//! preserves the *relative* comparisons the paper reports (who is faster, by what
//! factor) across design points and platforms.

use crate::ir::{OpGraph, OpNode};
use serde::{Deserialize, Serialize};

/// An analytic model of an embedded execution platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EdgePlatform {
    /// Human-readable platform name.
    pub name: String,
    /// Sustained multiply-accumulate throughput in GMAC/s for 32-bit floats.
    pub gmacs_per_second: f64,
    /// Sustained memory bandwidth in GB/s.
    pub memory_bandwidth_gbs: f64,
    /// Fixed per-operator dispatch overhead in microseconds (kernel launch, cache
    /// warm-up, scheduling).
    pub op_overhead_us: f64,
    /// Average power draw while computing, in watts (used for energy estimates).
    pub active_power_w: f64,
    /// Idle/sleep power in watts (park-mode duty cycling).
    pub idle_power_w: f64,
    /// Throughput multiplier applied when weights are quantized to 8 bits or below
    /// (integer SIMD speedup).
    pub quantized_speedup: f64,
}

impl EdgePlatform {
    /// A Raspberry-Pi-4B-class embedded CPU (Cortex-A72 @ 1.5 GHz, NEON).
    pub fn raspberry_pi4() -> Self {
        EdgePlatform {
            name: "raspi-4b".to_string(),
            gmacs_per_second: 6.0,
            memory_bandwidth_gbs: 4.0,
            op_overhead_us: 20.0,
            active_power_w: 4.0,
            idle_power_w: 2.0,
            quantized_speedup: 2.0,
        }
    }

    /// A microcontroller-class core (Cortex-M7-class, always-on park mode target).
    pub fn microcontroller() -> Self {
        EdgePlatform {
            name: "mcu-m7".to_string(),
            gmacs_per_second: 0.2,
            memory_bandwidth_gbs: 0.3,
            op_overhead_us: 5.0,
            active_power_w: 0.3,
            idle_power_w: 0.01,
            quantized_speedup: 3.0,
        }
    }

    /// An accelerator-class device (CGRA / NPU as targeted by the second project
    /// stage).
    pub fn accelerator() -> Self {
        EdgePlatform {
            name: "cgra-accelerator".to_string(),
            gmacs_per_second: 100.0,
            memory_bandwidth_gbs: 12.0,
            op_overhead_us: 8.0,
            active_power_w: 1.5,
            idle_power_w: 0.1,
            quantized_speedup: 4.0,
        }
    }

    /// Peak attainable performance (GMAC/s) for an operator with the given operational
    /// intensity (MAC/byte) — the roofline curve.
    pub fn attainable_gmacs(&self, operational_intensity: f64) -> f64 {
        (self.memory_bandwidth_gbs * operational_intensity).min(self.gmacs_per_second)
    }

    /// The ridge point of the roofline (MAC/byte at which the platform becomes
    /// compute-bound).
    pub fn ridge_point(&self) -> f64 {
        self.gmacs_per_second / self.memory_bandwidth_gbs
    }

    /// Estimated latency of a single operator in milliseconds.
    pub fn op_latency_ms(&self, op: &OpNode) -> f64 {
        let speedup = if op.weight_bits <= 8 && op.parameters > 0 {
            self.quantized_speedup
        } else {
            1.0
        };
        let compute_s = op.macs() as f64 / (self.gmacs_per_second * 1e9 * speedup);
        let memory_s = op.bytes_accessed() as f64 / (self.memory_bandwidth_gbs * 1e9);
        (compute_s.max(memory_s) + self.op_overhead_us * 1e-6) * 1e3
    }

    /// Estimated end-to-end latency of a graph in milliseconds (sequential execution).
    pub fn graph_latency_ms(&self, graph: &OpGraph) -> f64 {
        graph.ops().iter().map(|op| self.op_latency_ms(op)).sum()
    }

    /// Estimated energy per frame in millijoules.
    pub fn graph_energy_mj(&self, graph: &OpGraph) -> f64 {
        self.graph_latency_ms(graph) * self.active_power_w
    }

    /// Roofline data points (one per operator) for plotting or reporting. For operators
    /// with quantized weights the compute roof is raised by the integer-SIMD speedup,
    /// matching the latency model.
    pub fn roofline(&self, graph: &OpGraph) -> Vec<RooflinePoint> {
        graph
            .ops()
            .iter()
            .map(|op| {
                let latency_s = self.op_latency_ms(op) * 1e-3;
                let achieved = if latency_s > 0.0 {
                    op.macs() as f64 / latency_s / 1e9
                } else {
                    0.0
                };
                let compute_roof = if op.weight_bits <= 8 && op.parameters > 0 {
                    self.gmacs_per_second * self.quantized_speedup
                } else {
                    self.gmacs_per_second
                };
                let attainable =
                    (self.memory_bandwidth_gbs * op.operational_intensity()).min(compute_roof);
                RooflinePoint {
                    op_name: op.name.clone(),
                    operational_intensity: op.operational_intensity(),
                    achieved_gmacs: achieved,
                    attainable_gmacs: attainable,
                }
            })
            .collect()
    }

    /// Average power (watts) of a duty-cycled park-mode deployment that runs the graph
    /// `wakeups_per_second` times per second and sleeps otherwise.
    pub fn duty_cycled_power_w(&self, graph: &OpGraph, wakeups_per_second: f64) -> f64 {
        let active_s_per_s = (self.graph_latency_ms(graph) * 1e-3 * wakeups_per_second).min(1.0);
        self.active_power_w * active_s_per_s + self.idle_power_w * (1.0 - active_s_per_s)
    }
}

/// One operator plotted on the roofline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RooflinePoint {
    /// Operator name.
    pub op_name: String,
    /// MAC per byte.
    pub operational_intensity: f64,
    /// Achieved GMAC/s under the latency model.
    pub achieved_gmacs: f64,
    /// Roofline bound at this intensity.
    pub attainable_gmacs: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::OpNode;

    fn small_graph() -> OpGraph {
        let mut g = OpGraph::new("test");
        g.push(OpNode::fft("fft", 2048));
        g.push(OpNode::conv2d("conv", 1, 8, (3, 3), (32, 32), 1));
        g.push(OpNode::dense("head", 512, 36));
        g
    }

    #[test]
    fn faster_platform_gives_lower_latency() {
        let g = small_graph();
        let pi = EdgePlatform::raspberry_pi4();
        let mcu = EdgePlatform::microcontroller();
        let acc = EdgePlatform::accelerator();
        let l_pi = pi.graph_latency_ms(&g);
        let l_mcu = mcu.graph_latency_ms(&g);
        let l_acc = acc.graph_latency_ms(&g);
        assert!(l_mcu > l_pi, "mcu {l_mcu} vs pi {l_pi}");
        assert!(l_pi > l_acc, "pi {l_pi} vs accelerator {l_acc}");
    }

    #[test]
    fn latency_is_monotonic_in_work() {
        let pi = EdgePlatform::raspberry_pi4();
        let small = OpNode::conv2d("s", 1, 4, (3, 3), (16, 16), 1);
        let large = OpNode::conv2d("l", 16, 64, (3, 3), (64, 64), 1);
        assert!(pi.op_latency_ms(&large) > pi.op_latency_ms(&small));
    }

    #[test]
    fn quantized_weights_speed_up_heavy_layers() {
        let pi = EdgePlatform::raspberry_pi4();
        let mut op = OpNode::conv2d("c", 16, 64, (3, 3), (64, 64), 1);
        let full = pi.op_latency_ms(&op);
        op.weight_bits = 8;
        let quant = pi.op_latency_ms(&op);
        assert!(quant < full * 0.75, "quantized {quant} vs full {full}");
    }

    #[test]
    fn roofline_points_respect_the_bound() {
        let g = small_graph();
        let pi = EdgePlatform::raspberry_pi4();
        for p in pi.roofline(&g) {
            assert!(
                p.achieved_gmacs <= p.attainable_gmacs * 1.01 + 1e-9,
                "{}: achieved {} above bound {}",
                p.op_name,
                p.achieved_gmacs,
                p.attainable_gmacs
            );
            assert!(p.attainable_gmacs <= pi.gmacs_per_second + 1e-9);
        }
        assert!(pi.ridge_point() > 0.0);
    }

    #[test]
    fn energy_and_duty_cycling() {
        let g = small_graph();
        let pi = EdgePlatform::raspberry_pi4();
        assert!(pi.graph_energy_mj(&g) > 0.0);
        let always_on = pi.duty_cycled_power_w(&g, 100.0);
        let rare = pi.duty_cycled_power_w(&g, 0.1);
        assert!(rare < always_on);
        assert!(rare >= pi.idle_power_w);
        assert!(always_on <= pi.active_power_w + 1e-9);
    }
}
