//! Host wall-clock profiling of real kernels.
//!
//! The co-design workflow of Fig. 4 combines analytic cost models with measured runtime
//! performance (the authors use the PyTorch profiler and the TVM runtime). This module
//! provides the measured branch: it times closures on the host machine, with warm-up
//! and repetition, and produces per-stage records that can be compared against the
//! platform-model estimates.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One profiled stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileRecord {
    /// Stage name.
    pub name: String,
    /// Number of measured repetitions.
    pub repetitions: usize,
    /// Mean latency in milliseconds.
    pub mean_ms: f64,
    /// Minimum latency in milliseconds.
    pub min_ms: f64,
    /// Maximum latency in milliseconds.
    pub max_ms: f64,
}

/// A simple wall-clock profiler collecting named records.
///
/// # Example
///
/// ```
/// use ispot_codesign::profiler::HostProfiler;
///
/// let profiler = HostProfiler::new(1, 3);
/// let record = profiler.measure("sum", || {
///     (0..1000u64).sum::<u64>()
/// });
/// assert_eq!(record.name, "sum");
/// assert!(record.mean_ms >= 0.0);
/// assert_eq!(profiler.records().len(), 1);
/// ```
#[derive(Debug)]
pub struct HostProfiler {
    warmup: usize,
    repetitions: usize,
    records: Mutex<Vec<ProfileRecord>>,
}

impl HostProfiler {
    /// Creates a profiler running `warmup` unmeasured and `repetitions` measured
    /// iterations per stage (repetitions is clamped to at least 1).
    pub fn new(warmup: usize, repetitions: usize) -> Self {
        HostProfiler {
            warmup,
            repetitions: repetitions.max(1),
            records: Mutex::new(Vec::new()),
        }
    }

    /// Measures a closure, records and returns its timing statistics. The closure's
    /// return value is discarded but its computation is kept via `std::hint::black_box`.
    pub fn measure<T>(&self, name: &str, mut f: impl FnMut() -> T) -> ProfileRecord {
        for _ in 0..self.warmup {
            std::hint::black_box(f());
        }
        let mut times_ms = Vec::with_capacity(self.repetitions);
        for _ in 0..self.repetitions {
            let start = Instant::now();
            std::hint::black_box(f());
            times_ms.push(start.elapsed().as_secs_f64() * 1e3);
        }
        let mean = times_ms.iter().sum::<f64>() / times_ms.len() as f64;
        let min = times_ms.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = times_ms.iter().cloned().fold(0.0f64, f64::max);
        let record = ProfileRecord {
            name: name.to_string(),
            repetitions: self.repetitions,
            mean_ms: mean,
            min_ms: min,
            max_ms: max,
        };
        self.records.lock().push(record.clone());
        record
    }

    /// All records collected so far.
    pub fn records(&self) -> Vec<ProfileRecord> {
        self.records.lock().clone()
    }

    /// Sum of the mean latencies of all recorded stages, in milliseconds.
    pub fn total_mean_ms(&self) -> f64 {
        self.records.lock().iter().map(|r| r.mean_ms).sum()
    }

    /// Clears the collected records.
    pub fn clear(&self) {
        self.records.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_accumulates_records() {
        let profiler = HostProfiler::new(1, 5);
        let a = profiler.measure("fast", || 1 + 1);
        let b = profiler.measure("slow", || {
            let mut acc = 0u64;
            for i in 0..200_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(a.min_ms <= a.mean_ms && a.mean_ms <= a.max_ms + 1e-12);
        assert!(b.mean_ms >= a.mean_ms);
        assert_eq!(profiler.records().len(), 2);
        assert!(profiler.total_mean_ms() >= b.mean_ms);
        profiler.clear();
        assert!(profiler.records().is_empty());
    }

    #[test]
    fn repetitions_are_clamped_to_at_least_one() {
        let profiler = HostProfiler::new(0, 0);
        let r = profiler.measure("noop", || ());
        assert_eq!(r.repetitions, 1);
    }
}
