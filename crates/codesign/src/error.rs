//! Error type for the co-design workflow.

use std::error::Error;
use std::fmt;

/// Errors produced by the co-design workflow.
#[derive(Debug, Clone, PartialEq)]
pub enum CodesignError {
    /// A configuration parameter is invalid.
    InvalidConfig {
        /// Name of the offending parameter.
        name: &'static str,
        /// Description of the violated constraint.
        reason: String,
    },
    /// The design space contains no candidates satisfying the constraints.
    NoFeasibleCandidate {
        /// The accuracy floor that could not be met.
        accuracy_floor: f64,
    },
    /// A candidate evaluation failed.
    EvaluationFailed {
        /// Description of the failure.
        reason: String,
    },
}

impl fmt::Display for CodesignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodesignError::InvalidConfig { name, reason } => {
                write!(f, "invalid configuration `{name}`: {reason}")
            }
            CodesignError::NoFeasibleCandidate { accuracy_floor } => write!(
                f,
                "no design point satisfies the accuracy floor of {accuracy_floor}"
            ),
            CodesignError::EvaluationFailed { reason } => {
                write!(f, "candidate evaluation failed: {reason}")
            }
        }
    }
}

impl Error for CodesignError {}

impl CodesignError {
    /// Convenience constructor for [`CodesignError::InvalidConfig`].
    pub fn invalid_config(name: &'static str, reason: impl Into<String>) -> Self {
        CodesignError::InvalidConfig {
            name,
            reason: reason.into(),
        }
    }

    /// Convenience constructor for [`CodesignError::EvaluationFailed`].
    pub fn evaluation_failed(reason: impl Into<String>) -> Self {
        CodesignError::EvaluationFailed {
            reason: reason.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(CodesignError::invalid_config("bits", "too small")
            .to_string()
            .contains("bits"));
        assert!(CodesignError::NoFeasibleCandidate {
            accuracy_floor: 0.9
        }
        .to_string()
        .contains("0.9"));
        assert!(CodesignError::evaluation_failed("boom")
            .to_string()
            .contains("boom"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CodesignError>();
    }
}
