//! Signal framing: split a signal into (optionally overlapping) analysis frames.
//!
//! Raw-waveform networks (Sec. III of the paper, e.g. Furletov et al.) take windowed
//! chunks of the time-domain signal directly; this module provides that framing.

use crate::error::FeatureError;

/// Splits `signal` into frames of `frame_len` samples advancing by `hop` samples.
///
/// Frames that would run past the end of the signal are dropped.
///
/// # Errors
///
/// Returns [`FeatureError::InvalidConfig`] if `frame_len` or `hop` is zero.
///
/// # Example
///
/// ```
/// use ispot_features::framing::frame_signal;
///
/// # fn main() -> Result<(), ispot_features::FeatureError> {
/// let frames = frame_signal(&[1.0, 2.0, 3.0, 4.0, 5.0], 3, 2)?;
/// assert_eq!(frames, vec![vec![1.0, 2.0, 3.0], vec![3.0, 4.0, 5.0]]);
/// # Ok(())
/// # }
/// ```
pub fn frame_signal(
    signal: &[f64],
    frame_len: usize,
    hop: usize,
) -> Result<Vec<Vec<f64>>, FeatureError> {
    if frame_len == 0 {
        return Err(FeatureError::invalid_config(
            "frame_len",
            "must be positive",
        ));
    }
    if hop == 0 {
        return Err(FeatureError::invalid_config("hop", "must be positive"));
    }
    if signal.len() < frame_len {
        return Ok(Vec::new());
    }
    let n_frames = (signal.len() - frame_len) / hop + 1;
    Ok((0..n_frames)
        .map(|f| signal[f * hop..f * hop + frame_len].to_vec())
        .collect())
}

/// Number of frames [`frame_signal`] would produce for a signal of `len` samples.
pub fn num_frames(len: usize, frame_len: usize, hop: usize) -> usize {
    if frame_len == 0 || hop == 0 || len < frame_len {
        0
    } else {
        (len - frame_len) / hop + 1
    }
}

/// Splits `signal` into non-overlapping fixed-length clips, zero-padding the last one
/// if `pad_last` is true (otherwise the remainder is dropped).
pub fn clip_signal(signal: &[f64], clip_len: usize, pad_last: bool) -> Vec<Vec<f64>> {
    if clip_len == 0 {
        return Vec::new();
    }
    let mut clips: Vec<Vec<f64>> = signal.chunks_exact(clip_len).map(|c| c.to_vec()).collect();
    let rem = signal.len() % clip_len;
    if pad_last && rem > 0 {
        let mut last = signal[signal.len() - rem..].to_vec();
        last.resize(clip_len, 0.0);
        clips.push(last);
    }
    clips
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn framing_counts_and_contents() {
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let frames = frame_signal(&x, 4, 3).unwrap();
        assert_eq!(frames.len(), 3);
        assert_eq!(frames[2], vec![6.0, 7.0, 8.0, 9.0]);
        assert_eq!(num_frames(10, 4, 3), 3);
    }

    #[test]
    fn short_signal_gives_no_frames() {
        assert!(frame_signal(&[1.0, 2.0], 4, 2).unwrap().is_empty());
        assert_eq!(num_frames(2, 4, 2), 0);
    }

    #[test]
    fn zero_parameters_rejected() {
        assert!(frame_signal(&[1.0], 0, 1).is_err());
        assert!(frame_signal(&[1.0], 1, 0).is_err());
        assert_eq!(num_frames(10, 0, 1), 0);
    }

    #[test]
    fn clipping_with_and_without_padding() {
        let x: Vec<f64> = (0..7).map(|i| i as f64).collect();
        let no_pad = clip_signal(&x, 3, false);
        assert_eq!(no_pad.len(), 2);
        let padded = clip_signal(&x, 3, true);
        assert_eq!(padded.len(), 3);
        assert_eq!(padded[2], vec![6.0, 0.0, 0.0]);
        assert!(clip_signal(&x, 0, true).is_empty());
    }
}
