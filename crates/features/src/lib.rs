//! # ispot-features
//!
//! Acoustic feature extraction for automotive sound analysis.
//!
//! The state-of-the-art emergency-sound detectors surveyed in Sec. III of the I-SPOT
//! paper use time–frequency representations as network inputs: spectrograms,
//! gammatonegrams, MFCCs, GFCCs, constant-Q transforms and chromagrams, alongside the
//! raw waveform. This crate implements all of them on top of the `ispot-dsp` STFT, plus
//! the GCC-PHAT cross-correlation used by the localization front-end.
//!
//! # Example
//!
//! ```
//! use ispot_features::prelude::*;
//!
//! # fn main() -> Result<(), ispot_features::FeatureError> {
//! let fs = 16_000.0;
//! let signal: Vec<f64> = ispot_dsp::generator::Sine::new(1000.0, fs).take(8000).collect();
//! let mfcc = MfccExtractor::new(MfccConfig::default(), fs)?;
//! let features = mfcc.compute(&signal)?;
//! assert_eq!(features.num_cols(), 13);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod chroma;
pub mod cqt;
pub mod delta;
pub mod error;
pub mod framing;
pub mod gammatone;
pub mod gcc;
pub mod matrix;
pub mod mel;
pub mod mfcc;
pub mod spectrogram;

pub use error::FeatureError;
pub use matrix::FeatureMatrix;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::chroma::ChromaExtractor;
    pub use crate::cqt::{CqtConfig, CqtExtractor};
    pub use crate::delta::append_deltas;
    pub use crate::error::FeatureError;
    pub use crate::framing::frame_signal;
    pub use crate::gammatone::{GammatoneConfig, GammatoneExtractor};
    pub use crate::gcc::{gcc_phat, GccPhat};
    pub use crate::matrix::FeatureMatrix;
    pub use crate::mel::MelFilterbank;
    pub use crate::mfcc::{MfccConfig, MfccExtractor};
    pub use crate::spectrogram::{SpectrogramConfig, SpectrogramExtractor, SpectrogramScale};
}
