//! Mel-frequency cepstral coefficients (MFCC).

use crate::error::FeatureError;
use crate::matrix::FeatureMatrix;
use crate::mel::MelFilterbank;
use crate::spectrogram::{SpectrogramConfig, SpectrogramExtractor, SpectrogramScale};
use serde::{Deserialize, Serialize};
use std::f64::consts::PI;

/// Configuration for [`MfccExtractor`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MfccConfig {
    /// STFT frame length in samples.
    pub frame_len: usize,
    /// STFT hop in samples.
    pub hop: usize,
    /// Number of mel filterbank bands.
    pub num_mels: usize,
    /// Number of cepstral coefficients kept (including the 0-th).
    pub num_coefficients: usize,
    /// Lower edge of the mel filterbank in Hz.
    pub f_min: f64,
    /// Upper edge of the mel filterbank in Hz (clamped to Nyquist).
    pub f_max: f64,
}

impl Default for MfccConfig {
    fn default() -> Self {
        MfccConfig {
            frame_len: 512,
            hop: 256,
            num_mels: 26,
            num_coefficients: 13,
            f_min: 20.0,
            f_max: 8000.0,
        }
    }
}

/// Computes MFCC feature matrices (frames × coefficients).
///
/// # Example
///
/// ```
/// use ispot_features::mfcc::{MfccConfig, MfccExtractor};
///
/// # fn main() -> Result<(), ispot_features::FeatureError> {
/// let fs = 16_000.0;
/// let ex = MfccExtractor::new(MfccConfig::default(), fs)?;
/// let x: Vec<f64> = ispot_dsp::generator::Sine::new(800.0, fs).take(4096).collect();
/// let mfcc = ex.compute(&x)?;
/// assert_eq!(mfcc.num_cols(), 13);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MfccExtractor {
    config: MfccConfig,
    spectrogram: SpectrogramExtractor,
    filterbank: MelFilterbank,
    /// DCT-II basis, `num_coefficients x num_mels`.
    dct: Vec<Vec<f64>>,
}

impl MfccExtractor {
    /// Creates an MFCC extractor for sampling rate `fs`.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is inconsistent (zero sizes, more
    /// coefficients than mel bands, invalid band edges).
    pub fn new(config: MfccConfig, fs: f64) -> Result<Self, FeatureError> {
        if config.num_coefficients == 0 || config.num_coefficients > config.num_mels {
            return Err(FeatureError::invalid_config(
                "num_coefficients",
                format!(
                    "must be in [1, num_mels = {}], got {}",
                    config.num_mels, config.num_coefficients
                ),
            ));
        }
        let spec_cfg = SpectrogramConfig {
            frame_len: config.frame_len,
            hop: config.hop,
            fft_size: config.frame_len,
            scale: SpectrogramScale::Power,
            ..SpectrogramConfig::default()
        };
        let spectrogram = SpectrogramExtractor::new(spec_cfg)?;
        let f_max = config.f_max.min(fs / 2.0);
        let filterbank = MelFilterbank::new(
            config.num_mels,
            spectrogram.num_bins(),
            fs,
            config.f_min,
            f_max,
        )?;
        let m = config.num_mels;
        let dct = (0..config.num_coefficients)
            .map(|k| {
                (0..m)
                    .map(|n| (PI * k as f64 * (n as f64 + 0.5) / m as f64).cos())
                    .collect()
            })
            .collect();
        Ok(MfccExtractor {
            config,
            spectrogram,
            filterbank,
            dct,
        })
    }

    /// Returns the configuration.
    pub fn config(&self) -> MfccConfig {
        self.config
    }

    /// Computes the MFCC matrix (frames × coefficients) of `signal`.
    ///
    /// # Errors
    ///
    /// Returns [`FeatureError::SignalTooShort`] if the signal is shorter than one frame.
    pub fn compute(&self, signal: &[f64]) -> Result<FeatureMatrix, FeatureError> {
        let power = self.spectrogram.compute(signal)?;
        let mut mel = self.filterbank.apply_spectrogram(&power)?;
        mel.log_compress(1e-10);
        let rows: Vec<Vec<f64>> = mel
            .iter_rows()
            .map(|row| {
                self.dct
                    .iter()
                    .map(|basis| basis.iter().zip(row).map(|(b, x)| b * x).sum())
                    .collect()
            })
            .collect();
        Ok(FeatureMatrix::from_rows(rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispot_dsp::generator::{NoiseKind, NoiseSource, Sine};

    #[test]
    fn output_shape_matches_configuration() {
        let fs = 16_000.0;
        let ex = MfccExtractor::new(MfccConfig::default(), fs).unwrap();
        let x: Vec<f64> = Sine::new(700.0, fs).take(16_384).collect();
        let m = ex.compute(&x).unwrap();
        assert_eq!(m.num_cols(), 13);
        assert_eq!(m.num_rows(), (16_384 - 512) / 256 + 1);
    }

    #[test]
    fn different_sounds_produce_different_cepstra() {
        let fs = 16_000.0;
        let ex = MfccExtractor::new(MfccConfig::default(), fs).unwrap();
        let tone: Vec<f64> = Sine::new(400.0, fs).take(8192).collect();
        let noise: Vec<f64> = NoiseSource::new(NoiseKind::White, 3).take(8192).collect();
        let a = ex.compute(&tone).unwrap().column_means();
        let b = ex.compute(&noise).unwrap().column_means();
        let distance: f64 = a
            .iter()
            .zip(&b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt();
        assert!(distance > 1.0, "cepstral distance {distance}");
    }

    #[test]
    fn stationary_tone_gives_stable_frames() {
        let fs = 16_000.0;
        let ex = MfccExtractor::new(MfccConfig::default(), fs).unwrap();
        let tone: Vec<f64> = Sine::new(1000.0, fs).take(8192).collect();
        let m = ex.compute(&tone).unwrap();
        let stds = m.column_stds();
        let means = m.column_means();
        // Coefficients vary much less than their mean magnitude for a stationary tone.
        for c in 0..m.num_cols() {
            assert!(stds[c] <= means[c].abs().max(1.0));
        }
    }

    #[test]
    fn invalid_configuration_rejected() {
        let fs = 16_000.0;
        let bad = MfccConfig {
            num_coefficients: 40,
            num_mels: 26,
            ..MfccConfig::default()
        };
        assert!(MfccExtractor::new(bad, fs).is_err());
        let bad = MfccConfig {
            num_coefficients: 0,
            ..MfccConfig::default()
        };
        assert!(MfccExtractor::new(bad, fs).is_err());
    }

    #[test]
    fn zeroth_coefficient_tracks_overall_energy() {
        let fs = 16_000.0;
        let ex = MfccExtractor::new(MfccConfig::default(), fs).unwrap();
        let loud: Vec<f64> = Sine::new(500.0, fs).take(4096).collect();
        let quiet: Vec<f64> = loud.iter().map(|x| x * 0.01).collect();
        let c0_loud = ex.compute(&loud).unwrap().column_means()[0];
        let c0_quiet = ex.compute(&quiet).unwrap().column_means()[0];
        assert!(c0_loud > c0_quiet);
    }
}
