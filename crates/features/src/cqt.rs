//! Constant-Q transform (CQT).
//!
//! The CQT uses logarithmically spaced frequency bins with a constant
//! frequency-to-bandwidth ratio Q, giving siren sweeps a straight-line signature across
//! octaves. The implementation is the direct (naive) per-frame kernel evaluation, which
//! is adequate for the frame sizes used in the I-SPOT experiments.

use crate::error::FeatureError;
use crate::framing::frame_signal;
use crate::matrix::FeatureMatrix;
use ispot_dsp::window::{Window, WindowKind};
use serde::{Deserialize, Serialize};
use std::f64::consts::PI;

/// Configuration of the [`CqtExtractor`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CqtConfig {
    /// Analysis frame length in samples.
    pub frame_len: usize,
    /// Hop between frames in samples.
    pub hop: usize,
    /// Lowest analysed frequency in Hz.
    pub f_min: f64,
    /// Number of bins per octave.
    pub bins_per_octave: usize,
    /// Total number of CQT bins.
    pub num_bins: usize,
}

impl Default for CqtConfig {
    fn default() -> Self {
        CqtConfig {
            frame_len: 2048,
            hop: 1024,
            f_min: 100.0,
            bins_per_octave: 12,
            num_bins: 72,
        }
    }
}

/// Computes constant-Q magnitude features (frames × bins).
///
/// # Example
///
/// ```
/// use ispot_features::cqt::{CqtConfig, CqtExtractor};
///
/// # fn main() -> Result<(), ispot_features::FeatureError> {
/// let fs = 16_000.0;
/// let ex = CqtExtractor::new(CqtConfig::default(), fs)?;
/// let x: Vec<f64> = ispot_dsp::generator::Sine::new(400.0, fs).take(8192).collect();
/// let cqt = ex.compute(&x)?;
/// assert_eq!(cqt.num_cols(), 72);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CqtExtractor {
    config: CqtConfig,
    /// Per-bin complex kernels (cos and -sin parts), each of `frame_len` samples.
    kernels: Vec<(Vec<f64>, Vec<f64>)>,
    center_frequencies: Vec<f64>,
}

impl CqtExtractor {
    /// Creates a CQT extractor for sampling rate `fs`.
    ///
    /// # Errors
    ///
    /// Returns an error if any size is zero or the highest bin exceeds Nyquist.
    pub fn new(config: CqtConfig, fs: f64) -> Result<Self, FeatureError> {
        if config.frame_len == 0 || config.hop == 0 {
            return Err(FeatureError::invalid_config(
                "frame_len/hop",
                "must be positive",
            ));
        }
        if config.num_bins == 0 || config.bins_per_octave == 0 {
            return Err(FeatureError::invalid_config(
                "num_bins/bins_per_octave",
                "must be positive",
            ));
        }
        if config.f_min <= 0.0 {
            return Err(FeatureError::invalid_config("f_min", "must be positive"));
        }
        let center_frequencies: Vec<f64> = (0..config.num_bins)
            .map(|k| config.f_min * 2f64.powf(k as f64 / config.bins_per_octave as f64))
            .collect();
        let f_max = *center_frequencies.last().expect("num_bins > 0");
        if f_max > fs / 2.0 {
            return Err(FeatureError::invalid_config(
                "num_bins",
                format!("highest bin {f_max:.1} Hz exceeds Nyquist {}", fs / 2.0),
            ));
        }
        let window = Window::new(WindowKind::Hann, config.frame_len);
        let kernels = center_frequencies
            .iter()
            .map(|&fc| {
                let cos: Vec<f64> = (0..config.frame_len)
                    .map(|n| {
                        (2.0 * PI * fc * n as f64 / fs).cos() * window.coefficients()[n]
                            / config.frame_len as f64
                    })
                    .collect();
                let sin: Vec<f64> = (0..config.frame_len)
                    .map(|n| {
                        -(2.0 * PI * fc * n as f64 / fs).sin() * window.coefficients()[n]
                            / config.frame_len as f64
                    })
                    .collect();
                (cos, sin)
            })
            .collect();
        Ok(CqtExtractor {
            config,
            kernels,
            center_frequencies,
        })
    }

    /// Returns the configuration.
    pub fn config(&self) -> CqtConfig {
        self.config
    }

    /// Returns the logarithmically spaced centre frequencies.
    pub fn center_frequencies(&self) -> &[f64] {
        &self.center_frequencies
    }

    /// Computes the CQT magnitude matrix (frames × bins).
    ///
    /// # Errors
    ///
    /// Returns [`FeatureError::SignalTooShort`] if the signal is shorter than one frame.
    pub fn compute(&self, signal: &[f64]) -> Result<FeatureMatrix, FeatureError> {
        if signal.len() < self.config.frame_len {
            return Err(FeatureError::SignalTooShort {
                required: self.config.frame_len,
                actual: signal.len(),
            });
        }
        let frames = frame_signal(signal, self.config.frame_len, self.config.hop)?;
        let rows: Vec<Vec<f64>> = frames
            .iter()
            .map(|frame| {
                self.kernels
                    .iter()
                    .map(|(cos, sin)| {
                        let re: f64 = cos.iter().zip(frame).map(|(k, x)| k * x).sum();
                        let im: f64 = sin.iter().zip(frame).map(|(k, x)| k * x).sum();
                        (re * re + im * im).sqrt()
                    })
                    .collect()
            })
            .collect();
        Ok(FeatureMatrix::from_rows(rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispot_dsp::generator::Sine;

    #[test]
    fn bins_are_log_spaced() {
        let ex = CqtExtractor::new(CqtConfig::default(), 16_000.0).unwrap();
        let fcs = ex.center_frequencies();
        // Ratio between consecutive bins is constant (2^(1/12)).
        let ratio = fcs[1] / fcs[0];
        for w in fcs.windows(2) {
            assert!((w[1] / w[0] - ratio).abs() < 1e-9);
        }
        assert!((fcs[12] / fcs[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn tone_peaks_in_nearest_bin() {
        let fs = 16_000.0;
        let f0 = 440.0;
        let ex = CqtExtractor::new(CqtConfig::default(), fs).unwrap();
        let x: Vec<f64> = Sine::new(f0, fs).take(8192).collect();
        let cqt = ex.compute(&x).unwrap();
        let means = cqt.column_means();
        let peak = means
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        let fc = ex.center_frequencies()[peak];
        assert!((fc / f0).log2().abs() < 0.1, "peak bin at {fc} Hz");
    }

    #[test]
    fn octave_shift_moves_peak_by_bins_per_octave() {
        let fs = 16_000.0;
        let ex = CqtExtractor::new(CqtConfig::default(), fs).unwrap();
        let peak_bin = |f0: f64| {
            let x: Vec<f64> = Sine::new(f0, fs).take(8192).collect();
            let cqt = ex.compute(&x).unwrap();
            cqt.column_means()
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0 as i64
        };
        let low = peak_bin(400.0);
        let high = peak_bin(800.0);
        assert!((high - low - 12).abs() <= 1, "low {low}, high {high}");
    }

    #[test]
    fn invalid_configurations_rejected() {
        let fs = 16_000.0;
        assert!(CqtExtractor::new(
            CqtConfig {
                num_bins: 0,
                ..CqtConfig::default()
            },
            fs
        )
        .is_err());
        assert!(CqtExtractor::new(
            CqtConfig {
                f_min: 0.0,
                ..CqtConfig::default()
            },
            fs
        )
        .is_err());
        // 100 Hz * 2^(120/12) = 102 kHz > Nyquist.
        assert!(CqtExtractor::new(
            CqtConfig {
                num_bins: 121,
                ..CqtConfig::default()
            },
            fs
        )
        .is_err());
    }

    #[test]
    fn short_signal_rejected() {
        let ex = CqtExtractor::new(CqtConfig::default(), 16_000.0).unwrap();
        assert!(matches!(
            ex.compute(&[0.0; 10]),
            Err(FeatureError::SignalTooShort { .. })
        ));
    }
}
