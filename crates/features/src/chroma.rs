//! Chromagram (12-bin pitch-class profile) extraction.
//!
//! Chromagrams are one of the less common but evaluated feature sets for emergency
//! sound detection (Sharma et al., cited in Sec. III of the paper): siren tones map to
//! stable pitch classes whereas broadband traffic noise spreads evenly.

use crate::error::FeatureError;
use crate::matrix::FeatureMatrix;
use crate::spectrogram::{SpectrogramConfig, SpectrogramExtractor, SpectrogramScale};
use serde::{Deserialize, Serialize};

/// Computes 12-dimensional chroma vectors per frame.
#[derive(Debug, Clone)]
pub struct ChromaExtractor {
    spectrogram: SpectrogramExtractor,
    /// Pitch class (0–11) of every FFT bin, `None` for bins outside the mapped range.
    bin_classes: Vec<Option<usize>>,
    tuning_hz: f64,
}

/// Configuration of the chroma extractor is deliberately small: frame/hop plus the
/// reference tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChromaConfig {
    /// STFT frame length in samples.
    pub frame_len: usize,
    /// STFT hop in samples.
    pub hop: usize,
    /// Reference tuning frequency for A4 in Hz.
    pub tuning_hz: f64,
    /// Lowest frequency mapped to a pitch class, Hz.
    pub f_min: f64,
    /// Highest frequency mapped to a pitch class, Hz.
    pub f_max: f64,
}

impl Default for ChromaConfig {
    fn default() -> Self {
        ChromaConfig {
            frame_len: 1024,
            hop: 512,
            tuning_hz: 440.0,
            f_min: 60.0,
            f_max: 5000.0,
        }
    }
}

impl ChromaExtractor {
    /// Creates a chroma extractor for sampling rate `fs` with the default configuration.
    ///
    /// # Errors
    ///
    /// Returns an error if the underlying spectrogram configuration is invalid.
    pub fn new(fs: f64) -> Result<Self, FeatureError> {
        Self::with_config(ChromaConfig::default(), fs)
    }

    /// Creates a chroma extractor with an explicit configuration.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid.
    pub fn with_config(config: ChromaConfig, fs: f64) -> Result<Self, FeatureError> {
        if config.tuning_hz <= 0.0 {
            return Err(FeatureError::invalid_config(
                "tuning_hz",
                "must be positive",
            ));
        }
        if !(config.f_min > 0.0 && config.f_min < config.f_max) {
            return Err(FeatureError::invalid_config(
                "f_min/f_max",
                "must satisfy 0 < f_min < f_max",
            ));
        }
        let spec_cfg = SpectrogramConfig {
            frame_len: config.frame_len,
            hop: config.hop,
            fft_size: config.frame_len,
            scale: SpectrogramScale::Power,
            ..SpectrogramConfig::default()
        };
        let spectrogram = SpectrogramExtractor::new(spec_cfg)?;
        let num_bins = spectrogram.num_bins();
        let f_max = config.f_max.min(fs / 2.0);
        let bin_classes = (0..num_bins)
            .map(|k| {
                let f = k as f64 * fs / (2.0 * (num_bins as f64 - 1.0));
                if f < config.f_min || f > f_max {
                    None
                } else {
                    // MIDI-style pitch number relative to A4 = 69.
                    let midi = 69.0 + 12.0 * (f / config.tuning_hz).log2();
                    Some((midi.round() as i64).rem_euclid(12) as usize)
                }
            })
            .collect();
        Ok(ChromaExtractor {
            spectrogram,
            bin_classes,
            tuning_hz: config.tuning_hz,
        })
    }

    /// Returns the reference tuning frequency.
    pub fn tuning_hz(&self) -> f64 {
        self.tuning_hz
    }

    /// Computes the chromagram (frames × 12), each row normalized to unit sum when
    /// non-silent.
    ///
    /// # Errors
    ///
    /// Returns [`FeatureError::SignalTooShort`] if the signal is shorter than one frame.
    pub fn compute(&self, signal: &[f64]) -> Result<FeatureMatrix, FeatureError> {
        let power = self.spectrogram.compute(signal)?;
        let rows: Vec<Vec<f64>> = power
            .iter_rows()
            .map(|spectrum| {
                let mut chroma = vec![0.0; 12];
                for (k, &p) in spectrum.iter().enumerate() {
                    if let Some(class) = self.bin_classes[k] {
                        chroma[class] += p;
                    }
                }
                let sum: f64 = chroma.iter().sum();
                if sum > 1e-12 {
                    for v in &mut chroma {
                        *v /= sum;
                    }
                }
                chroma
            })
            .collect();
        Ok(FeatureMatrix::from_rows(rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispot_dsp::generator::{NoiseKind, NoiseSource, Sine};

    #[test]
    fn a440_concentrates_in_pitch_class_9() {
        let fs = 16_000.0;
        let ex = ChromaExtractor::new(fs).unwrap();
        let x: Vec<f64> = Sine::new(440.0, fs).take(8192).collect();
        let chroma = ex.compute(&x).unwrap();
        let means = chroma.column_means();
        let peak = means
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        // A is pitch class 9 (C = 0).
        assert_eq!(peak, 9);
    }

    #[test]
    fn rows_are_normalized() {
        let fs = 16_000.0;
        let ex = ChromaExtractor::new(fs).unwrap();
        let x: Vec<f64> = Sine::new(523.25, fs).take(4096).collect();
        let chroma = ex.compute(&x).unwrap();
        for row in chroma.iter_rows() {
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn noise_is_flatter_than_a_tone() {
        let fs = 16_000.0;
        let ex = ChromaExtractor::new(fs).unwrap();
        let tone: Vec<f64> = Sine::new(440.0, fs).take(8192).collect();
        let noise: Vec<f64> = NoiseSource::new(NoiseKind::White, 5).take(8192).collect();
        let flatness = |m: &FeatureMatrix| {
            let means = m.column_means();
            let max = means.iter().cloned().fold(0.0f64, f64::max);
            let mean = means.iter().sum::<f64>() / 12.0;
            max / mean
        };
        let tone_chroma = ex.compute(&tone).unwrap();
        let noise_chroma = ex.compute(&noise).unwrap();
        assert!(flatness(&tone_chroma) > 2.0 * flatness(&noise_chroma));
    }

    #[test]
    fn invalid_configuration_rejected() {
        let bad = ChromaConfig {
            tuning_hz: 0.0,
            ..ChromaConfig::default()
        };
        assert!(ChromaExtractor::with_config(bad, 16_000.0).is_err());
        let bad = ChromaConfig {
            f_min: 5000.0,
            f_max: 100.0,
            ..ChromaConfig::default()
        };
        assert!(ChromaExtractor::with_config(bad, 16_000.0).is_err());
    }
}
