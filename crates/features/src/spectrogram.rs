//! Power / magnitude / log spectrogram extraction.

use crate::error::FeatureError;
use crate::matrix::FeatureMatrix;
use ispot_dsp::stft::{Stft, StftBuilder, StftScratch};
use ispot_dsp::window::WindowKind;
use serde::{Deserialize, Serialize};

/// Amplitude scaling of the spectrogram values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum SpectrogramScale {
    /// Squared magnitude.
    #[default]
    Power,
    /// Magnitude.
    Magnitude,
    /// Natural log of the power (with a small floor).
    LogPower,
    /// Decibels relative to the maximum bin (`10*log10`, floored at −100 dB).
    Decibel,
}

/// Configuration of the [`SpectrogramExtractor`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpectrogramConfig {
    /// Analysis frame length in samples.
    pub frame_len: usize,
    /// Hop between frames in samples.
    pub hop: usize,
    /// FFT size (zero-padded if larger than the frame).
    pub fft_size: usize,
    /// Analysis window.
    pub window: WindowKind,
    /// Output amplitude scaling.
    pub scale: SpectrogramScale,
}

impl Default for SpectrogramConfig {
    fn default() -> Self {
        SpectrogramConfig {
            frame_len: 512,
            hop: 256,
            fft_size: 512,
            window: WindowKind::Hann,
            scale: SpectrogramScale::Power,
        }
    }
}

/// Computes time–frequency spectrograms from mono signals.
///
/// # Example
///
/// ```
/// use ispot_features::spectrogram::{SpectrogramConfig, SpectrogramExtractor};
///
/// # fn main() -> Result<(), ispot_features::FeatureError> {
/// let extractor = SpectrogramExtractor::new(SpectrogramConfig::default())?;
/// let signal: Vec<f64> = ispot_dsp::generator::Sine::new(440.0, 16_000.0).take(4096).collect();
/// let spec = extractor.compute(&signal)?;
/// assert_eq!(spec.num_cols(), 257);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SpectrogramExtractor {
    config: SpectrogramConfig,
    stft: Stft,
}

impl SpectrogramExtractor {
    /// Creates an extractor from its configuration.
    ///
    /// # Errors
    ///
    /// Returns an error if the STFT configuration is invalid.
    pub fn new(config: SpectrogramConfig) -> Result<Self, FeatureError> {
        let stft = StftBuilder::new(config.frame_len)
            .hop(config.hop)
            .fft_size(config.fft_size)
            .window(config.window)
            .build()?;
        Ok(SpectrogramExtractor { config, stft })
    }

    /// Returns the configuration.
    pub fn config(&self) -> SpectrogramConfig {
        self.config
    }

    /// Returns the number of frequency bins per frame.
    pub fn num_bins(&self) -> usize {
        self.stft.num_bins()
    }

    /// Returns the number of frames produced for a signal of `len` samples.
    pub fn frames_for(&self, len: usize) -> usize {
        self.stft.frames_for(len)
    }

    /// Computes the power spectrogram (frames × bins) of `signal` with the configured
    /// scaling.
    ///
    /// # Errors
    ///
    /// Returns [`FeatureError::SignalTooShort`] if the signal is shorter than one
    /// analysis frame.
    pub fn compute(&self, signal: &[f64]) -> Result<FeatureMatrix, FeatureError> {
        if signal.len() < self.config.frame_len {
            return Err(FeatureError::SignalTooShort {
                required: self.config.frame_len,
                actual: signal.len(),
            });
        }
        let spec = self.stft.process(signal);
        let mut rows: Vec<Vec<f64>> = spec.power();
        match self.config.scale {
            SpectrogramScale::Power => {}
            SpectrogramScale::Magnitude => {
                for row in &mut rows {
                    for v in row.iter_mut() {
                        *v = v.sqrt();
                    }
                }
            }
            SpectrogramScale::LogPower => {
                for row in &mut rows {
                    for v in row.iter_mut() {
                        *v = (*v).max(1e-12).ln();
                    }
                }
            }
            SpectrogramScale::Decibel => {
                let max = rows
                    .iter()
                    .flat_map(|r| r.iter())
                    .cloned()
                    .fold(1e-12f64, f64::max);
                for row in &mut rows {
                    for v in row.iter_mut() {
                        *v = (10.0 * ((*v).max(1e-12) / max).log10()).max(-100.0);
                    }
                }
            }
        }
        Ok(FeatureMatrix::from_rows(rows))
    }

    /// Creates an [`StftScratch`] pre-sized for this extractor's analyser, for use
    /// with [`SpectrogramExtractor::power_frame_into`].
    pub fn make_stft_scratch(&self) -> StftScratch {
        self.stft.make_scratch()
    }

    /// Computes the power spectrum (`|X|^2`, independent of the configured scale)
    /// of **one** exactly-`frame_len` frame into `out`, using a caller-owned
    /// [`StftScratch`] as workspace.
    ///
    /// This is the streaming hook for per-frame classifiers: repeated calls with
    /// the same scratch and output buffer perform no heap allocation in steady
    /// state, and the bins are numerically identical to the corresponding row of
    /// [`SpectrogramExtractor::compute`] with [`SpectrogramScale::Power`].
    ///
    /// # Errors
    ///
    /// Returns an error if `frame.len()` differs from the configured frame length.
    pub fn power_frame_into(
        &self,
        frame: &[f64],
        scratch: &mut StftScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), FeatureError> {
        let spec = self.stft.frame_spectrum_into(frame, scratch)?;
        out.clear();
        out.extend(spec.iter().map(|c| c.norm_sqr()));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispot_dsp::generator::Sine;

    #[test]
    fn power_frame_into_matches_batch_rows() {
        let fs = 16_000.0;
        let x: Vec<f64> = Sine::new(1500.0, fs).take(2048).collect();
        let ex = SpectrogramExtractor::new(SpectrogramConfig::default()).unwrap();
        let batch = ex.compute(&x).unwrap();
        let cfg = ex.config();
        let mut scratch = StftScratch::new();
        let mut row = Vec::new();
        for f in 0..batch.num_rows() {
            let frame = &x[f * cfg.hop..f * cfg.hop + cfg.frame_len];
            ex.power_frame_into(frame, &mut scratch, &mut row).unwrap();
            assert_eq!(row.as_slice(), batch.row(f), "frame {f}");
        }
        assert!(ex
            .power_frame_into(&x[..10], &mut scratch, &mut row)
            .is_err());
    }

    #[test]
    fn tone_concentrates_energy_in_one_column() {
        let fs = 16_000.0;
        let f0 = 2000.0;
        let x: Vec<f64> = Sine::new(f0, fs).take(8192).collect();
        let ex = SpectrogramExtractor::new(SpectrogramConfig::default()).unwrap();
        let m = ex.compute(&x).unwrap();
        let expected_bin = (f0 / fs * 512.0).round() as usize;
        for row in m.iter_rows() {
            let peak = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0;
            assert_eq!(peak, expected_bin);
        }
    }

    #[test]
    fn scales_preserve_peak_location() {
        let x: Vec<f64> = Sine::new(1000.0, 16_000.0).take(4096).collect();
        for scale in [
            SpectrogramScale::Power,
            SpectrogramScale::Magnitude,
            SpectrogramScale::LogPower,
            SpectrogramScale::Decibel,
        ] {
            let cfg = SpectrogramConfig {
                scale,
                ..SpectrogramConfig::default()
            };
            let m = SpectrogramExtractor::new(cfg).unwrap().compute(&x).unwrap();
            let peak = m
                .row(0)
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0;
            assert_eq!(peak, 32);
        }
    }

    #[test]
    fn decibel_scale_is_bounded() {
        let x: Vec<f64> = Sine::new(500.0, 16_000.0).take(4096).collect();
        let cfg = SpectrogramConfig {
            scale: SpectrogramScale::Decibel,
            ..SpectrogramConfig::default()
        };
        let m = SpectrogramExtractor::new(cfg).unwrap().compute(&x).unwrap();
        for row in m.iter_rows() {
            for &v in row {
                assert!((-100.0..=0.0 + 1e-9).contains(&v));
            }
        }
    }

    #[test]
    fn too_short_signal_is_rejected() {
        let ex = SpectrogramExtractor::new(SpectrogramConfig::default()).unwrap();
        assert!(matches!(
            ex.compute(&[0.0; 100]),
            Err(FeatureError::SignalTooShort { .. })
        ));
    }

    #[test]
    fn invalid_config_is_rejected() {
        let cfg = SpectrogramConfig {
            hop: 0,
            ..SpectrogramConfig::default()
        };
        assert!(SpectrogramExtractor::new(cfg).is_err());
    }
}
