//! Generalized cross-correlation with phase transform (GCC-PHAT).
//!
//! GCC-PHAT is the front-end of the SRP-PHAT localization pipeline used by the Cross3D
//! baseline evaluated in Sec. IV-B of the paper: for every microphone pair, the
//! cross-power spectrum is whitened (phase transform) before the inverse FFT so that
//! the correlation peak depends only on the time difference of arrival (TDOA), not on
//! the source spectrum.

use crate::error::FeatureError;
use ispot_dsp::complex::Complex;
use ispot_dsp::fft::Fft;

/// A reusable GCC-PHAT processor for frames of a fixed length.
///
/// # Example
///
/// ```
/// use ispot_features::gcc::GccPhat;
///
/// # fn main() -> Result<(), ispot_features::FeatureError> {
/// use ispot_dsp::generator::{NoiseKind, NoiseSource};
///
/// let gcc = GccPhat::new(256)?;
/// // y is x (broadband noise) delayed by 5 samples.
/// let x: Vec<f64> = NoiseSource::new(NoiseKind::White, 1).take(256).collect();
/// let mut y = vec![0.0; 256];
/// for i in 0..251 { y[i + 5] = x[i]; }
/// let tdoa = gcc.estimate_tdoa(&x, &y, 20)?;
/// assert!((tdoa - 5.0).abs() <= 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GccPhat {
    frame_len: usize,
    fft: Fft,
}

impl GccPhat {
    /// Creates a processor for frames of `frame_len` samples.
    ///
    /// # Errors
    ///
    /// Returns an error if `frame_len` is zero.
    pub fn new(frame_len: usize) -> Result<Self, FeatureError> {
        if frame_len == 0 {
            return Err(FeatureError::invalid_config(
                "frame_len",
                "must be positive",
            ));
        }
        // Zero-pad to twice the frame length so the circular correlation is linear over
        // the lags of interest.
        let fft = Fft::new((2 * frame_len).next_power_of_two());
        Ok(GccPhat { frame_len, fft })
    }

    /// Returns the frame length.
    pub fn frame_len(&self) -> usize {
        self.frame_len
    }

    /// Computes the GCC-PHAT correlation function between `x` and `y` for lags in
    /// `[-max_lag, max_lag]`, returned as a vector of length `2*max_lag + 1` with lag 0
    /// at index `max_lag`.
    ///
    /// The value at lag `m` is `sum_n x[n + m] * y[n]`, so when `y` is a delayed copy of
    /// `x` the peak appears at a *negative* lag equal to minus the delay.
    ///
    /// # Errors
    ///
    /// Returns an error if the inputs are not exactly `frame_len` samples long or
    /// `max_lag` exceeds the FFT half-length.
    pub fn correlate(
        &self,
        x: &[f64],
        y: &[f64],
        max_lag: usize,
    ) -> Result<Vec<f64>, FeatureError> {
        if x.len() != self.frame_len || y.len() != self.frame_len {
            return Err(FeatureError::invalid_config(
                "frame",
                format!(
                    "both inputs must have {} samples (got {} and {})",
                    self.frame_len,
                    x.len(),
                    y.len()
                ),
            ));
        }
        let n = self.fft.len();
        if max_lag >= n / 2 {
            return Err(FeatureError::invalid_config(
                "max_lag",
                format!("must be smaller than {}", n / 2),
            ));
        }
        let mut xa = vec![Complex::ZERO; n];
        let mut yb = vec![Complex::ZERO; n];
        for i in 0..self.frame_len {
            xa[i] = Complex::new(x[i], 0.0);
            yb[i] = Complex::new(y[i], 0.0);
        }
        let fx = self.fft.forward(&xa)?;
        let fy = self.fft.forward(&yb)?;
        // Cross-power spectrum with PHAT weighting.
        let cross: Vec<Complex> = fx
            .iter()
            .zip(&fy)
            .map(|(a, b)| {
                let c = *a * b.conj();
                let mag = c.norm();
                if mag > 1e-12 {
                    c / mag
                } else {
                    Complex::ZERO
                }
            })
            .collect();
        let corr = self.fft.inverse_real(&cross)?;
        // Rearrange so that negative lags come first.
        let mut out = Vec::with_capacity(2 * max_lag + 1);
        for lag in -(max_lag as isize)..=(max_lag as isize) {
            let idx = lag.rem_euclid(n as isize) as usize;
            out.push(corr[idx]);
        }
        Ok(out)
    }

    /// Estimates the time difference of arrival (in samples, possibly fractional and
    /// negative) of `y` relative to `x`, as the argmax of the GCC-PHAT function over
    /// `[-max_lag, max_lag]` refined by parabolic interpolation around the peak.
    ///
    /// Sign convention: the returned value is positive when `y` lags `x` (i.e. `y` is a
    /// delayed copy of `x`), matching `y[n] ≈ x[n - tdoa]`.
    ///
    /// # Errors
    ///
    /// Same as [`GccPhat::correlate`].
    pub fn estimate_tdoa(&self, x: &[f64], y: &[f64], max_lag: usize) -> Result<f64, FeatureError> {
        let corr = self.correlate(x, y, max_lag)?;
        let peak = corr
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(max_lag);
        // Parabolic refinement using the neighbours when available.
        let refined = if peak > 0 && peak + 1 < corr.len() {
            let (ym1, y0, yp1) = (corr[peak - 1], corr[peak], corr[peak + 1]);
            let denom = ym1 - 2.0 * y0 + yp1;
            if denom.abs() > 1e-12 {
                peak as f64 + 0.5 * (ym1 - yp1) / denom
            } else {
                peak as f64
            }
        } else {
            peak as f64
        };
        // The peak sits at lag -delay when y lags x; negate to report the delay of y.
        Ok(-(refined - max_lag as f64))
    }
}

/// One-shot convenience wrapper around [`GccPhat::correlate`] for equal-length frames.
///
/// # Errors
///
/// Same as [`GccPhat::correlate`].
pub fn gcc_phat(x: &[f64], y: &[f64], max_lag: usize) -> Result<Vec<f64>, FeatureError> {
    if x.len() != y.len() {
        return Err(FeatureError::invalid_config(
            "frame",
            "inputs must have equal length",
        ));
    }
    GccPhat::new(x.len())?.correlate(x, y, max_lag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispot_dsp::generator::{NoiseKind, NoiseSource};

    fn delayed_copy(x: &[f64], delay: usize) -> Vec<f64> {
        let mut y = vec![0.0; x.len()];
        y[delay..].copy_from_slice(&x[..x.len() - delay]);
        y
    }

    #[test]
    fn integer_delay_is_recovered() {
        let x: Vec<f64> = NoiseSource::new(NoiseKind::White, 1).take(512).collect();
        let gcc = GccPhat::new(512).unwrap();
        for delay in [0usize, 3, 10, 25] {
            let y = delayed_copy(&x, delay);
            let tdoa = gcc.estimate_tdoa(&x, &y, 64).unwrap();
            assert!(
                (tdoa - delay as f64).abs() <= 1.0,
                "delay {delay}: estimated {tdoa}"
            );
        }
    }

    #[test]
    fn symmetric_estimates_have_opposite_signs() {
        let x: Vec<f64> = NoiseSource::new(NoiseKind::White, 2).take(256).collect();
        let y = delayed_copy(&x, 7);
        let gcc = GccPhat::new(256).unwrap();
        let forward = gcc.estimate_tdoa(&x, &y, 32).unwrap();
        let backward = gcc.estimate_tdoa(&y, &x, 32).unwrap();
        assert!((forward + backward).abs() <= 1.0);
    }

    #[test]
    fn phat_weighting_is_robust_to_spectral_coloring() {
        // Low-pass-ish signal: running average of noise.
        let white: Vec<f64> = NoiseSource::new(NoiseKind::White, 9).take(512).collect();
        let colored: Vec<f64> = white
            .windows(8)
            .map(|w| w.iter().sum::<f64>() / 8.0)
            .collect();
        let mut padded = colored.clone();
        padded.resize(512, 0.0);
        let y = delayed_copy(&padded, 12);
        let gcc = GccPhat::new(512).unwrap();
        let tdoa = gcc.estimate_tdoa(&padded, &y, 64).unwrap();
        assert!((tdoa - 12.0).abs() <= 1.0, "estimated {tdoa}");
    }

    #[test]
    fn correlation_vector_has_expected_length_and_peak_location() {
        let x: Vec<f64> = NoiseSource::new(NoiseKind::White, 4).take(128).collect();
        let y = delayed_copy(&x, 5);
        let corr = gcc_phat(&x, &y, 16).unwrap();
        assert_eq!(corr.len(), 33);
        let peak = corr
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        // y lags x by 5 samples, so the peak sits at lag -5.
        assert_eq!(peak, 16 - 5);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let gcc = GccPhat::new(64).unwrap();
        assert!(gcc.correlate(&[0.0; 32], &[0.0; 64], 8).is_err());
        assert!(gcc.correlate(&[0.0; 64], &[0.0; 64], 1000).is_err());
        assert!(gcc_phat(&[0.0; 4], &[0.0; 8], 2).is_err());
        assert!(GccPhat::new(0).is_err());
    }
}
