//! Mel-frequency filterbank.

use crate::error::FeatureError;
use crate::matrix::FeatureMatrix;
use serde::{Deserialize, Serialize};

/// Converts a frequency in Hz to the mel scale (HTK convention).
///
/// # Example
///
/// ```
/// use ispot_features::mel::{hz_to_mel, mel_to_hz};
/// let m = hz_to_mel(1000.0);
/// assert!((mel_to_hz(m) - 1000.0).abs() < 1e-9);
/// ```
pub fn hz_to_mel(hz: f64) -> f64 {
    2595.0 * (1.0 + hz / 700.0).log10()
}

/// Converts a mel value back to Hz.
pub fn mel_to_hz(mel: f64) -> f64 {
    700.0 * (10f64.powf(mel / 2595.0) - 1.0)
}

/// A triangular mel filterbank applied to power spectra.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MelFilterbank {
    /// One weight vector (over FFT bins) per mel band.
    weights: Vec<Vec<f64>>,
    num_bins: usize,
    sample_rate: f64,
    f_min: f64,
    f_max: f64,
}

impl MelFilterbank {
    /// Creates a filterbank with `num_bands` triangular filters covering
    /// `[f_min, f_max]` Hz, for power spectra with `num_bins` bins (i.e. `fft/2 + 1`) at
    /// sampling rate `fs`.
    ///
    /// # Errors
    ///
    /// Returns an error if `num_bands` or `num_bins` is zero, or the frequency range is
    /// invalid.
    pub fn new(
        num_bands: usize,
        num_bins: usize,
        fs: f64,
        f_min: f64,
        f_max: f64,
    ) -> Result<Self, FeatureError> {
        if num_bands == 0 {
            return Err(FeatureError::invalid_config(
                "num_bands",
                "must be positive",
            ));
        }
        if num_bins < 2 {
            return Err(FeatureError::invalid_config(
                "num_bins",
                "must be at least 2",
            ));
        }
        if !(0.0 <= f_min && f_min < f_max && f_max <= fs / 2.0 + 1e-9) {
            return Err(FeatureError::invalid_config(
                "f_min/f_max",
                format!("must satisfy 0 <= f_min < f_max <= fs/2, got [{f_min}, {f_max}]"),
            ));
        }
        let mel_lo = hz_to_mel(f_min);
        let mel_hi = hz_to_mel(f_max);
        // num_bands + 2 equally spaced mel points define the triangle edges.
        let mel_points: Vec<f64> = (0..num_bands + 2)
            .map(|i| mel_lo + (mel_hi - mel_lo) * i as f64 / (num_bands + 1) as f64)
            .collect();
        let hz_points: Vec<f64> = mel_points.iter().map(|&m| mel_to_hz(m)).collect();
        let bin_freq = |k: usize| k as f64 * fs / (2.0 * (num_bins - 1) as f64);
        let mut weights = Vec::with_capacity(num_bands);
        for b in 0..num_bands {
            let (lo, mid, hi) = (hz_points[b], hz_points[b + 1], hz_points[b + 2]);
            let mut w = vec![0.0; num_bins];
            for (k, slot) in w.iter_mut().enumerate() {
                let f = bin_freq(k);
                if f >= lo && f <= mid && mid > lo {
                    *slot = (f - lo) / (mid - lo);
                } else if f > mid && f <= hi && hi > mid {
                    *slot = (hi - f) / (hi - mid);
                }
            }
            weights.push(w);
        }
        Ok(MelFilterbank {
            weights,
            num_bins,
            sample_rate: fs,
            f_min,
            f_max,
        })
    }

    /// Number of mel bands.
    pub fn num_bands(&self) -> usize {
        self.weights.len()
    }

    /// Number of FFT bins this filterbank expects.
    pub fn num_bins(&self) -> usize {
        self.num_bins
    }

    /// Centre frequency (Hz) of band `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b >= self.num_bands()`.
    pub fn center_frequency(&self, b: usize) -> f64 {
        let mel_lo = hz_to_mel(self.f_min);
        let mel_hi = hz_to_mel(self.f_max);
        let n = self.num_bands();
        mel_to_hz(mel_lo + (mel_hi - mel_lo) * (b + 1) as f64 / (n + 1) as f64)
    }

    /// Applies the filterbank to a single power spectrum.
    ///
    /// # Errors
    ///
    /// Returns an error if the spectrum length does not match [`MelFilterbank::num_bins`].
    pub fn apply(&self, power_spectrum: &[f64]) -> Result<Vec<f64>, FeatureError> {
        let mut out = Vec::with_capacity(self.num_bands());
        self.apply_into(power_spectrum, &mut out)?;
        Ok(out)
    }

    /// Applies the filterbank to a single power spectrum, writing the band
    /// energies into `out` (resized to [`MelFilterbank::num_bands`]).
    ///
    /// Allocation-free in steady state (same `out` reused across calls) and
    /// numerically identical to [`MelFilterbank::apply`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`MelFilterbank::apply`].
    pub fn apply_into(
        &self,
        power_spectrum: &[f64],
        out: &mut Vec<f64>,
    ) -> Result<(), FeatureError> {
        if power_spectrum.len() != self.num_bins {
            return Err(FeatureError::invalid_config(
                "power_spectrum",
                format!(
                    "expected {} bins, got {}",
                    self.num_bins,
                    power_spectrum.len()
                ),
            ));
        }
        out.clear();
        out.extend(self.weights.iter().map(|w| {
            w.iter()
                .zip(power_spectrum)
                .map(|(a, b)| a * b)
                .sum::<f64>()
        }));
        Ok(())
    }

    /// Applies the filterbank to every row of a power spectrogram, producing a mel
    /// spectrogram (frames × bands).
    ///
    /// # Errors
    ///
    /// Returns an error if the spectrogram's column count does not match the expected
    /// number of FFT bins.
    pub fn apply_spectrogram(&self, power: &FeatureMatrix) -> Result<FeatureMatrix, FeatureError> {
        let rows: Result<Vec<Vec<f64>>, FeatureError> =
            power.iter_rows().map(|r| self.apply(r)).collect();
        Ok(FeatureMatrix::from_rows(rows?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mel_scale_is_monotonic_and_invertible() {
        let mut last = -1.0;
        for hz in [0.0, 100.0, 500.0, 1000.0, 4000.0, 8000.0] {
            let m = hz_to_mel(hz);
            assert!(m > last);
            last = m;
            assert!((mel_to_hz(m) - hz).abs() < 1e-6);
        }
    }

    #[test]
    fn filterbank_band_count_and_shape() {
        let fb = MelFilterbank::new(26, 257, 16_000.0, 0.0, 8000.0).unwrap();
        assert_eq!(fb.num_bands(), 26);
        assert_eq!(fb.num_bins(), 257);
        // Every band has non-negative weights and at least one positive weight.
        for b in 0..fb.num_bands() {
            let w = &fb.weights[b];
            assert!(w.iter().all(|&x| x >= 0.0));
            assert!(w.iter().any(|&x| x > 0.0), "band {b} is empty");
        }
    }

    #[test]
    fn tone_energy_lands_in_band_containing_its_frequency() {
        let fs = 16_000.0;
        let num_bins = 257;
        let fb = MelFilterbank::new(26, num_bins, fs, 0.0, 8000.0).unwrap();
        // Build a synthetic power spectrum with all energy at 1 kHz.
        let bin = (1000.0 / fs * 2.0 * (num_bins as f64 - 1.0)).round() as usize;
        let mut spectrum = vec![0.0; num_bins];
        spectrum[bin] = 1.0;
        let bands = fb.apply(&spectrum).unwrap();
        let peak_band = bands
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        let fc = fb.center_frequency(peak_band);
        assert!(
            (fc - 1000.0).abs() < 300.0,
            "peak band centre {fc} too far from 1 kHz"
        );
    }

    #[test]
    fn center_frequencies_increase() {
        let fb = MelFilterbank::new(12, 129, 16_000.0, 100.0, 8000.0).unwrap();
        let mut last = 0.0;
        for b in 0..fb.num_bands() {
            let fc = fb.center_frequency(b);
            assert!(fc > last);
            last = fc;
        }
    }

    #[test]
    fn invalid_configurations_rejected() {
        assert!(MelFilterbank::new(0, 129, 16_000.0, 0.0, 8000.0).is_err());
        assert!(MelFilterbank::new(26, 1, 16_000.0, 0.0, 8000.0).is_err());
        assert!(MelFilterbank::new(26, 129, 16_000.0, 5000.0, 4000.0).is_err());
        assert!(MelFilterbank::new(26, 129, 16_000.0, 0.0, 9000.0).is_err());
    }

    #[test]
    fn wrong_spectrum_length_rejected() {
        let fb = MelFilterbank::new(10, 65, 8000.0, 0.0, 4000.0).unwrap();
        assert!(fb.apply(&vec![0.0; 64]).is_err());
    }
}
