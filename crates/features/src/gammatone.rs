//! Gammatone filterbank features (gammatonegram and GFCC).
//!
//! Marchegiani & Newman ("Listening for Sirens") and Cantarini et al. use
//! gammatonegrams as the input representation for siren detection; the I-SPOT baseline
//! follows the same recipe. The filterbank is implemented in the spectral domain: each
//! ERB-spaced band applies a gammatone-shaped magnitude weighting to the power
//! spectrum.

use crate::error::FeatureError;
use crate::matrix::FeatureMatrix;
use crate::spectrogram::{SpectrogramConfig, SpectrogramExtractor, SpectrogramScale};
use serde::{Deserialize, Serialize};
use std::f64::consts::PI;

/// Equivalent rectangular bandwidth (ERB) in Hz of an auditory filter centred at
/// `freq_hz` (Glasberg & Moore).
pub fn erb_bandwidth(freq_hz: f64) -> f64 {
    24.7 * (4.37 * freq_hz / 1000.0 + 1.0)
}

/// Converts a frequency in Hz to the ERB-rate scale.
pub fn hz_to_erb_rate(freq_hz: f64) -> f64 {
    21.4 * (4.37 * freq_hz / 1000.0 + 1.0).log10()
}

/// Converts an ERB-rate value back to Hz.
pub fn erb_rate_to_hz(erb: f64) -> f64 {
    (10f64.powf(erb / 21.4) - 1.0) * 1000.0 / 4.37
}

/// Configuration for the [`GammatoneExtractor`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GammatoneConfig {
    /// STFT frame length in samples.
    pub frame_len: usize,
    /// STFT hop in samples.
    pub hop: usize,
    /// Number of gammatone bands (ERB-spaced).
    pub num_bands: usize,
    /// Lowest centre frequency in Hz.
    pub f_min: f64,
    /// Highest centre frequency in Hz (clamped to Nyquist).
    pub f_max: f64,
    /// Number of cepstral coefficients produced by [`GammatoneExtractor::compute_gfcc`].
    pub num_gfcc: usize,
}

impl Default for GammatoneConfig {
    fn default() -> Self {
        GammatoneConfig {
            frame_len: 512,
            hop: 256,
            num_bands: 32,
            f_min: 50.0,
            f_max: 8000.0,
            num_gfcc: 13,
        }
    }
}

/// Computes gammatonegrams and gammatone-frequency cepstral coefficients (GFCC).
///
/// # Example
///
/// ```
/// use ispot_features::gammatone::{GammatoneConfig, GammatoneExtractor};
///
/// # fn main() -> Result<(), ispot_features::FeatureError> {
/// let fs = 16_000.0;
/// let ex = GammatoneExtractor::new(GammatoneConfig::default(), fs)?;
/// let x: Vec<f64> = ispot_dsp::generator::Sine::new(900.0, fs).take(4096).collect();
/// let gram = ex.compute_gammatonegram(&x)?;
/// assert_eq!(gram.num_cols(), 32);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GammatoneExtractor {
    config: GammatoneConfig,
    spectrogram: SpectrogramExtractor,
    /// Per-band spectral weights (num_bands × num_bins).
    weights: Vec<Vec<f64>>,
    center_frequencies: Vec<f64>,
    /// DCT-II basis for GFCC (num_gfcc × num_bands).
    dct: Vec<Vec<f64>>,
}

impl GammatoneExtractor {
    /// Creates a gammatone extractor for sampling rate `fs`.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is inconsistent.
    pub fn new(config: GammatoneConfig, fs: f64) -> Result<Self, FeatureError> {
        if config.num_bands == 0 {
            return Err(FeatureError::invalid_config(
                "num_bands",
                "must be positive",
            ));
        }
        if config.num_gfcc == 0 || config.num_gfcc > config.num_bands {
            return Err(FeatureError::invalid_config(
                "num_gfcc",
                "must be in [1, num_bands]",
            ));
        }
        let f_max = config.f_max.min(fs / 2.0);
        if !(config.f_min > 0.0 && config.f_min < f_max) {
            return Err(FeatureError::invalid_config(
                "f_min/f_max",
                "must satisfy 0 < f_min < f_max <= fs/2",
            ));
        }
        let spec_cfg = SpectrogramConfig {
            frame_len: config.frame_len,
            hop: config.hop,
            fft_size: config.frame_len,
            scale: SpectrogramScale::Power,
            ..SpectrogramConfig::default()
        };
        let spectrogram = SpectrogramExtractor::new(spec_cfg)?;
        let num_bins = spectrogram.num_bins();
        // ERB-spaced centre frequencies.
        let erb_lo = hz_to_erb_rate(config.f_min);
        let erb_hi = hz_to_erb_rate(f_max);
        let center_frequencies: Vec<f64> = (0..config.num_bands)
            .map(|b| {
                erb_rate_to_hz(
                    erb_lo + (erb_hi - erb_lo) * b as f64 / (config.num_bands - 1).max(1) as f64,
                )
            })
            .collect();
        // Fourth-order gammatone magnitude response: |G(f)| ∝ [1 + ((f-fc)/b)^2]^(-2).
        let bin_freq = |k: usize| k as f64 * fs / (2.0 * (num_bins as f64 - 1.0));
        let weights: Vec<Vec<f64>> = center_frequencies
            .iter()
            .map(|&fc| {
                let b = 1.019 * erb_bandwidth(fc);
                let mut w: Vec<f64> = (0..num_bins)
                    .map(|k| {
                        let x = (bin_freq(k) - fc) / b;
                        (1.0 + x * x).powi(-2)
                    })
                    .collect();
                // Normalize each band to unit total weight so band energies are comparable.
                let sum: f64 = w.iter().sum();
                if sum > 0.0 {
                    for v in &mut w {
                        *v /= sum;
                    }
                }
                w
            })
            .collect();
        let m = config.num_bands;
        let dct = (0..config.num_gfcc)
            .map(|k| {
                (0..m)
                    .map(|n| (PI * k as f64 * (n as f64 + 0.5) / m as f64).cos())
                    .collect()
            })
            .collect();
        Ok(GammatoneExtractor {
            config,
            spectrogram,
            weights,
            center_frequencies,
            dct,
        })
    }

    /// Returns the configuration.
    pub fn config(&self) -> GammatoneConfig {
        self.config
    }

    /// Returns the ERB-spaced centre frequencies of the bands.
    pub fn center_frequencies(&self) -> &[f64] {
        &self.center_frequencies
    }

    /// Computes the gammatonegram (frames × bands, linear power).
    ///
    /// # Errors
    ///
    /// Returns [`FeatureError::SignalTooShort`] if the signal is shorter than one frame.
    pub fn compute_gammatonegram(&self, signal: &[f64]) -> Result<FeatureMatrix, FeatureError> {
        let power = self.spectrogram.compute(signal)?;
        let rows: Vec<Vec<f64>> = power
            .iter_rows()
            .map(|spectrum| {
                self.weights
                    .iter()
                    .map(|w| w.iter().zip(spectrum).map(|(a, b)| a * b).sum())
                    .collect()
            })
            .collect();
        Ok(FeatureMatrix::from_rows(rows))
    }

    /// Computes gammatone-frequency cepstral coefficients (frames × `num_gfcc`).
    ///
    /// # Errors
    ///
    /// Same as [`GammatoneExtractor::compute_gammatonegram`].
    pub fn compute_gfcc(&self, signal: &[f64]) -> Result<FeatureMatrix, FeatureError> {
        let mut gram = self.compute_gammatonegram(signal)?;
        gram.log_compress(1e-12);
        let rows: Vec<Vec<f64>> = gram
            .iter_rows()
            .map(|row| {
                self.dct
                    .iter()
                    .map(|basis| basis.iter().zip(row).map(|(b, x)| b * x).sum())
                    .collect()
            })
            .collect();
        Ok(FeatureMatrix::from_rows(rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispot_dsp::generator::Sine;

    #[test]
    fn erb_scale_is_monotonic_and_invertible() {
        let mut last = -1.0;
        for hz in [50.0, 200.0, 1000.0, 4000.0, 8000.0] {
            let e = hz_to_erb_rate(hz);
            assert!(e > last);
            last = e;
            assert!((erb_rate_to_hz(e) - hz).abs() < 1e-6);
        }
        assert!(erb_bandwidth(4000.0) > erb_bandwidth(500.0));
    }

    #[test]
    fn tone_peaks_in_band_nearest_its_frequency() {
        let fs = 16_000.0;
        let f0 = 1500.0;
        let ex = GammatoneExtractor::new(GammatoneConfig::default(), fs).unwrap();
        let x: Vec<f64> = Sine::new(f0, fs).take(8192).collect();
        let gram = ex.compute_gammatonegram(&x).unwrap();
        let means = gram.column_means();
        let peak_band = means
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        let fc = ex.center_frequencies()[peak_band];
        assert!(
            (fc - f0).abs() < 250.0,
            "peak band centre {fc} for a {f0} Hz tone"
        );
    }

    #[test]
    fn center_frequencies_are_erb_spaced_and_increasing() {
        let ex = GammatoneExtractor::new(GammatoneConfig::default(), 16_000.0).unwrap();
        let fcs = ex.center_frequencies();
        assert_eq!(fcs.len(), 32);
        for w in fcs.windows(2) {
            assert!(w[1] > w[0]);
        }
        // ERB spacing: spacing grows with frequency.
        assert!(fcs[31] - fcs[30] > fcs[1] - fcs[0]);
    }

    #[test]
    fn gfcc_shape_matches_config() {
        let fs = 16_000.0;
        let ex = GammatoneExtractor::new(GammatoneConfig::default(), fs).unwrap();
        let x: Vec<f64> = Sine::new(600.0, fs).take(4096).collect();
        let gfcc = ex.compute_gfcc(&x).unwrap();
        assert_eq!(gfcc.num_cols(), 13);
        assert!(gfcc.num_rows() > 0);
    }

    #[test]
    fn invalid_configurations_rejected() {
        let fs = 16_000.0;
        for bad in [
            GammatoneConfig {
                num_bands: 0,
                ..GammatoneConfig::default()
            },
            GammatoneConfig {
                num_gfcc: 0,
                ..GammatoneConfig::default()
            },
            GammatoneConfig {
                num_gfcc: 64,
                ..GammatoneConfig::default()
            },
            GammatoneConfig {
                f_min: 0.0,
                ..GammatoneConfig::default()
            },
        ] {
            assert!(GammatoneExtractor::new(bad, fs).is_err());
        }
    }
}
