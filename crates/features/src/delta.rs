//! Delta (first-difference) features.

use crate::matrix::FeatureMatrix;

/// Computes delta features: for each row `t`, the regression slope of every column over
/// a window of `width` frames on each side (the standard HTK delta formula).
///
/// # Example
///
/// ```
/// use ispot_features::{delta::compute_deltas, FeatureMatrix};
///
/// let m = FeatureMatrix::from_rows(vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
/// let d = compute_deltas(&m, 1);
/// // A linearly increasing feature has a constant positive delta.
/// assert!(d.iter_rows().all(|r| r[0] > 0.0));
/// ```
pub fn compute_deltas(features: &FeatureMatrix, width: usize) -> FeatureMatrix {
    let width = width.max(1);
    let rows = features.num_rows();
    let cols = features.num_cols();
    let denom: f64 = 2.0 * (1..=width).map(|k| (k * k) as f64).sum::<f64>();
    let mut out = FeatureMatrix::zeros(rows, cols);
    let clamp_row = |r: isize| -> usize { r.clamp(0, rows as isize - 1) as usize };
    for t in 0..rows {
        for c in 0..cols {
            let mut acc = 0.0;
            for k in 1..=width {
                let ahead = features.get(clamp_row(t as isize + k as isize), c);
                let behind = features.get(clamp_row(t as isize - k as isize), c);
                acc += k as f64 * (ahead - behind);
            }
            out.set(t, c, acc / denom);
        }
    }
    out
}

/// Returns `features` with its delta features appended column-wise (doubling the
/// feature dimension), the common "static + delta" representation.
pub fn append_deltas(features: &FeatureMatrix, width: usize) -> FeatureMatrix {
    let deltas = compute_deltas(features, width);
    features.hstack(&deltas)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_features_have_zero_delta() {
        let m = FeatureMatrix::from_rows(vec![vec![5.0, -1.0]; 6]);
        let d = compute_deltas(&m, 2);
        assert!(d.as_slice().iter().all(|&v| v.abs() < 1e-12));
    }

    #[test]
    fn linear_ramp_has_constant_delta_in_interior() {
        let m = FeatureMatrix::from_rows((0..10).map(|i| vec![i as f64]).collect());
        let d = compute_deltas(&m, 2);
        for t in 2..8 {
            assert!(
                (d.get(t, 0) - 1.0).abs() < 1e-12,
                "t = {t}: {}",
                d.get(t, 0)
            );
        }
    }

    #[test]
    fn append_doubles_columns() {
        let m = FeatureMatrix::from_rows(vec![vec![1.0, 2.0, 3.0]; 4]);
        let out = append_deltas(&m, 1);
        assert_eq!(out.num_cols(), 6);
        assert_eq!(out.num_rows(), 4);
    }

    #[test]
    fn empty_matrix_is_handled() {
        let m = FeatureMatrix::zeros(0, 3);
        let d = compute_deltas(&m, 2);
        assert_eq!(d.num_rows(), 0);
    }
}
