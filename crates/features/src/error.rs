//! Error type for feature extraction.

use ispot_dsp::DspError;
use std::error::Error;
use std::fmt;

/// Errors produced while configuring or computing acoustic features.
#[derive(Debug, Clone, PartialEq)]
pub enum FeatureError {
    /// A configuration parameter is invalid.
    InvalidConfig {
        /// Name of the offending parameter.
        name: &'static str,
        /// Description of the violated constraint.
        reason: String,
    },
    /// The input signal is too short for the requested analysis.
    SignalTooShort {
        /// Minimum number of samples required.
        required: usize,
        /// Number of samples supplied.
        actual: usize,
    },
    /// An underlying DSP operation failed.
    Dsp(DspError),
}

impl fmt::Display for FeatureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeatureError::InvalidConfig { name, reason } => {
                write!(f, "invalid feature configuration `{name}`: {reason}")
            }
            FeatureError::SignalTooShort { required, actual } => write!(
                f,
                "signal too short: {required} samples required, got {actual}"
            ),
            FeatureError::Dsp(e) => write!(f, "dsp error: {e}"),
        }
    }
}

impl Error for FeatureError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FeatureError::Dsp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DspError> for FeatureError {
    fn from(e: DspError) -> Self {
        FeatureError::Dsp(e)
    }
}

impl FeatureError {
    /// Convenience constructor for [`FeatureError::InvalidConfig`].
    pub fn invalid_config(name: &'static str, reason: impl Into<String>) -> Self {
        FeatureError::InvalidConfig {
            name,
            reason: reason.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = FeatureError::invalid_config("num_mels", "must be positive");
        assert!(e.to_string().contains("num_mels"));
        let e = FeatureError::SignalTooShort {
            required: 512,
            actual: 10,
        };
        assert!(e.to_string().contains("512"));
        let wrapped: FeatureError = DspError::invalid_parameter("x", "bad").into();
        assert!(Error::source(&wrapped).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FeatureError>();
    }
}
