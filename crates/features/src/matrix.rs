//! A simple row-major matrix of feature values (rows = time frames, columns = feature
//! dimensions).

use serde::{Deserialize, Serialize};

/// A time × feature matrix shared by all extractors in this crate.
///
/// # Example
///
/// ```
/// use ispot_features::FeatureMatrix;
///
/// let mut m = FeatureMatrix::zeros(2, 3);
/// m.set(1, 2, 5.0);
/// assert_eq!(m.get(1, 2), 5.0);
/// assert_eq!(m.num_rows(), 2);
/// assert_eq!(m.num_cols(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureMatrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl FeatureMatrix {
    /// Creates a matrix of zeros with `rows` time frames and `cols` feature dimensions.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        FeatureMatrix {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// Creates a matrix from row vectors.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Self {
        let n_rows = rows.len();
        let n_cols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(n_rows * n_cols);
        for r in &rows {
            assert_eq!(r.len(), n_cols, "all rows must have the same length");
            data.extend_from_slice(r);
        }
        FeatureMatrix {
            data,
            rows: n_rows,
            cols: n_cols,
        }
    }

    /// Number of time frames (rows).
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of feature dimensions (columns).
    pub fn num_cols(&self) -> usize {
        self.cols
    }

    /// Returns true if the matrix holds no values.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns the value at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index out of range");
        self.data[row * self.cols + col]
    }

    /// Sets the value at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.rows && col < self.cols, "index out of range");
        self.data[row * self.cols + col] = value;
    }

    /// Returns row `row` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn row(&self, row: usize) -> &[f64] {
        assert!(row < self.rows, "row index out of range");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Iterates over rows in time order.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        (0..self.rows).map(move |r| self.row(r))
    }

    /// Returns the underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Flattens the matrix into a row-major vector.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Returns the per-column mean over all rows (empty if the matrix has no rows).
    pub fn column_means(&self) -> Vec<f64> {
        if self.rows == 0 {
            return vec![0.0; self.cols];
        }
        let mut means = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (c, m) in means.iter_mut().enumerate() {
                *m += self.get(r, c);
            }
        }
        for m in &mut means {
            *m /= self.rows as f64;
        }
        means
    }

    /// Returns the per-column standard deviation over all rows.
    pub fn column_stds(&self) -> Vec<f64> {
        let means = self.column_means();
        if self.rows == 0 {
            return vec![0.0; self.cols];
        }
        let mut vars = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (c, v) in vars.iter_mut().enumerate() {
                let d = self.get(r, c) - means[c];
                *v += d * d;
            }
        }
        vars.iter().map(|v| (v / self.rows as f64).sqrt()).collect()
    }

    /// Normalizes every column to zero mean and unit variance in place (columns with
    /// zero variance are left centred but unscaled).
    pub fn standardize(&mut self) {
        let means = self.column_means();
        let stds = self.column_stds();
        for r in 0..self.rows {
            for c in 0..self.cols {
                let mut v = self.get(r, c) - means[c];
                if stds[c] > 1e-12 {
                    v /= stds[c];
                }
                self.set(r, c, v);
            }
        }
    }

    /// Applies the natural logarithm with a small floor to every element
    /// (log-compression of power features).
    pub fn log_compress(&mut self, floor: f64) {
        for v in &mut self.data {
            *v = (*v).max(floor).ln();
        }
    }

    /// Appends the columns of `other` to every row (horizontal concatenation).
    ///
    /// # Panics
    ///
    /// Panics if the two matrices have different numbers of rows.
    pub fn hstack(&self, other: &FeatureMatrix) -> FeatureMatrix {
        assert_eq!(self.rows, other.rows, "row counts must match");
        let mut rows = Vec::with_capacity(self.rows);
        for r in 0..self.rows {
            let mut row = self.row(r).to_vec();
            row.extend_from_slice(other.row(r));
            rows.push(row);
        }
        FeatureMatrix::from_rows(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = FeatureMatrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.num_rows(), 2);
        assert_eq!(m.num_cols(), 2);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.row(0), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn inconsistent_rows_panic() {
        FeatureMatrix::from_rows(vec![vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn column_statistics() {
        let m = FeatureMatrix::from_rows(vec![vec![1.0, 10.0], vec![3.0, 10.0]]);
        assert_eq!(m.column_means(), vec![2.0, 10.0]);
        assert_eq!(m.column_stds(), vec![1.0, 0.0]);
    }

    #[test]
    fn standardize_gives_zero_mean_unit_variance() {
        let mut m = FeatureMatrix::from_rows(vec![
            vec![1.0, 5.0],
            vec![2.0, 7.0],
            vec![3.0, 9.0],
            vec![4.0, 11.0],
        ]);
        m.standardize();
        let means = m.column_means();
        let stds = m.column_stds();
        for c in 0..2 {
            assert!(means[c].abs() < 1e-12);
            assert!((stds[c] - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn log_compress_floors_small_values() {
        let mut m = FeatureMatrix::from_rows(vec![vec![0.0, 1.0]]);
        m.log_compress(1e-10);
        assert!((m.get(0, 0) - (1e-10f64).ln()).abs() < 1e-12);
        assert!(m.get(0, 1).abs() < 1e-12);
    }

    #[test]
    fn hstack_concatenates_columns() {
        let a = FeatureMatrix::from_rows(vec![vec![1.0], vec![2.0]]);
        let b = FeatureMatrix::from_rows(vec![vec![3.0, 4.0], vec![5.0, 6.0]]);
        let c = a.hstack(&b);
        assert_eq!(c.num_cols(), 3);
        assert_eq!(c.row(1), &[2.0, 5.0, 6.0]);
    }

    #[test]
    fn zeros_and_set() {
        let mut m = FeatureMatrix::zeros(3, 2);
        assert!(m.iter_rows().all(|r| r.iter().all(|&v| v == 0.0)));
        m.set(2, 1, 7.0);
        assert_eq!(m.get(2, 1), 7.0);
        assert_eq!(m.as_slice().len(), 6);
    }
}
